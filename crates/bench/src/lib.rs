//! Benchmark harness for the Proteus reproduction.
//!
//! Two entry points:
//!
//! * the `repro` binary (`cargo run -p proteus-bench --bin repro
//!   --release`) regenerates every figure of the paper's evaluation and
//!   every DESIGN.md ablation as tables + CSVs under `results/`;
//! * Criterion benches (`cargo bench`) time representative slices of the
//!   same experiments plus the substrate microbenchmarks.
