//! Substrate microbenchmarks: how expensive are the pieces the
//! experiments are built from? Useful when tuning the simulator and as
//! an ablation of where host time goes.

use criterion::{criterion_group, criterion_main, Criterion};
use porsche::kernel::{Kernel, KernelConfig, SpawnSpec};
use proteus_apps::twofish::Twofish;
use proteus_cpu::{Cpu, Memory, NullCoprocessor};
use proteus_fabric::place::FabricDims;
use proteus_fabric::{compile, library, Device};
use proteus_isa::{assemble, decode, encode, Instr};
use proteus_rfu::{Rfu, RfuConfig};

fn bench_isa(c: &mut Criterion) {
    let program = assemble(
        "start: ldr r1, =4096\nloop: subs r1, r1, #1\n add r2, r2, r1\n bne loop\n swi #0\n",
    )
    .expect("asm");
    c.bench_function("isa/decode_word", |b| {
        let word = program.words()[1];
        b.iter(|| decode(std::hint::black_box(word)).expect("decode"))
    });
    c.bench_function("isa/encode_roundtrip", |b| {
        let instr: Vec<Instr> = program.words().iter().map(|&w| decode(w).expect("decode")).collect();
        b.iter(|| instr.iter().map(|&i| encode(i)).fold(0u32, u32::wrapping_add))
    });
    c.bench_function("cpu/interpret_16k_cycles", |b| {
        b.iter(|| {
            let mut mem = Memory::new(64 * 1024);
            mem.load_program(&program).expect("load");
            let mut cpu = Cpu::new();
            cpu.run(&mut mem, &mut NullCoprocessor, u64::MAX);
            cpu.cycles()
        })
    });
}

fn bench_fabric(c: &mut Criterion) {
    let netlist = library::alpha_blend_channel().expect("netlist");
    c.bench_function("fabric/compile_alpha_blend", |b| {
        b.iter(|| compile(&netlist, FabricDims::PFU).expect("compile"))
    });
    let compiled = compile(&netlist, FabricDims::PFU).expect("compile");
    c.bench_function("fabric/device_load_54kB", |b| {
        let mut dev = Device::new(FabricDims::PFU);
        b.iter(|| dev.load(compiled.bitstream()).expect("load"))
    });
    c.bench_function("fabric/gate_level_blend_instruction", |b| {
        let mut dev = Device::new(FabricDims::PFU);
        dev.load(compiled.bitstream()).expect("load");
        b.iter(|| dev.run_instruction(0x80C8, 0x28, 8).expect("run"))
    });
}

fn bench_twofish(c: &mut Criterion) {
    let tf = Twofish::new(b"benchmark-key-01");
    c.bench_function("twofish/encrypt_block", |b| {
        let pt = [7u8; 16];
        b.iter(|| tf.encrypt_block(std::hint::black_box(&pt)))
    });
    c.bench_function("twofish/key_schedule", |b| {
        b.iter(|| Twofish::new(std::hint::black_box(b"benchmark-key-01")))
    });
}

fn bench_kernel(c: &mut Criterion) {
    let program = assemble("start: ldr r1, =256\nloop: swi #1\n subs r1, r1, #1\n bne loop\n mov r0, #0\n swi #0\n")
        .expect("asm");
    c.bench_function("kernel/512_context_switches", |b| {
        b.iter(|| {
            let mut kernel = Kernel::new(KernelConfig::default());
            let entry = program.symbol("start").expect("start");
            kernel.spawn(SpawnSpec::new(&program).entry(entry)).expect("spawn");
            kernel.spawn(SpawnSpec::new(&program).entry(entry)).expect("spawn");
            let mut cpu = Cpu::new();
            let mut rfu = Rfu::new(RfuConfig::default());
            kernel.run(&mut cpu, &mut rfu, 1_000_000_000).expect("run").stats.context_switches
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
        .sample_size(20);
    targets = bench_isa, bench_fabric, bench_twofish, bench_kernel
}
criterion_main!(benches);
