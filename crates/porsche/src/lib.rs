//! POrSCHE — the Proteus Operating System and Configurable Hardware
//! Environment (paper §5).
//!
//! POrSCHE is "a simple operating system kernel … with a pre-emptive
//! round robin process scheduler" plus the **Custom Instruction Scheduler
//! (CIS)**, "which manages the circuits registered with the OS by
//! different applications … responsible for loading and unloading
//! circuits and for managing the dispatch hardware."
//!
//! The kernel logic here runs in Rust against the simulated machine
//! state, with every management action charged an explicit cycle cost on
//! the simulated clock (see [`costs::CostModel`] and DESIGN.md §3) — the
//! substitution that keeps the paper's measured quantities (completion
//! cycles, management overhead) intact without booting a guest kernel.
//!
//! Key pieces:
//!
//! * [`kernel::Kernel`] — process table, pre-emptive round-robin
//!   scheduling, SWI system calls, context switching (including the RFU
//!   register file and the software-dispatch operand block), and the
//!   machine run loop;
//! * [`cis`] — the Custom Instruction Scheduler: circuit registration,
//!   the custom-instruction fault handler (mapping-fault fast path vs.
//!   full configuration load), dispatch-TLB management and the
//!   state-frames-only swap of §4.1;
//! * [`policy`] — PFU replacement policies: the paper's round-robin and
//!   random, plus the LRU / Second Chance / FIFO family that §4.5's
//!   usage counters enable;
//! * [`costs`] — the explicit cost model (54 KB configuration loads,
//!   state-frame transfers, TLB programming, context switches);
//! * [`probe`] — the unified instrumentation bus: every management
//!   action emits a typed [`probe::Event`] at the point of action, and
//!   [`stats::KernelStats`], [`trace::Trace`] and
//!   [`probe::CycleLedger`] are pure folds over that one stream.
//!
//! # Example
//!
//! ```
//! use porsche::kernel::{Kernel, KernelConfig, SpawnSpec};
//! use proteus_cpu::Cpu;
//! use proteus_rfu::{Rfu, RfuConfig};
//! use proteus_isa::assemble;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble("mov r0, #0\n swi #0\n")?;
//! let mut kernel = Kernel::new(KernelConfig::default());
//! kernel.spawn(SpawnSpec::new(&program))?;
//! let mut cpu = Cpu::new();
//! let mut rfu = Rfu::new(RfuConfig::default());
//! let report = kernel.run(&mut cpu, &mut rfu, 1_000_000)?;
//! assert_eq!(report.exited.len(), 1);
//! # Ok(())
//! # }
//! ```

#![deny(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod chrome;
pub mod cis;
pub mod costs;
pub mod fault;
pub mod kernel;
pub mod policy;
pub mod probe;
pub mod process;
pub mod stats;
pub mod trace;

pub use cis::DispatchMode;
pub use costs::CostModel;
pub use fault::{FaultPlan, FaultUnit, RecoveryPolicy};
pub use kernel::{Kernel, KernelConfig, KernelError, RunReport, SpawnSpec};
pub use policy::{PolicyKind, PolicyView, ReplacementPolicy};
pub use chrome::chrome_trace_json;
pub use probe::{AttributedLedger, Callsite, CycleLedger, Event, EventSink, Probe, Tag};
pub use process::{CircuitSpec, Pid, ProcState};
pub use stats::KernelStats;
pub use trace::Trace;
