//! Ready-made circuits following the PFU interface convention.
//!
//! Every function returns a checked [`Netlist`] with inputs `op_a[32]`,
//! `op_b[32]` (+ `init[1]` for sequential circuits) and outputs
//! `result[32]`, `done[1]` — the contract [`crate::netlist::Netlist::check_pfu_interface`]
//! enforces and the Proteus datapath drives.
//!
//! The headline circuit is [`alpha_blend_channel`]: a real gate-level,
//! two-cycle sequential implementation of the alpha-blending custom
//! instruction the paper's experiments use, sized to fit (and mostly fill)
//! a 500-CLB PFU. Tests prove it equivalent to the arithmetic reference
//! [`alpha_blend_ref`], which is also what the behavioral workload model
//! uses — tying the scheduling experiments to real hardware semantics.

use crate::builder::NetlistBuilder;
use crate::error::FabricError;
use crate::netlist::Netlist;

/// Combinational 32-bit adder (`result = op_a + op_b`, 1 cycle).
///
/// # Errors
///
/// Never fails in practice; the signature matches the other constructors.
pub fn adder32() -> Result<Netlist, FabricError> {
    let mut b = NetlistBuilder::new();
    let a = b.input_bus("op_a", 32);
    let c = b.input_bus("op_b", 32);
    let s = b.add(&a, &c);
    b.output_bus("result", &s);
    let one = b.const_bit(true);
    b.output_bit("done", one);
    b.finish()
}

/// Combinational 32-bit XOR (1 cycle).
///
/// # Errors
///
/// Never fails in practice.
pub fn xor32() -> Result<Netlist, FabricError> {
    let mut b = NetlistBuilder::new();
    let a = b.input_bus("op_a", 32);
    let c = b.input_bus("op_b", 32);
    let x = b.xor_bus(&a, &c);
    b.output_bus("result", &x);
    let one = b.const_bit(true);
    b.output_bit("done", one);
    b.finish()
}

/// Combinational population count of `op_a` (1 cycle).
///
/// # Errors
///
/// Never fails in practice.
pub fn popcount32() -> Result<Netlist, FabricError> {
    let mut b = NetlistBuilder::new();
    let a = b.input_bus("op_a", 32);
    let _ = b.input_bus("op_b", 32);
    let p = b.popcount(&a);
    let p32 = b.resize(&p, 32);
    b.output_bus("result", &p32);
    let one = b.const_bit(true);
    b.output_bit("done", one);
    b.finish()
}

/// Combinational 8×8 multiplier on the low bytes (1 cycle).
///
/// # Errors
///
/// Never fails in practice.
pub fn multiplier8x8() -> Result<Netlist, FabricError> {
    let mut b = NetlistBuilder::new();
    let a = b.input_bus("op_a", 32);
    let c = b.input_bus("op_b", 32);
    let m = b.mul(&a[..8], &c[..8]);
    let m32 = b.resize(&m, 32);
    b.output_bus("result", &m32);
    let one = b.const_bit(true);
    b.output_bit("done", one);
    b.finish()
}

/// Stateful accumulator: each invocation adds `op_a` into an internal
/// 32-bit register and returns the new total (1 cycle). The register is
/// *circuit state* — exactly the data the OS must move via state frames
/// when the circuit is swapped.
///
/// # Errors
///
/// Never fails in practice.
pub fn accumulator32() -> Result<Netlist, FabricError> {
    let mut b = NetlistBuilder::new();
    let a = b.input_bus("op_a", 32);
    let _ = b.input_bus("op_b", 32);
    let _init = b.input_bit("init");
    let acc: Vec<_> = (0..32).map(|_| b.dff_placeholder(false)).collect();
    let sum = b.add(&acc, &a);
    for (d, s) in acc.iter().zip(&sum) {
        b.set_dff_input(*d, *s);
    }
    b.output_bus("result", &sum);
    let one = b.const_bit(true);
    b.output_bit("done", one);
    b.finish()
}

/// Combinational barrel shifter: `result = op_a >> (op_b & 31)` (1 cycle).
///
/// # Errors
///
/// Never fails in practice.
pub fn barrel_shifter32() -> Result<Netlist, FabricError> {
    let mut b = NetlistBuilder::new();
    let a = b.input_bus("op_a", 32);
    let c = b.input_bus("op_b", 32);
    let out = b.shr_var(&a, &c[..5]);
    b.output_bus("result", &out);
    let one = b.const_bit(true);
    b.output_bit("done", one);
    b.finish()
}

/// Combinational Gray-code encoder of `op_a` (1 cycle).
///
/// # Errors
///
/// Never fails in practice.
pub fn gray32() -> Result<Netlist, FabricError> {
    let mut b = NetlistBuilder::new();
    let a = b.input_bus("op_a", 32);
    let _ = b.input_bus("op_b", 32);
    let g = b.gray_encode(&a);
    b.output_bus("result", &g);
    let one = b.const_bit(true);
    b.output_bit("done", one);
    b.finish()
}

/// Sum of absolute byte differences between the four lanes of the two
/// operands (the video-codec SAD kernel; 1 cycle).
///
/// # Errors
///
/// Never fails in practice.
pub fn sad4x8() -> Result<Netlist, FabricError> {
    let mut b = NetlistBuilder::new();
    let a = b.input_bus("op_a", 32);
    let c = b.input_bus("op_b", 32);
    let zero = b.const_bit(false);
    let mut acc = vec![zero; 10];
    for lane in 0..4 {
        let d = b.abs_diff(&a[8 * lane..8 * lane + 8], &c[8 * lane..8 * lane + 8]);
        let d10 = b.resize(&d, 10);
        acc = b.add(&acc, &d10);
    }
    let out = b.resize(&acc, 32);
    b.output_bus("result", &out);
    let one = b.const_bit(true);
    b.output_bit("done", one);
    b.finish()
}

/// A 32-bit Fibonacci LFSR (taps 32, 22, 2, 1): each invocation advances
/// the register once and returns the new value. The seed is the
/// configuration's initial state, so two instances of the same bitstream
/// produce identical streams — and state frames carry the position.
///
/// # Errors
///
/// Never fails in practice.
pub fn lfsr32(seed: u32) -> Result<Netlist, FabricError> {
    let mut b = NetlistBuilder::new();
    let _ = b.input_bus("op_a", 32);
    let _ = b.input_bus("op_b", 32);
    let _init = b.input_bit("init");
    let state: Vec<_> =
        (0..32).map(|i| b.dff_placeholder(seed >> i & 1 == 1)).collect();
    // Feedback from taps 32, 22, 2, 1 (1-indexed from the output end).
    let t1 = b.xor2(state[31], state[21]);
    let t2 = b.xor2(state[1], state[0]);
    let fb = b.xor2(t1, t2);
    // Shift left by one, feedback into bit 0.
    for i in (1..32).rev() {
        b.set_dff_input(state[i], state[i - 1]);
    }
    b.set_dff_input(state[0], fb);
    // Result: the post-shift value (recompute combinationally).
    let mut next = vec![fb];
    next.extend_from_slice(&state[..31]);
    b.output_bus("result", &next);
    let one = b.const_bit(true);
    b.output_bit("done", one);
    b.finish()
}

/// Host-side reference for [`lfsr32`].
pub fn lfsr32_ref(state: u32) -> u32 {
    let fb = (state >> 31 ^ state >> 21 ^ state >> 1 ^ state) & 1;
    (state << 1) | fb
}

/// Arithmetic reference for the alpha-blend custom instruction.
///
/// Blends one 8-bit channel: `(a·α + b·(255−α)) / 255` using the exact
/// `(t + (t>>8) + 1) >> 8` divide-by-255 approximation the gate-level
/// circuit implements. For `α = 255` this returns `a`; for `α = 0` it
/// returns `b`.
pub fn alpha_blend_ref(a: u8, b: u8, alpha: u8) -> u8 {
    let t = u32::from(a) * u32::from(alpha) + u32::from(b) * (255 - u32::from(alpha));
    ((t + (t >> 8) + 1) >> 8) as u8
}

/// Gate-level, two-cycle alpha-blend channel circuit.
///
/// Interface: `op_a` carries the source channel in bits 0–7 and α in bits
/// 8–15; `op_b` carries the destination channel in bits 0–7. The result is
/// [`alpha_blend_ref`]`(a, b, α)`.
///
/// The circuit shares one 8×8 multiplier across two cycles (products
/// `a·α` then `b·(255−α)`), latching the first product in a 16-bit state
/// register — demonstrating the sequential logic and the `init`/`done`
/// protocol of paper §4.4. It occupies most of a 500-CLB PFU.
///
/// # Errors
///
/// Never fails in practice.
pub fn alpha_blend_channel() -> Result<Netlist, FabricError> {
    let mut b = NetlistBuilder::new();
    let op_a = b.input_bus("op_a", 32);
    let op_b = b.input_bus("op_b", 32);
    let init = b.input_bit("init");

    let a = &op_a[..8];
    let alpha = &op_a[8..16];
    let dst = &op_b[..8];
    let not_alpha = b.not_bus(alpha); // 255 - alpha

    // Phase register: 1 during the second cycle of an invocation.
    let phase = b.dff(init, false);

    // Shared multiplier, operand-muxed by `init`.
    let x: Vec<_> = a
        .iter()
        .zip(dst)
        .map(|(&ai, &di)| b.mux2(init, di, ai))
        .collect();
    let y: Vec<_> = alpha
        .iter()
        .zip(&not_alpha)
        .map(|(&al, &nal)| b.mux2(init, nal, al))
        .collect();
    let product = b.mul(&x, &y); // 16 bits

    // First product latched during the init cycle.
    let p_reg: Vec<_> = (0..16).map(|_| b.dff_placeholder(false)).collect();
    for (i, d) in p_reg.iter().enumerate() {
        let held = b.mux2(init, p_reg[i], product[i]);
        // Re-borrow note: mux2 already pushed the node; just rewire.
        b.set_dff_input(*d, held);
    }

    // Second cycle: t = p_reg + product(b, 255-alpha).
    let t = b.add(&p_reg, &product);
    // u = t + (t >> 8) + 1; result = u >> 8.
    let t_hi = b.shr_const(&t, 8);
    let one = b.const_bit(true);
    let (u, _carry) = b.add_with_carry(&t, &t_hi, Some(one));
    let out = &u[8..16];
    let out32 = b.resize(out, 32);
    b.output_bus("result", &out32);
    let not_init = b.not(init);
    let done = b.and2(phase, not_init);
    b.output_bit("done", done);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use crate::device::Device;
    use crate::place::FabricDims;

    fn load(netlist: &Netlist) -> Device {
        netlist.check_pfu_interface().expect("PFU interface");
        let compiled = compile(netlist, FabricDims::PFU).expect("compile");
        let mut dev = Device::new(FabricDims::PFU);
        dev.load(compiled.bitstream()).expect("load");
        dev
    }

    #[test]
    fn adder32_works_on_device() {
        let mut dev = load(&adder32().expect("netlist"));
        let (r, cycles) = dev.run_instruction(0xFFFF_FFFF, 1, 4).expect("run");
        assert_eq!(r, 0);
        assert_eq!(cycles, 1);
    }

    #[test]
    fn popcount32_matches_count_ones() {
        let mut dev = load(&popcount32().expect("netlist"));
        for v in [0u32, 1, 0xFFFF_FFFF, 0xDEAD_BEEF, 0x8000_0001] {
            let (r, _) = dev.run_instruction(v, 0, 4).expect("run");
            assert_eq!(r, v.count_ones(), "v={v:#x}");
        }
    }

    #[test]
    fn multiplier_matches() {
        let mut dev = load(&multiplier8x8().expect("netlist"));
        for (a, b) in [(0u32, 0u32), (255, 255), (13, 17)] {
            let (r, _) = dev.run_instruction(a, b, 4).expect("run");
            assert_eq!(r, a * b);
        }
    }

    #[test]
    fn accumulator_keeps_state_across_invocations() {
        let mut dev = load(&accumulator32().expect("netlist"));
        let mut total = 0u32;
        for add in [5u32, 100, 1, 0, 37] {
            total = total.wrapping_add(add);
            let (r, _) = dev.run_instruction(add, 0, 4).expect("run");
            assert_eq!(r, total);
        }
    }

    #[test]
    fn alpha_blend_takes_two_cycles_and_matches_reference() {
        let mut dev = load(&alpha_blend_channel().expect("netlist"));
        for (a, b, alpha) in [
            (0u8, 0u8, 0u8),
            (255, 0, 255),
            (0, 255, 255),
            (255, 255, 128),
            (10, 200, 77),
            (1, 2, 3),
        ] {
            let op_a = u32::from(a) | (u32::from(alpha) << 8);
            let op_b = u32::from(b);
            let (r, cycles) = dev.run_instruction(op_a, op_b, 8).expect("run");
            assert_eq!(cycles, 2, "blend is a 2-cycle instruction");
            assert_eq!(r as u8, alpha_blend_ref(a, b, alpha), "a={a} b={b} alpha={alpha}");
        }
    }

    #[test]
    fn barrel_shifter_matches() {
        let mut dev = load(&barrel_shifter32().expect("netlist"));
        for (a, amt) in [(0xDEAD_BEEFu32, 0u32), (0xDEAD_BEEF, 31), (0x8000_0000, 4), (1, 16)] {
            let (r, _) = dev.run_instruction(a, amt, 4).expect("run");
            assert_eq!(r, a >> amt, "a={a:#x} amt={amt}");
        }
    }

    #[test]
    fn gray32_matches() {
        let mut dev = load(&gray32().expect("netlist"));
        for a in [0u32, 1, 0xFFFF_FFFF, 0x1234_5678] {
            let (r, _) = dev.run_instruction(a, 0, 4).expect("run");
            assert_eq!(r, a ^ (a >> 1));
        }
    }

    #[test]
    fn sad_matches() {
        let mut dev = load(&sad4x8().expect("netlist"));
        for (a, b) in [(0x0102_0304u32, 0x0401_0203u32), (0xFF00_FF00, 0x00FF_00FF), (7, 7)] {
            let expect: u32 = a
                .to_le_bytes()
                .iter()
                .zip(&b.to_le_bytes())
                .map(|(&x, &y)| u32::from(x.abs_diff(y)))
                .sum();
            let (r, _) = dev.run_instruction(a, b, 4).expect("run");
            assert_eq!(r, expect, "a={a:#x} b={b:#x}");
        }
    }

    #[test]
    fn lfsr_matches_reference_and_state_travels() {
        let seed = 0xACE1_u32 | 0x5eed_0000;
        let mut dev = load(&lfsr32(seed).expect("netlist"));
        let mut state = seed;
        for _ in 0..16 {
            state = lfsr32_ref(state);
            let (r, _) = dev.run_instruction(0, 0, 4).expect("run");
            assert_eq!(r, state);
        }
        // Swap the stream out and back in: it must continue, not restart.
        let saved = dev.save_state().expect("save");
        let next_direct = lfsr32_ref(state);
        let mut dev2 = load(&lfsr32(seed).expect("netlist"));
        dev2.load_state(&saved).expect("restore");
        let (r, _) = dev2.run_instruction(0, 0, 4).expect("run");
        assert_eq!(r, next_direct, "stream resumed mid-sequence");
    }

    #[test]
    fn alpha_blend_endpoints() {
        assert_eq!(alpha_blend_ref(200, 17, 255), 200);
        assert_eq!(alpha_blend_ref(200, 17, 0), 17);
    }

    #[test]
    fn alpha_blend_fills_most_of_a_pfu() {
        let n = alpha_blend_channel().expect("netlist");
        let clbs = n.clb_estimate();
        assert!(clbs <= 500, "must fit a PFU, needs {clbs}");
        assert!(clbs >= 250, "should be a substantial circuit, only {clbs}");
    }

    #[test]
    fn alpha_blend_survives_interruption_via_state_frames() {
        // Clock cycle 1, save state, reload config (simulating the circuit
        // being swapped out), restore state, resume with init low.
        let netlist = alpha_blend_channel().expect("netlist");
        let compiled = compile(&netlist, FabricDims::PFU).expect("compile");
        let mut dev = Device::new(FabricDims::PFU);
        dev.load(compiled.bitstream()).expect("load");

        let (a, b, alpha) = (10u8, 200u8, 77u8);
        let op_a = u32::from(a) | (u32::from(alpha) << 8);
        let op_b = u32::from(b);

        let out1 = dev.clock(op_a, op_b, true).expect("cycle 1");
        assert!(!out1.done);
        let saved = dev.save_state().expect("save");
        dev.load(compiled.bitstream()).expect("swap back in");
        dev.load_state(&saved).expect("restore");
        let out2 = dev.clock(op_a, op_b, false).expect("cycle 2, init low");
        assert!(out2.done);
        assert_eq!(out2.result as u8, alpha_blend_ref(a, b, alpha));
    }
}
