//! Two-pass text assembler.
//!
//! Syntax is ARM-flavoured. Supported statements:
//!
//! ```text
//! label:                      ; labels (also `label:` inline before code)
//!     mov   r0, #10           ; data processing, imm8/rot4 immediates
//!     adds  r0, r1, r2, lsl #3
//!     mul   r0, r1, r2
//!     mla   r0, r1, r2, r3
//!     ldr   r0, [r1]          ; also [r1, #off] [r1, #off]! [r1], #off
//!     strb  r0, [r1, r2, lsl #2]
//!     ldr   r0, =0xDEADBEEF   ; literal pool (or mov/mvn when encodable)
//!     ldr   r0, =label
//!     push  {r0-r3, lr}       ; stmdb sp!, / ldmia sp!,
//!     pop   {r0-r3, pc}
//!     b     label             ; all condition suffixes: beq, bne, …
//!     bl    func
//!     swi   #0
//!     pfu   3, r0, r1, r2     ; Proteus custom instruction
//!     mcr   c4, r0            ; core -> RFU register file
//!     mrc   r0, c4
//!     ldop  r0, a             ; software-dispatch operand registers
//!     stres r0
//!     retsd
//!     mcro  o1, r0            ; OS access to the operand block
//!     mrco  r0, o1
//!     .word 1234, label       ; data directives
//!     .space 64
//!     .align 8
//!     .org  0x8000            ; set origin (once, before any code)
//! ; comments: `;`, `@` or `//`
//! ```
//!
//! The program counter reads as *current instruction address + 4* in
//! PC-relative addressing (one instruction ahead), and branch offsets are
//! relative to the next instruction; the CPU implements the same
//! convention.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::cond::Cond;
use crate::encode::encode;
use crate::instr::{
    BlockOp, DpOp, Instr, MemOffset, MemOp, Operand2, OperandSel, Shift, ShiftKind,
};
use crate::regs::Reg;

/// An assembled program: contiguous words at an origin address, plus the
/// symbol table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    origin: u32,
    words: Vec<u32>,
    symbols: HashMap<String, u32>,
}

impl Program {
    /// Base address the program expects to be loaded at.
    pub fn origin(&self) -> u32 {
        self.origin
    }

    /// The instruction/data words.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Size in bytes.
    pub fn byte_len(&self) -> usize {
        self.words.len() * 4
    }

    /// Address of a label.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// All symbols.
    pub fn symbols(&self) -> &HashMap<String, u32> {
        &self.symbols
    }
}

/// Assembly failure with its source line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError { line, message: message.into() })
}

/// A value that may reference a label.
#[derive(Debug, Clone)]
enum Val {
    Num(u32),
    Label(String),
}

#[derive(Debug, Clone)]
enum Item {
    /// Fully-formed instruction.
    Ready(Instr),
    /// Branch to a label.
    BranchTo { cond: Cond, link: bool, target: String },
    /// `ldr rd, =value` resolved via literal pool (or to mov/mvn late).
    LoadLiteral { cond: Cond, rd: Reg, value: Val },
    /// Raw data word.
    Word(Val),
}

#[derive(Debug)]
struct Line {
    number: usize,
    addr: u32,
    item: Item,
}

/// Assemble source text into a [`Program`].
///
/// # Errors
///
/// [`AsmError`] pinpointing the offending line for syntax errors,
/// unknown mnemonics/labels, out-of-range operands and duplicate labels.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut origin = 0u32;
    let mut origin_set = false;
    let mut addr = 0u32;
    let mut lines: Vec<Line> = Vec::new();
    let mut symbols: HashMap<String, u32> = HashMap::new();
    let mut literals: Vec<(Val, u32)> = Vec::new(); // value, slot address (pass 2)
    let mut pending_literals: Vec<usize> = Vec::new(); // indices into `lines`

    // -------- pass 1: parse, lay out addresses, collect labels ----------
    for (i, raw) in source.lines().enumerate() {
        let number = i + 1;
        let mut text = strip_comment(raw).trim().to_string();
        // Labels (possibly several) at line start.
        while let Some(colon) = find_label(&text) {
            let label = text[..colon].trim().to_string();
            if !is_ident(&label) {
                return err(number, format!("invalid label `{label}`"));
            }
            if symbols.insert(label.clone(), addr).is_some() {
                return err(number, format!("duplicate label `{label}`"));
            }
            text = text[colon + 1..].trim().to_string();
        }
        if text.is_empty() {
            continue;
        }
        if let Some(rest) = text.strip_prefix('.') {
            // Directive.
            let (name, args) = split_first_word(rest);
            match name {
                "org" => {
                    if origin_set || addr != origin {
                        return err(number, ".org must appear once, before any code");
                    }
                    origin = parse_num(args.trim()).ok_or_else(|| AsmError {
                        line: number,
                        message: format!("bad .org value `{args}`"),
                    })?;
                    if !origin.is_multiple_of(4) {
                        return err(number, ".org must be word-aligned");
                    }
                    origin_set = true;
                    addr = origin;
                    // Re-home any labels already defined at the old origin.
                    for v in symbols.values_mut() {
                        *v = origin;
                    }
                }
                "word" => {
                    for part in args.split(',') {
                        let part = part.trim();
                        if part.is_empty() {
                            return err(number, "empty .word operand");
                        }
                        let val = parse_val(part)
                            .ok_or_else(|| AsmError { line: number, message: format!("bad .word `{part}`") })?;
                        lines.push(Line { number, addr, item: Item::Word(val) });
                        addr += 4;
                    }
                }
                "space" => {
                    let n = parse_num(args.trim()).ok_or_else(|| AsmError {
                        line: number,
                        message: format!("bad .space size `{args}`"),
                    })?;
                    if n % 4 != 0 {
                        return err(number, ".space must be a multiple of 4");
                    }
                    for _ in 0..n / 4 {
                        lines.push(Line { number, addr, item: Item::Word(Val::Num(0)) });
                        addr += 4;
                    }
                }
                "align" => {
                    let n = parse_num(args.trim()).unwrap_or(4).max(4);
                    while !addr.is_multiple_of(n) {
                        lines.push(Line { number, addr, item: Item::Word(Val::Num(0)) });
                        addr += 4;
                    }
                }
                _ => return err(number, format!("unknown directive .{name}")),
            }
            continue;
        }
        let item = parse_instruction(number, &text)?;
        if matches!(item, Item::LoadLiteral { .. }) {
            pending_literals.push(lines.len());
        }
        lines.push(Line { number, addr, item });
        addr += 4;
    }

    // -------- literal pool layout ---------------------------------------
    // Decide which `ldr =` become mov/mvn and which need pool slots; pool
    // slots live after the last line, deduplicated by value.
    let mut pool: Vec<(String, u32)> = Vec::new(); // key -> slot addr
    let mut pool_addr = addr;
    for &idx in &pending_literals {
        if let Item::LoadLiteral { value, .. } = &lines[idx].item {
            let needs_pool = match value {
                Val::Num(v) => {
                    Operand2::try_imm(*v).is_none() && Operand2::try_imm(!*v).is_none()
                }
                Val::Label(_) => true,
            };
            if needs_pool {
                let key = val_key(value);
                if !pool.iter().any(|(k, _)| *k == key) {
                    pool.push((key, pool_addr));
                    literals.push((value.clone(), pool_addr));
                    pool_addr += 4;
                }
            }
        }
    }

    // -------- pass 2: resolve and encode ---------------------------------
    let resolve = |val: &Val, line: usize| -> Result<u32, AsmError> {
        match val {
            Val::Num(v) => Ok(*v),
            Val::Label(l) => symbols
                .get(l)
                .copied()
                .ok_or_else(|| AsmError { line, message: format!("undefined label `{l}`") }),
        }
    };

    let mut words: Vec<u32> = Vec::with_capacity(((pool_addr - origin) / 4) as usize);
    for line in &lines {
        let word = match &line.item {
            Item::Ready(i) => encode(*i),
            Item::BranchTo { cond, link, target } => {
                let dest = resolve(&Val::Label(target.clone()), line.number)?;
                let delta = i64::from(dest) - i64::from(line.addr) - 4;
                if delta % 4 != 0 {
                    return err(line.number, "branch target not word-aligned");
                }
                let offset = (delta / 4) as i32;
                if !(-(1 << 22)..(1 << 22)).contains(&offset) {
                    return err(line.number, "branch target out of range");
                }
                encode(Instr::Branch { cond: *cond, link: *link, offset })
            }
            Item::LoadLiteral { cond, rd, value } => {
                let as_mov = match value {
                    Val::Num(v) => Some(*v),
                    Val::Label(_) => None,
                };
                if let Some(v) = as_mov {
                    if let Some(op2) = Operand2::try_imm(v) {
                        words.push(encode(Instr::DataProc {
                            op: DpOp::Mov,
                            cond: *cond,
                            s: false,
                            rd: *rd,
                            rn: Reg::new(0),
                            op2,
                        }));
                        continue;
                    }
                    if let Some(op2) = Operand2::try_imm(!v) {
                        words.push(encode(Instr::DataProc {
                            op: DpOp::Mvn,
                            cond: *cond,
                            s: false,
                            rd: *rd,
                            rn: Reg::new(0),
                            op2,
                        }));
                        continue;
                    }
                }
                let key = val_key(value);
                let slot = pool
                    .iter()
                    .find(|(k, _)| *k == key)
                    .map(|(_, a)| *a)
                    .expect("literal registered in pass 1");
                // PC reads as addr + 4.
                let pc = line.addr + 4;
                let (up, dist) = if slot >= pc { (true, slot - pc) } else { (false, pc - slot) };
                if dist >= 2048 {
                    return err(line.number, "literal pool out of range (program too large)");
                }
                encode(Instr::Mem {
                    op: MemOp::Ldr,
                    cond: *cond,
                    byte: false,
                    rd: *rd,
                    rn: Reg::PC,
                    offset: MemOffset::Imm(dist as u16),
                    up,
                    pre: true,
                    writeback: false,
                })
            }
            Item::Word(v) => resolve(v, line.number)?,
        };
        words.push(word);
    }
    for (value, _) in &literals {
        let v = resolve(value, 0).map_err(|mut e| {
            e.message = format!("in literal pool: {}", e.message);
            e
        })?;
        words.push(v);
    }
    Ok(Program { origin, words, symbols })
}

// ---------------------------------------------------------------------
// lexical helpers
// ---------------------------------------------------------------------

fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    for (i, c) in line.char_indices() {
        if c == ';' || c == '@' {
            end = i;
            break;
        }
        if c == '/' && line[i + 1..].starts_with('/') {
            end = i;
            break;
        }
    }
    &line[..end]
}

/// Find a label-terminating colon at line start (before any whitespace-
/// separated mnemonic has begun with operands).
fn find_label(text: &str) -> Option<usize> {
    let colon = text.find(':')?;
    let head = &text[..colon];
    is_ident(head.trim()).then_some(colon)
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == '.')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

fn split_first_word(s: &str) -> (&str, &str) {
    let s = s.trim();
    match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], s[i..].trim()),
        None => (s, ""),
    }
}

fn parse_num(s: &str) -> Option<u32> {
    let s = s.trim();
    let (neg, s) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).ok()?
    } else if let Some(bin) = s.strip_prefix("0b") {
        u32::from_str_radix(bin, 2).ok()?
    } else {
        s.parse::<u32>().ok()?
    };
    Some(if neg { v.wrapping_neg() } else { v })
}

fn parse_val(s: &str) -> Option<Val> {
    let s = s.trim();
    if let Some(n) = parse_num(s) {
        Some(Val::Num(n))
    } else if is_ident(s) {
        Some(Val::Label(s.to_string()))
    } else {
        None
    }
}

fn val_key(v: &Val) -> String {
    match v {
        Val::Num(n) => format!("#{n}"),
        Val::Label(l) => format!("@{l}"),
    }
}

// ---------------------------------------------------------------------
// instruction parsing
// ---------------------------------------------------------------------

const DP_MNEMONICS: [(&str, DpOp); 16] = [
    ("and", DpOp::And),
    ("eor", DpOp::Eor),
    ("sub", DpOp::Sub),
    ("rsb", DpOp::Rsb),
    ("add", DpOp::Add),
    ("adc", DpOp::Adc),
    ("sbc", DpOp::Sbc),
    ("rsc", DpOp::Rsc),
    ("tst", DpOp::Tst),
    ("teq", DpOp::Teq),
    ("cmp", DpOp::Cmp),
    ("cmn", DpOp::Cmn),
    ("orr", DpOp::Orr),
    ("mov", DpOp::Mov),
    ("bic", DpOp::Bic),
    ("mvn", DpOp::Mvn),
];

/// Split `suffix` into `(cond, leftover-flags)` accepting both
/// `<cond><flags>` and `<flags><cond>` orders, where every char of the
/// leftover must be in `allowed`.
fn split_suffix(suffix: &str, allowed: &str) -> Option<(Cond, String)> {
    // Try: whole thing is a cond.
    if let Some(c) = Cond::from_suffix(suffix) {
        return Some((c, String::new()));
    }
    // Try cond prefix.
    if suffix.len() >= 2 {
        if let Some(c) = Cond::from_suffix(&suffix[..2]) {
            let rest = &suffix[2..];
            if rest.chars().all(|ch| allowed.contains(ch)) {
                return Some((c, rest.to_string()));
            }
        }
    }
    // Try cond suffix.
    if suffix.len() >= 2 {
        let split = suffix.len() - 2;
        if let Some(c) = Cond::from_suffix(&suffix[split..]) {
            let rest = &suffix[..split];
            if rest.chars().all(|ch| allowed.contains(ch)) {
                return Some((c, rest.to_string()));
            }
        }
    }
    // No cond at all: flags only.
    if suffix.chars().all(|ch| allowed.contains(ch)) {
        return Some((Cond::Al, suffix.to_string()));
    }
    None
}

struct Operands<'a> {
    line: usize,
    parts: Vec<&'a str>,
    next: usize,
}

impl<'a> Operands<'a> {
    fn new(line: usize, text: &'a str) -> Self {
        // Split on commas that are not inside brackets or braces.
        let mut parts = Vec::new();
        let mut depth = 0i32;
        let mut start = 0usize;
        for (i, c) in text.char_indices() {
            match c {
                '[' | '{' => depth += 1,
                ']' | '}' => depth -= 1,
                ',' if depth == 0 => {
                    parts.push(text[start..i].trim());
                    start = i + 1;
                }
                _ => {}
            }
        }
        let tail = text[start..].trim();
        if !tail.is_empty() {
            parts.push(tail);
        }
        Self { line, parts, next: 0 }
    }

    fn take(&mut self) -> Result<&'a str, AsmError> {
        let p = self.parts.get(self.next).copied();
        self.next += 1;
        p.ok_or_else(|| AsmError { line: self.line, message: "missing operand".to_string() })
    }

    fn take_reg(&mut self) -> Result<Reg, AsmError> {
        let t = self.take()?;
        Reg::parse(t).ok_or_else(|| AsmError {
            line: self.line,
            message: format!("expected register, found `{t}`"),
        })
    }

    fn remaining(&self) -> usize {
        self.parts.len().saturating_sub(self.next)
    }

    fn finish(&self) -> Result<(), AsmError> {
        if self.remaining() > 0 {
            err(self.line, format!("unexpected operand `{}`", self.parts[self.next]))
        } else {
            Ok(())
        }
    }
}

fn parse_shift(line: usize, parts: &[&str]) -> Result<Shift, AsmError> {
    match parts {
        [] => Ok(Shift::NONE),
        [spec] => {
            let (kind_s, amt_s) = split_first_word(spec);
            let kind = match kind_s {
                "lsl" => ShiftKind::Lsl,
                "lsr" => ShiftKind::Lsr,
                "asr" => ShiftKind::Asr,
                "ror" => ShiftKind::Ror,
                _ => return err(line, format!("unknown shift `{kind_s}`")),
            };
            let amt_s = amt_s
                .strip_prefix('#')
                .ok_or_else(|| AsmError { line, message: "shift amount must be #imm".to_string() })?;
            let amount = parse_num(amt_s)
                .filter(|&a| a < 32)
                .ok_or_else(|| AsmError { line, message: format!("bad shift amount `{amt_s}`") })?;
            Ok(Shift { kind, amount: amount as u8 })
        }
        _ => err(line, "too many shift operands"),
    }
}

fn parse_op2(line: usize, ops: &mut Operands<'_>) -> Result<Operand2, AsmError> {
    let first = ops.take()?;
    if let Some(imm_s) = first.strip_prefix('#') {
        let v = parse_num(imm_s)
            .ok_or_else(|| AsmError { line, message: format!("bad immediate `{imm_s}`") })?;
        return Operand2::try_imm(v).ok_or_else(|| AsmError {
            line,
            message: format!("immediate {v:#x} not encodable as imm8/rot4 (use `ldr rd, =imm`)"),
        });
    }
    let reg = Reg::parse(first)
        .ok_or_else(|| AsmError { line, message: format!("expected register or #imm, found `{first}`") })?;
    let rest: Vec<&str> = (0..ops.remaining()).map(|_| ops.take().expect("counted")).collect();
    let shift = parse_shift(line, &rest)?;
    Ok(Operand2::Reg { reg, shift })
}

fn parse_reglist(line: usize, text: &str) -> Result<u16, AsmError> {
    let inner = text
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or_else(|| AsmError { line, message: "expected {reglist}".to_string() })?;
    let mut mask = 0u16;
    for part in inner.split(',') {
        let part = part.trim();
        if let Some((lo, hi)) = part.split_once('-') {
            let lo = Reg::parse(lo.trim())
                .ok_or_else(|| AsmError { line, message: format!("bad register `{lo}`") })?;
            let hi = Reg::parse(hi.trim())
                .ok_or_else(|| AsmError { line, message: format!("bad register `{hi}`") })?;
            if lo.index() > hi.index() {
                return err(line, format!("descending range `{part}`"));
            }
            for i in lo.index()..=hi.index() {
                mask |= 1 << i;
            }
        } else {
            let r = Reg::parse(part)
                .ok_or_else(|| AsmError { line, message: format!("bad register `{part}`") })?;
            mask |= 1 << r.index();
        }
    }
    if mask == 0 {
        return err(line, "empty register list");
    }
    Ok(mask)
}

/// Parse `[rn]`, `[rn, #off]`, `[rn, #off]!`, `[rn], #off`,
/// `[rn, rm]`, `[rn, rm, lsl #n]`, `[rn], rm`.
fn parse_address(
    line: usize,
    text: &str,
) -> Result<(Reg, MemOffset, bool, bool, bool), AsmError> {
    let text = text.trim();
    let close = text
        .rfind(']')
        .ok_or_else(|| AsmError { line, message: format!("expected address, found `{text}`") })?;
    if !text.starts_with('[') {
        return err(line, format!("expected address, found `{text}`"));
    }
    let inner = &text[1..close];
    let after = text[close + 1..].trim();
    let inner_parts: Vec<&str> = inner.split(',').map(str::trim).collect();
    let rn = Reg::parse(inner_parts[0])
        .ok_or_else(|| AsmError { line, message: format!("bad base register `{}`", inner_parts[0]) })?;

    let parse_off = |line: usize, parts: &[&str]| -> Result<(MemOffset, bool), AsmError> {
        if parts.is_empty() {
            return Ok((MemOffset::Imm(0), true));
        }
        if let Some(imm_s) = parts[0].strip_prefix('#') {
            if parts.len() > 1 {
                return err(line, "unexpected operand after immediate offset");
            }
            let (up, imm_s) = match imm_s.strip_prefix('-') {
                Some(rest) => (false, rest),
                None => (true, imm_s),
            };
            let v = parse_num(imm_s)
                .filter(|&v| v < 2048)
                .ok_or_else(|| AsmError { line, message: format!("offset `{imm_s}` out of range (0–2047)") })?;
            Ok((MemOffset::Imm(v as u16), up))
        } else {
            let (up, reg_s) = match parts[0].strip_prefix('-') {
                Some(rest) => (false, rest),
                None => (true, parts[0]),
            };
            let rm = Reg::parse(reg_s)
                .ok_or_else(|| AsmError { line, message: format!("bad offset register `{reg_s}`") })?;
            let shift = parse_shift(line, &parts[1..].iter().map(|s| s.trim()).collect::<Vec<_>>().join(", ").split_terminator(", ").collect::<Vec<_>>())?;
            Ok((MemOffset::Reg(rm, shift), up))
        }
    };

    if after.is_empty() || after == "!" {
        // Pre-indexed.
        let (offset, up) = parse_off(line, &inner_parts[1..])?;
        Ok((rn, offset, up, true, after == "!"))
    } else {
        // Post-indexed: `[rn], <off>`.
        let rest = after
            .strip_prefix(',')
            .ok_or_else(|| AsmError { line, message: format!("junk after address: `{after}`") })?
            .trim();
        if inner_parts.len() > 1 {
            return err(line, "post-indexed base must be plain [rn]");
        }
        let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
        let (offset, up) = parse_off(line, &parts)?;
        Ok((rn, offset, up, false, true))
    }
}

fn parse_instruction(line: usize, text: &str) -> Result<Item, AsmError> {
    let (mnemonic, rest) = split_first_word(text);
    let mnemonic = mnemonic.to_ascii_lowercase();
    let mut ops = Operands::new(line, rest);

    // Data processing.
    for (base, op) in DP_MNEMONICS {
        if let Some(suffix) = mnemonic.strip_prefix(base) {
            if let Some((cond, flags)) = split_suffix(suffix, "s") {
                let s = flags.contains('s') || op.is_test();
                let (rd, rn) = if op.is_test() {
                    let rn = ops.take_reg()?;
                    (Reg::new(0), rn)
                } else if op.is_move() {
                    let rd = ops.take_reg()?;
                    (rd, Reg::new(0))
                } else {
                    let rd = ops.take_reg()?;
                    let rn = ops.take_reg()?;
                    (rd, rn)
                };
                let op2 = parse_op2(line, &mut ops)?;
                ops.finish()?;
                return Ok(Item::Ready(Instr::DataProc { op, cond, s, rd, rn, op2 }));
            }
        }
    }

    // Multiply.
    for (base, has_acc) in [("mla", true), ("mul", false)] {
        if let Some(suffix) = mnemonic.strip_prefix(base) {
            if let Some((cond, flags)) = split_suffix(suffix, "s") {
                let rd = ops.take_reg()?;
                let rm = ops.take_reg()?;
                let rs = ops.take_reg()?;
                let acc = if has_acc { Some(ops.take_reg()?) } else { None };
                ops.finish()?;
                return Ok(Item::Ready(Instr::Mul { cond, s: flags.contains('s'), rd, rm, rs, acc }));
            }
        }
    }

    // Push/pop sugar.
    if let Some(suffix) = mnemonic.strip_prefix("push") {
        if let Some((cond, _)) = split_suffix(suffix, "") {
            let regs = parse_reglist(line, ops.take()?)?;
            ops.finish()?;
            return Ok(Item::Ready(Instr::Block {
                op: BlockOp::Stm,
                cond,
                rn: Reg::SP,
                regs,
                before: true,
                up: false,
                writeback: true,
            }));
        }
    }
    if let Some(suffix) = mnemonic.strip_prefix("pop") {
        if let Some((cond, _)) = split_suffix(suffix, "") {
            let regs = parse_reglist(line, ops.take()?)?;
            ops.finish()?;
            return Ok(Item::Ready(Instr::Block {
                op: BlockOp::Ldm,
                cond,
                rn: Reg::SP,
                regs,
                before: false,
                up: true,
                writeback: true,
            }));
        }
    }

    // Block transfers.
    for (base, op) in [("ldm", BlockOp::Ldm), ("stm", BlockOp::Stm)] {
        if let Some(suffix) = mnemonic.strip_prefix(base) {
            // Accept <cond><mode> or <mode><cond>; mode defaults to ia.
            let modes = [("ia", true, false), ("ib", true, true), ("da", false, false), ("db", false, true)];
            let mut found = None;
            for (m, up, before) in modes {
                if let Some(rest2) = suffix.strip_suffix(m) {
                    if let Some(c) = Cond::from_suffix(rest2) {
                        found = Some((c, up, before));
                        break;
                    }
                }
                if let Some(rest2) = suffix.strip_prefix(m) {
                    if let Some(c) = Cond::from_suffix(rest2) {
                        found = Some((c, up, before));
                        break;
                    }
                }
            }
            if found.is_none() {
                if let Some(c) = Cond::from_suffix(suffix) {
                    found = Some((c, true, false));
                }
            }
            if let Some((cond, up, before)) = found {
                let base_spec = ops.take()?;
                let (rn_s, writeback) = match base_spec.strip_suffix('!') {
                    Some(r) => (r.trim(), true),
                    None => (base_spec, false),
                };
                let rn = Reg::parse(rn_s)
                    .ok_or_else(|| AsmError { line, message: format!("bad base `{rn_s}`") })?;
                let regs = parse_reglist(line, ops.take()?)?;
                ops.finish()?;
                return Ok(Item::Ready(Instr::Block { op, cond, rn, regs, before, up, writeback }));
            }
        }
    }

    // Loads/stores (after ldm/stm so `ldmia` does not match `ldr`).
    for (base, op) in [("ldr", MemOp::Ldr), ("str", MemOp::Str)] {
        if let Some(suffix) = mnemonic.strip_prefix(base) {
            if let Some((cond, flags)) = split_suffix(suffix, "b") {
                let byte = flags.contains('b');
                let rd = ops.take_reg()?;
                let addr_text = ops.take()?;
                // `ldr rd, =value` pseudo-instruction.
                if let Some(lit) = addr_text.strip_prefix('=') {
                    if op == MemOp::Str || byte {
                        return err(line, "`=literal` only valid with ldr");
                    }
                    ops.finish()?;
                    let value = parse_val(lit)
                        .ok_or_else(|| AsmError { line, message: format!("bad literal `{lit}`") })?;
                    return Ok(Item::LoadLiteral { cond, rd, value });
                }
                // Re-join any comma-split address pieces.
                let mut full = addr_text.to_string();
                while ops.remaining() > 0 {
                    full.push_str(", ");
                    full.push_str(ops.take()?);
                }
                let (rn, offset, up, pre, writeback) = parse_address(line, &full)?;
                return Ok(Item::Ready(Instr::Mem { op, cond, byte, rd, rn, offset, up, pre, writeback }));
            }
        }
    }

    // SWI.
    if let Some(suffix) = mnemonic.strip_prefix("swi") {
        if let Some((cond, _)) = split_suffix(suffix, "") {
            let t = ops.take()?;
            let imm_s = t.strip_prefix('#').unwrap_or(t);
            let imm = parse_num(imm_s)
                .filter(|&v| v < 1 << 24)
                .ok_or_else(|| AsmError { line, message: format!("bad swi number `{t}`") })?;
            ops.finish()?;
            return Ok(Item::Ready(Instr::Swi { cond, imm }));
        }
    }

    // Proteus coprocessor ops.
    if let Some(suffix) = mnemonic.strip_prefix("pfu") {
        if let Some((cond, _)) = split_suffix(suffix, "") {
            let cid_s = ops.take()?;
            let cid = parse_num(cid_s.strip_prefix('#').unwrap_or(cid_s))
                .filter(|&v| v < 256)
                .ok_or_else(|| AsmError { line, message: format!("bad CID `{cid_s}`") })?;
            let rd = ops.take_reg()?;
            let rn = ops.take_reg()?;
            let rm = ops.take_reg()?;
            ops.finish()?;
            return Ok(Item::Ready(Instr::Pfu { cond, cid: cid as u8, rd, rn, rm }));
        }
    }
    if let Some(suffix) = mnemonic.strip_prefix("mcro") {
        if let Some((cond, _)) = split_suffix(suffix, "") {
            let field = parse_field(line, ops.take()?, 'o')?;
            let rs = ops.take_reg()?;
            ops.finish()?;
            return Ok(Item::Ready(Instr::McrO { cond, field, rs }));
        }
    }
    if let Some(suffix) = mnemonic.strip_prefix("mrco") {
        if let Some((cond, _)) = split_suffix(suffix, "") {
            let rd = ops.take_reg()?;
            let field = parse_field(line, ops.take()?, 'o')?;
            ops.finish()?;
            return Ok(Item::Ready(Instr::MrcO { cond, rd, field }));
        }
    }
    if let Some(suffix) = mnemonic.strip_prefix("mcr") {
        if let Some((cond, _)) = split_suffix(suffix, "") {
            let rfu = parse_field(line, ops.take()?, 'c')?;
            let rs = ops.take_reg()?;
            ops.finish()?;
            return Ok(Item::Ready(Instr::Mcr { cond, rfu, rs }));
        }
    }
    if let Some(suffix) = mnemonic.strip_prefix("mrc") {
        if let Some((cond, _)) = split_suffix(suffix, "") {
            let rd = ops.take_reg()?;
            let rfu = parse_field(line, ops.take()?, 'c')?;
            ops.finish()?;
            return Ok(Item::Ready(Instr::Mrc { cond, rd, rfu }));
        }
    }
    if let Some(suffix) = mnemonic.strip_prefix("ldop") {
        if let Some((cond, _)) = split_suffix(suffix, "") {
            let rd = ops.take_reg()?;
            let sel = match ops.take()? {
                "a" => OperandSel::A,
                "b" => OperandSel::B,
                other => return err(line, format!("ldop selector must be a or b, found `{other}`")),
            };
            ops.finish()?;
            return Ok(Item::Ready(Instr::LdOp { cond, rd, sel }));
        }
    }
    if let Some(suffix) = mnemonic.strip_prefix("stres") {
        if let Some((cond, _)) = split_suffix(suffix, "") {
            let rs = ops.take_reg()?;
            ops.finish()?;
            return Ok(Item::Ready(Instr::StRes { cond, rs }));
        }
    }
    if let Some(suffix) = mnemonic.strip_prefix("retsd") {
        if let Some((cond, _)) = split_suffix(suffix, "") {
            ops.finish()?;
            return Ok(Item::Ready(Instr::RetSd { cond }));
        }
    }

    // Branches last: `b`/`bl` prefixes collide with nothing by now.
    if let Some(suffix) = mnemonic.strip_prefix("bl") {
        if let Some(cond) = Cond::from_suffix(suffix) {
            let target = ops.take()?;
            ops.finish()?;
            if !is_ident(target) {
                return err(line, format!("bad branch target `{target}`"));
            }
            return Ok(Item::BranchTo { cond, link: true, target: target.to_string() });
        }
    }
    if let Some(suffix) = mnemonic.strip_prefix('b') {
        if let Some(cond) = Cond::from_suffix(suffix) {
            let target = ops.take()?;
            ops.finish()?;
            if !is_ident(target) {
                return err(line, format!("bad branch target `{target}`"));
            }
            return Ok(Item::BranchTo { cond, link: false, target: target.to_string() });
        }
    }

    err(line, format!("unknown mnemonic `{mnemonic}`"))
}

fn parse_field(line: usize, text: &str, prefix: char) -> Result<u8, AsmError> {
    let body = text
        .strip_prefix(prefix)
        .ok_or_else(|| AsmError { line, message: format!("expected {prefix}<n>, found `{text}`") })?;
    parse_num(body)
        .filter(|&v| v < 16)
        .map(|v| v as u8)
        .ok_or_else(|| AsmError { line, message: format!("bad index `{text}`") })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;

    fn asm(src: &str) -> Program {
        assemble(src).unwrap_or_else(|e| panic!("{e}"))
    }

    #[test]
    fn basic_program_assembles() {
        let p = asm("start: mov r0, #1\n add r1, r0, #2\n swi #0\n");
        assert_eq!(p.words().len(), 3);
        assert_eq!(p.symbol("start"), Some(0));
        assert_eq!(decode(p.words()[0]).expect("decode").to_string(), "mov r0, #1");
    }

    #[test]
    fn branch_targets_resolve() {
        let p = asm("loop: subs r0, r0, #1\n bne loop\n swi #0\n");
        let i = decode(p.words()[1]).expect("decode");
        assert!(matches!(i, Instr::Branch { offset: -2, link: false, .. }));
    }

    #[test]
    fn forward_branch_resolves() {
        let p = asm("b end\n mov r0, #0\nend: swi #0\n");
        let i = decode(p.words()[0]).expect("decode");
        assert!(matches!(i, Instr::Branch { offset: 1, .. }));
    }

    #[test]
    fn literal_pool_for_large_constants() {
        let p = asm("ldr r0, =0x12345678\n swi #0\n");
        assert_eq!(p.words().len(), 3, "ldr + swi + pool slot");
        assert_eq!(p.words()[2], 0x1234_5678);
        // ldr r0, [pc, #off]: pc = 0 + 4, slot at 8 -> off 4.
        let i = decode(p.words()[0]).expect("decode");
        match i {
            Instr::Mem { op: MemOp::Ldr, rn, offset: MemOffset::Imm(4), up: true, .. } => {
                assert_eq!(rn, Reg::PC);
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn small_literal_becomes_mov() {
        let p = asm("ldr r0, =255\n");
        assert_eq!(p.words().len(), 1);
        assert_eq!(decode(p.words()[0]).expect("decode").to_string(), "mov r0, #255");
    }

    #[test]
    fn inverted_literal_becomes_mvn() {
        let p = asm("ldr r0, =0xFFFFFFFF\n");
        assert_eq!(p.words().len(), 1);
        assert!(matches!(
            decode(p.words()[0]).expect("decode"),
            Instr::DataProc { op: DpOp::Mvn, .. }
        ));
    }

    #[test]
    fn label_literal_uses_pool() {
        let p = asm("ldr r0, =data\n swi #0\ndata: .word 99\n");
        // words: ldr, swi, data(99), pool(addr of data = 8)
        assert_eq!(p.words().len(), 4);
        assert_eq!(p.words()[2], 99);
        assert_eq!(p.words()[3], 8);
    }

    #[test]
    fn push_pop_sugar() {
        let p = asm("push {r0-r2, lr}\n pop {r0-r2, pc}\n");
        match decode(p.words()[0]).expect("decode") {
            Instr::Block { op: BlockOp::Stm, rn, regs, before: true, up: false, writeback: true, .. } => {
                assert_eq!(rn, Reg::SP);
                assert_eq!(regs, 0b0100_0000_0000_0111);
            }
            other => panic!("unexpected {other}"),
        }
        match decode(p.words()[1]).expect("decode") {
            Instr::Block { op: BlockOp::Ldm, regs, before: false, up: true, writeback: true, .. } => {
                assert_eq!(regs, 0b1000_0000_0000_0111);
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn addressing_modes_parse() {
        let p = asm(
            "ldr r0, [r1]\n\
             ldr r0, [r1, #8]\n\
             ldr r0, [r1, #-8]\n\
             ldr r0, [r1, #8]!\n\
             ldr r0, [r1], #8\n\
             ldrb r0, [r1, r2]\n\
             str r0, [r1, r2, lsl #2]\n",
        );
        let texts: Vec<String> =
            p.words().iter().map(|&w| decode(w).expect("decode").to_string()).collect();
        assert_eq!(texts[0], "ldr r0, [r1]");
        assert_eq!(texts[1], "ldr r0, [r1, #8]");
        assert_eq!(texts[2], "ldr r0, [r1, #-8]");
        assert_eq!(texts[3], "ldr r0, [r1, #8]!");
        assert_eq!(texts[4], "ldr r0, [r1], #8");
        assert_eq!(texts[5], "ldrb r0, [r1, r2]");
        assert_eq!(texts[6], "str r0, [r1, r2, lsl #2]");
    }

    #[test]
    fn proteus_ops_assemble() {
        let p = asm("pfu 3, r0, r1, r2\n mcr c4, r0\n mrc r0, c4\n ldop r0, a\n stres r1\n retsd\n mcro o2, r3\n mrco r3, o2\n");
        let texts: Vec<String> =
            p.words().iter().map(|&w| decode(w).expect("decode").to_string()).collect();
        assert_eq!(texts[0], "pfu 3, r0, r1, r2");
        assert_eq!(texts[1], "mcr c4, r0");
        assert_eq!(texts[2], "mrc r0, c4");
        assert_eq!(texts[3], "ldop r0, a");
        assert_eq!(texts[4], "stres r1");
        assert_eq!(texts[5], "retsd");
        assert_eq!(texts[6], "mcro o2, r3");
        assert_eq!(texts[7], "mrco r3, o2");
    }

    #[test]
    fn cond_suffixes_parse_in_both_positions() {
        let p = asm("addeqs r0, r0, #1\n addseq r0, r0, #1\n ldrneb r0, [r1]\n ldrbne r0, [r1]\n");
        for &w in p.words() {
            let i = decode(w).expect("decode");
            assert_ne!(i.cond(), Cond::Al);
        }
    }

    #[test]
    fn org_directive_rebases() {
        let p = asm(".org 0x8000\nentry: b entry\n");
        assert_eq!(p.origin(), 0x8000);
        assert_eq!(p.symbol("entry"), Some(0x8000));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("mov r0, #1\n bogus r1\n").expect_err("should fail");
        assert_eq!(e.line, 2);
        let e = assemble("mov r0, #0x101\n").expect_err("imm not encodable");
        assert!(e.message.contains("not encodable"));
        let e = assemble("x: mov r0, #1\nx: mov r1, #1\n").expect_err("dup label");
        assert!(e.message.contains("duplicate"));
        let e = assemble("b nowhere\n").expect_err("undefined label");
        assert!(e.message.contains("undefined"));
    }

    #[test]
    fn word_directive_with_labels_and_numbers() {
        let p = asm("v: .word 1, 2, v\n");
        assert_eq!(p.words(), &[1, 2, 0]);
    }

    #[test]
    fn space_and_align() {
        let p = asm("mov r0, #0\n.align 16\nbuf: .space 8\nafter: mov r1, #0\n");
        assert_eq!(p.symbol("buf"), Some(16));
        assert_eq!(p.symbol("after"), Some(24));
    }
}
