//! PFU contention in action: sweep 1–8 concurrent alpha-blending
//! processes across a 4-PFU ProteanARM and watch completion time and
//! management overhead react (the heart of the paper's Figure 2).
//!
//! Run with `cargo run --release --example alpha_contention`.

use porsche::policy::PolicyKind;
use proteus::scenario::Scenario;
use proteus_apps::AppKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("alpha blending, 4 PFUs, round-robin replacement, 1 ms quantum");
    println!(
        "{:>4} {:>14} {:>8} {:>8} {:>10} {:>12}",
        "n", "makespan", "faults", "loads", "evictions", "config bytes"
    );
    for n in 1..=8 {
        let result = Scenario::new(AppKind::Alpha)
            .instances(n)
            .size(512)
            .passes(40)
            .quantum(100_000) // 1 ms at 100 MHz
            .policy(PolicyKind::RoundRobin)
            .run()?;
        assert!(result.all_valid(), "every instance must compute the right image");
        println!(
            "{:>4} {:>14} {:>8} {:>8} {:>10} {:>12}",
            n,
            result.makespan,
            result.stats.custom_faults,
            result.stats.config_loads,
            result.stats.evictions,
            result.stats.config_bytes_moved(),
        );
    }
    println!();
    println!("note the knee after n=4: the four PFUs are full, and every extra");
    println!("instance forces 54 KB reconfigurations on the critical path.");
    Ok(())
}
