//! Criterion bench over the Figure 2 configuration space (Basic
//! Scheduling Test): completion time of N concurrent instances per
//! {application × policy × quantum}, at a reduced workload scale so the
//! whole grid stays benchable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use porsche::policy::PolicyKind;
use proteus::experiment::{QUANTUM_10MS, QUANTUM_1MS};
use proteus::scenario::Scenario;
use proteus_apps::AppKind;

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_basic_scheduling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(700));
    for app in [AppKind::Echo, AppKind::Alpha, AppKind::Twofish] {
        for (policy, pname) in
            [(PolicyKind::RoundRobin, "rr"), (PolicyKind::Random { seed: 2003 }, "rand")]
        {
            for (quantum, qname) in [(QUANTUM_10MS, "10ms"), (QUANTUM_1MS, "1ms")] {
                for n in [1usize, 4, 6, 8] {
                    let id = BenchmarkId::new(
                        format!("{}_{}_{}", app.name(), pname, qname),
                        n,
                    );
                    group.bench_function(id, |b| {
                        b.iter(|| {
                            let result = Scenario::new(app)
                                .instances(n)
                                .size(64)
                                .passes(8)
                                .quantum(quantum)
                                .policy(policy)
                                .run()
                                .expect("fig2 bench run");
                            assert!(result.all_valid());
                            result.makespan
                        })
                    });
                }
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
