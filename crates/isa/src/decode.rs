//! Binary decoding (the inverse of [`crate::encode`]).

use std::error::Error;
use std::fmt;

use crate::cond::Cond;
use crate::instr::{
    BlockOp, DpOp, Instr, MemOffset, MemOp, Operand2, OperandSel, Shift, ShiftKind,
};
use crate::regs::Reg;

/// Failure to decode a word — the ProteanARM raises an
/// undefined-instruction exception for these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The word that failed to decode.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "undefined instruction word {:#010x}", self.word)
    }
}

impl Error for DecodeError {}

fn reg(word: u32, lsb: u32) -> Reg {
    Reg::from_bits(word >> lsb)
}

fn shift(word: u32, lsb: u32) -> Shift {
    let amount = ((word >> lsb) & 0x1F) as u8;
    // Canonical zero-amount shift is `lsl #0` whatever the kind bits
    // say: every kind passes the value through at amount 0 (see
    // `crate::encode` module docs, "Canonical forms").
    let kind = if amount == 0 { ShiftKind::Lsl } else { ShiftKind::from_bits(word >> (lsb + 5)) };
    Shift { kind, amount }
}

/// Decode one instruction word.
///
/// # Errors
///
/// [`DecodeError`] if the word uses a reserved class, a reserved condition
/// or a reserved RFU sub-operation.
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    let cond = Cond::from_bits(word >> 28).ok_or(DecodeError { word })?;
    let class = (word >> 24) & 0xF;
    let instr = match class {
        0x0..=0x3 => {
            let op = DpOp::from_bits(word >> 20);
            let s = class & 1 == 1 || op.is_test();
            let op2 = if class < 2 {
                Operand2::Reg { reg: reg(word, 8), shift: shift(word, 1) }
            } else {
                // Canonical immediate: re-derive the lowest rotation for
                // the denoted constant (zero encodes under every
                // rotation; the assembler always picks the lowest).
                let denoted =
                    Operand2::imm_value((word & 0xFF) as u8, ((word >> 8) & 0xF) as u8);
                Operand2::try_imm(denoted)
                    .expect("every imm8/rot4 constant has a lowest-rotation form")
            };
            // Canonical ignored fields: tests have no destination, moves
            // have no first operand.
            let rd = if op.is_test() { Reg::from_bits(0) } else { reg(word, 16) };
            let rn = if op.is_move() { Reg::from_bits(0) } else { reg(word, 12) };
            Instr::DataProc { op, cond, s, rd, rn, op2 }
        }
        0x4 => Instr::Mul {
            cond,
            s: word >> 22 & 1 == 1,
            rd: reg(word, 16),
            rm: reg(word, 12),
            rs: reg(word, 8),
            acc: (word >> 23 & 1 == 1).then(|| reg(word, 4)),
        },
        0x5 | 0x6 => {
            let op = if word >> 23 & 1 == 1 { MemOp::Ldr } else { MemOp::Str };
            let offset = if class == 0x5 {
                MemOffset::Imm((word & 0x7FF) as u16)
            } else {
                MemOffset::Reg(reg(word, 7), shift(word, 0))
            };
            // Canonical addressing: a zero immediate offset is an
            // addition (no negative zero) and post-indexed accesses
            // always write back — the CPU honours both either way, and
            // the assembly form cannot express the redundant variants.
            let pre = word >> 21 & 1 == 1;
            Instr::Mem {
                op,
                cond,
                byte: word >> 22 & 1 == 1,
                pre,
                up: word >> 20 & 1 == 1 || matches!(offset, MemOffset::Imm(0)),
                rd: reg(word, 16),
                rn: reg(word, 12),
                writeback: word >> 11 & 1 == 1 || !pre,
                offset,
            }
        }
        0x7 => Instr::Block {
            op: if word >> 23 & 1 == 1 { BlockOp::Ldm } else { BlockOp::Stm },
            cond,
            up: word >> 22 & 1 == 1,
            before: word >> 21 & 1 == 1,
            writeback: word >> 20 & 1 == 1,
            rn: reg(word, 16),
            regs: (word & 0xFFFF) as u16,
        },
        0x8 => {
            let raw = word & 0x7F_FFFF;
            // Sign-extend 23 bits.
            let offset = ((raw << 9) as i32) >> 9;
            Instr::Branch { cond, link: word >> 23 & 1 == 1, offset }
        }
        0x9 => Instr::Swi { cond, imm: word & 0xFF_FFFF },
        0xA => Instr::Pfu {
            cond,
            cid: ((word >> 16) & 0xFF) as u8,
            rd: reg(word, 12),
            rn: reg(word, 8),
            rm: reg(word, 4),
        },
        0xB => {
            let sub = (word >> 20) & 0xF;
            let idx = ((word >> 16) & 0xF) as u8;
            match sub {
                0x0 => Instr::Mcr { cond, rfu: idx, rs: reg(word, 12) },
                0x1 => Instr::Mrc { cond, rd: reg(word, 12), rfu: idx },
                0x2 => Instr::LdOp {
                    cond,
                    rd: reg(word, 12),
                    sel: OperandSel::from_bits(u32::from(idx)).ok_or(DecodeError { word })?,
                },
                0x3 => Instr::StRes { cond, rs: reg(word, 12) },
                0x4 => Instr::RetSd { cond },
                0x5 => Instr::McrO { cond, field: idx, rs: reg(word, 12) },
                0x6 => Instr::MrcO { cond, rd: reg(word, 12), field: idx },
                _ => return Err(DecodeError { word }),
            }
        }
        _ => return Err(DecodeError { word }),
    };
    Ok(instr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    fn roundtrip(i: Instr) {
        let word = encode(i);
        let back = decode(word).unwrap_or_else(|e| panic!("decode {i}: {e}"));
        assert_eq!(back, i, "word {word:#010x}");
    }

    #[test]
    fn dataproc_roundtrips() {
        for op in DpOp::ALL {
            for s in [false, true] {
                // Test ops force S semantically; encoder stores the class
                // bit, decoder normalises.
                let s_eff = s || op.is_test();
                // Canonical ignored fields (see encode module docs).
                let rd = if op.is_test() { Reg::new(0) } else { Reg::new(3) };
                let rn = if op.is_move() { Reg::new(0) } else { Reg::new(4) };
                roundtrip(Instr::DataProc {
                    op,
                    cond: Cond::Ne,
                    s: s_eff,
                    rd,
                    rn,
                    op2: Operand2::Imm { value: 0x42, rot: 5 },
                });
                let rd = if op.is_test() { Reg::new(0) } else { Reg::new(15) };
                roundtrip(Instr::DataProc {
                    op,
                    cond: Cond::Al,
                    s: s_eff,
                    rd,
                    rn: Reg::new(0),
                    op2: Operand2::Reg {
                        reg: Reg::new(9),
                        shift: Shift { kind: ShiftKind::Asr, amount: 17 },
                    },
                });
            }
        }
    }

    #[test]
    fn mul_and_mem_roundtrip() {
        roundtrip(Instr::Mul {
            cond: Cond::Al,
            s: true,
            rd: Reg::new(1),
            rm: Reg::new(2),
            rs: Reg::new(3),
            acc: Some(Reg::new(4)),
        });
        roundtrip(Instr::Mem {
            op: MemOp::Ldr,
            cond: Cond::Cs,
            byte: true,
            rd: Reg::new(5),
            rn: Reg::new(6),
            offset: MemOffset::Imm(2047),
            up: false,
            pre: true,
            writeback: true,
        });
        roundtrip(Instr::Mem {
            op: MemOp::Str,
            cond: Cond::Al,
            byte: false,
            rd: Reg::new(7),
            rn: Reg::new(8),
            offset: MemOffset::Reg(Reg::new(9), Shift { kind: ShiftKind::Lsl, amount: 2 }),
            up: true,
            pre: false,
            // Post-indexed accesses always write back (canonical form).
            writeback: true,
        });
    }

    #[test]
    fn branch_offsets_roundtrip_signed() {
        for offset in [-4_194_304i32, -1, 0, 1, 4_194_303] {
            roundtrip(Instr::Branch { cond: Cond::Al, link: true, offset });
        }
    }

    #[test]
    fn proteus_ops_roundtrip() {
        roundtrip(Instr::Pfu { cond: Cond::Al, cid: 255, rd: Reg::new(1), rn: Reg::new(2), rm: Reg::new(3) });
        roundtrip(Instr::Mcr { cond: Cond::Al, rfu: 15, rs: Reg::new(2) });
        roundtrip(Instr::Mrc { cond: Cond::Al, rd: Reg::new(2), rfu: 15 });
        roundtrip(Instr::LdOp { cond: Cond::Al, rd: Reg::new(0), sel: OperandSel::A });
        roundtrip(Instr::LdOp { cond: Cond::Al, rd: Reg::new(0), sel: OperandSel::B });
        roundtrip(Instr::StRes { cond: Cond::Al, rs: Reg::new(0) });
        roundtrip(Instr::RetSd { cond: Cond::Al });
        roundtrip(Instr::McrO { cond: Cond::Al, field: 3, rs: Reg::new(1) });
        roundtrip(Instr::MrcO { cond: Cond::Al, rd: Reg::new(1), field: 3 });
    }

    #[test]
    fn reserved_classes_fault() {
        for class in 0xCu32..=0xF {
            let word = class << 24;
            assert!(decode(word).is_err(), "class {class:#x} should be undefined");
        }
        // Reserved condition 15.
        assert!(decode(0xF000_0000).is_err());
        // Reserved RFU sub-op.
        assert!(decode(0x0B70_0000).is_err());
    }
}
