//! The full hardware flow an application developer would follow to create
//! a custom instruction: describe logic as gates, synthesize to LUT4s,
//! pack, place, inspect quality of result, compile to a bitstream, and
//! run it under the OS.
//!
//! Run with `cargo run --example synthesis_flow`.

use porsche::kernel::SpawnSpec;
use porsche::process::CircuitSpec;
use proteus::machine::{Machine, MachineConfig};
use proteus_fabric::place::FabricDims;
use proteus_fabric::synth::{pack_luts, synthesize, GateNetlist};
use proteus_fabric::compile;
use proteus_rfu::NetlistCircuit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the instruction as technology-independent gates:
    //    result = (op_a & op_b) ^ ~(op_a | op_b)  == XNOR per bit.
    let mut g = GateNetlist::new();
    let a = g.input_bus("op_a", 32);
    let b = g.input_bus("op_b", 32);
    let mut outs = Vec::new();
    for i in 0..32 {
        let and = g.and(vec![a[i], b[i]]);
        let or = g.or(vec![a[i], b[i]]);
        let nor = g.not(or);
        outs.push(g.xor(vec![and, nor]));
    }
    g.output_bus("result", &outs);
    // The PFU handshake: a combinational instruction completes in one
    // cycle, so `done` is the constant-1 rail.
    let done = g.constant(true);
    g.output_bus("done", &[done]);
    println!("gate design: {} gates", g.len());

    // 2. Synthesize to LUT4s and pack logic cones.
    let lowered = synthesize(&g)?;
    let (packed, stats) = pack_luts(&lowered);
    println!(
        "synthesis: {} LUTs lowered -> {} after packing ({} merges)",
        stats.luts_before, stats.luts_after, stats.merges
    );
    packed.check_pfu_interface()?;

    // 3. Place, inspect wirelength, compile.
    let compiled = compile(&packed, FabricDims::PFU)?;
    println!(
        "placement: {} CLBs used, wirelength {} grid units",
        compiled.placement().used_clbs,
        compiled.wirelength(&packed)
    );
    println!(
        "bitstream: {} bytes static + {} bytes state",
        compiled.bitstream().static_bytes(),
        compiled.bitstream().state_bytes()
    );

    // 4. Register it as a custom instruction and use it from guest code.
    let program = proteus_isa::assemble(
        "start:\n\
         \x20   ldr r0, =0xF0F0F0F0\n\
         \x20   ldr r1, =0xFF00FF00\n\
         \x20   pfu 0, r2, r0, r1\n\
         \x20   mov r0, r2\n\
         \x20   swi #0\n",
    )?;
    let entry = program.symbol("start").expect("start");
    let mut machine = Machine::new(MachineConfig::default());
    machine.spawn(SpawnSpec::new(&program).entry(entry).circuit(CircuitSpec {
        cid: 0,
        circuit: Box::new(NetlistCircuit::new(compiled.bitstream())?),
        software_alt: None,
        image: None,
    }))?;
    let report = machine.run(10_000_000)?;
    let result = report.exited[0].2;
    println!("guest computed XNOR(0xF0F0F0F0, 0xFF00FF00) = {result:#010x}");
    assert_eq!(result, !(0xF0F0_F0F0u32 ^ 0xFF00_FF00));
    Ok(())
}
