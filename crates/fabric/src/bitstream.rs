//! Bitstream format with separate static and state sections.
//!
//! The paper (§4.1) requires the configuration to be split so that only the
//! state of CLB registers moves when a resident circuit's context is
//! swapped. We model a Virtex-like *full-frame* format: the static section
//! always covers every CLB of the fabric (so a 500-CLB PFU configuration is
//! always [`CONFIG_BYTES_PER_CLB`] × 500 = 54 000 bytes ≈ the paper's
//! 54 KB figure, independent of how much of the PFU the circuit uses),
//! while the state section packs one register bit per CLB.
//!
//! The format is fully serialisable: [`Bitstream::to_words`] /
//! [`Bitstream::from_words`] round-trip, and [`crate::device::Device`]
//! executes circuits from the decoded form only.

use crate::error::FabricError;
use crate::netlist::{Netlist, Node, NodeId, Port};
use crate::place::{FabricDims, Placement, SourceRef};

/// Static configuration bytes per CLB. 16-bit LUT truth table, four
/// LUT-pin routing selectors, the register's data-source selector and
/// Virtex-style frame padding: 27 words = 108 bytes. 500 CLBs → 54 000
/// bytes, matching the paper's "54 Kbytes … for a configuration".
pub const CONFIG_BYTES_PER_CLB: usize = 108;

/// Words per CLB in the static section.
pub const WORDS_PER_CLB: usize = CONFIG_BYTES_PER_CLB / 4;

/// Magic word opening a serialised bitstream (`"PFPL"`).
pub const MAGIC: u32 = 0x5046_504C;

/// Encoded routing-mux selector. See [`SourceRef`] for the decoded form.
pub type Selector = u32;

const TAG_CONST: u32 = 0;
const TAG_PORT: u32 = 1;
const TAG_LUT: u32 = 2;
const TAG_DFF: u32 = 3;

/// Encode a [`SourceRef`] into a routing-mux selector word.
pub fn encode_source(src: SourceRef) -> Selector {
    match src {
        SourceRef::Const(v) => (TAG_CONST << 28) | u32::from(v),
        SourceRef::Port(port, bit) => (TAG_PORT << 28) | (u32::from(port) << 16) | u32::from(bit),
        SourceRef::ClbLut(clb) => (TAG_LUT << 28) | u32::from(clb),
        SourceRef::ClbDff(clb) => (TAG_DFF << 28) | u32::from(clb),
    }
}

/// Decode a selector word.
///
/// # Errors
///
/// [`FabricError::MalformedBitstream`] on an unknown tag.
pub fn decode_source(sel: Selector) -> Result<SourceRef, FabricError> {
    match sel >> 28 {
        TAG_CONST => Ok(SourceRef::Const(sel & 1 == 1)),
        TAG_PORT => Ok(SourceRef::Port(((sel >> 16) & 0x0FFF) as u16, (sel & 0xFFFF) as u16)),
        TAG_LUT => Ok(SourceRef::ClbLut((sel & 0xFFFF) as u16)),
        TAG_DFF => Ok(SourceRef::ClbDff((sel & 0xFFFF) as u16)),
        tag => Err(FabricError::MalformedBitstream { detail: format!("unknown selector tag {tag}") }),
    }
}

/// Static configuration of one CLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClbStatic {
    /// Whether the LUT participates in the design.
    pub lut_used: bool,
    /// LUT truth table.
    pub truth: u16,
    /// Routing selector feeding each LUT pin.
    pub pin_src: [Selector; 4],
    /// Whether the register participates in the design.
    pub dff_used: bool,
    /// Routing selector feeding the register's D input.
    pub dff_src: Selector,
}

/// The state section: one register bit per CLB (whether used or not —
/// full-frame, like the static section).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StateFrames {
    /// Register value per CLB, indexed by CLB number.
    pub bits: Vec<bool>,
}

impl StateFrames {
    /// Bytes this section occupies on the configuration bus (8-byte frame
    /// header + packed bits).
    pub fn bytes(&self) -> usize {
        8 + self.bits.len().div_ceil(8)
    }

    /// Words on the 32-bit configuration bus.
    pub fn words(&self) -> usize {
        2 + self.bits.len().div_ceil(32)
    }
}

/// A complete PFU configuration: static frames, initial state frames, and
/// the interface descriptor (port names and output routing) that
/// accompanies a circuit when an application registers it with the OS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitstream {
    dims: FabricDims,
    clbs: Vec<ClbStatic>,
    inputs: Vec<Port>,
    outputs: Vec<(String, Vec<Selector>)>,
    initial_state: StateFrames,
}

impl Bitstream {
    /// Fabric dimensions this configuration targets.
    pub fn dims(&self) -> FabricDims {
        self.dims
    }

    /// Per-CLB static configuration, indexed by CLB number.
    pub fn clbs(&self) -> &[ClbStatic] {
        &self.clbs
    }

    /// Declared input ports.
    pub fn inputs(&self) -> &[Port] {
        &self.inputs
    }

    /// Output buses: name plus a routing selector per bit.
    pub fn outputs(&self) -> &[(String, Vec<Selector>)] {
        &self.outputs
    }

    /// Initial register state (loaded with the static section on a full
    /// configuration).
    pub fn initial_state(&self) -> &StateFrames {
        &self.initial_state
    }

    /// Size of the static section in bytes. Full-frame: depends only on
    /// the fabric dimensions. For [`FabricDims::PFU`] this is 54 000 bytes.
    pub fn static_bytes(&self) -> usize {
        self.dims.clbs() * CONFIG_BYTES_PER_CLB
    }

    /// Size of the state section in bytes.
    pub fn state_bytes(&self) -> usize {
        self.initial_state.bytes()
    }

    /// Serialise to configuration-bus words (magic, dims, static frames,
    /// state frames, descriptor).
    pub fn to_words(&self) -> Vec<u32> {
        let mut w = Vec::with_capacity(4 + self.dims.clbs() * WORDS_PER_CLB);
        w.push(MAGIC);
        w.push((u32::from(self.dims.width) << 16) | u32::from(self.dims.height));
        // Static frames.
        for clb in &self.clbs {
            let mut frame = [0u32; WORDS_PER_CLB];
            frame[0] = u32::from(clb.lut_used) | (u32::from(clb.dff_used) << 1);
            frame[1] = u32::from(clb.truth);
            frame[2..6].copy_from_slice(&clb.pin_src);
            frame[6] = clb.dff_src;
            // frame[7..] stays zero: reserved routing capacity.
            w.extend_from_slice(&frame);
        }
        // State frames.
        w.push(self.initial_state.bits.len() as u32);
        let mut acc = 0u32;
        for (i, &b) in self.initial_state.bits.iter().enumerate() {
            if b {
                acc |= 1 << (i % 32);
            }
            if i % 32 == 31 {
                w.push(acc);
                acc = 0;
            }
        }
        if !self.initial_state.bits.len().is_multiple_of(32) {
            w.push(acc);
        }
        // Descriptor: inputs then outputs, with length-prefixed names.
        w.push(self.inputs.len() as u32);
        for p in &self.inputs {
            push_str(&mut w, &p.name);
            w.push(u32::from(p.width));
        }
        w.push(self.outputs.len() as u32);
        for (name, sels) in &self.outputs {
            push_str(&mut w, name);
            w.push(sels.len() as u32);
            w.extend_from_slice(sels);
        }
        w
    }

    /// Deserialise from configuration-bus words.
    ///
    /// # Errors
    ///
    /// [`FabricError::MalformedBitstream`] on bad magic, truncation or any
    /// structurally invalid field.
    pub fn from_words(words: &[u32]) -> Result<Self, FabricError> {
        let mut r = Reader { words, pos: 0 };
        if r.next()? != MAGIC {
            return Err(FabricError::MalformedBitstream { detail: "bad magic".to_string() });
        }
        let dims_word = r.next()?;
        let dims = FabricDims::new((dims_word >> 16) as u16, (dims_word & 0xFFFF) as u16);
        let n_clbs = dims.clbs();
        if n_clbs == 0 || n_clbs > u16::MAX as usize {
            return Err(FabricError::MalformedBitstream {
                detail: format!("implausible fabric dimensions {}x{}", dims.width, dims.height),
            });
        }
        let mut clbs = Vec::with_capacity(n_clbs);
        for _ in 0..n_clbs {
            let mut frame = [0u32; WORDS_PER_CLB];
            for slot in frame.iter_mut() {
                *slot = r.next()?;
            }
            for &pad in &frame[7..] {
                if pad != 0 {
                    return Err(FabricError::MalformedBitstream {
                        detail: "nonzero reserved routing word".to_string(),
                    });
                }
            }
            clbs.push(ClbStatic {
                lut_used: frame[0] & 1 == 1,
                dff_used: frame[0] >> 1 & 1 == 1,
                truth: (frame[1] & 0xFFFF) as u16,
                pin_src: [frame[2], frame[3], frame[4], frame[5]],
                dff_src: frame[6],
            });
        }
        let n_state = r.next()? as usize;
        if n_state != n_clbs {
            return Err(FabricError::MalformedBitstream {
                detail: format!("state frame covers {n_state} CLBs, fabric has {n_clbs}"),
            });
        }
        let mut bits = Vec::with_capacity(n_state);
        let mut word = 0u32;
        for i in 0..n_state {
            if i % 32 == 0 {
                word = r.next()?;
            }
            bits.push(word >> (i % 32) & 1 == 1);
        }
        let n_in = r.next()? as usize;
        let mut inputs = Vec::with_capacity(n_in);
        for _ in 0..n_in {
            let name = read_str(&mut r)?;
            let width = r.next()? as u16;
            inputs.push(Port { name, width });
        }
        let n_out = r.next()? as usize;
        let mut outputs = Vec::with_capacity(n_out);
        for _ in 0..n_out {
            let name = read_str(&mut r)?;
            let n_bits = r.next()? as usize;
            let mut sels = Vec::with_capacity(n_bits);
            for _ in 0..n_bits {
                sels.push(r.next()?);
            }
            outputs.push((name, sels));
        }
        Ok(Self { dims, clbs, inputs, outputs, initial_state: StateFrames { bits } })
    }
}

struct Reader<'a> {
    words: &'a [u32],
    pos: usize,
}

impl Reader<'_> {
    fn next(&mut self) -> Result<u32, FabricError> {
        let w = self.words.get(self.pos).copied().ok_or(FabricError::MalformedBitstream {
            detail: "truncated bitstream".to_string(),
        })?;
        self.pos += 1;
        Ok(w)
    }
}

fn push_str(w: &mut Vec<u32>, s: &str) {
    let bytes = s.as_bytes();
    w.push(bytes.len() as u32);
    for chunk in bytes.chunks(4) {
        let mut word = 0u32;
        for (i, &b) in chunk.iter().enumerate() {
            word |= u32::from(b) << (8 * i);
        }
        w.push(word);
    }
}

fn read_str(r: &mut Reader<'_>) -> Result<String, FabricError> {
    let len = r.next()? as usize;
    if len > 4096 {
        return Err(FabricError::MalformedBitstream { detail: "implausible string length".to_string() });
    }
    let mut bytes = Vec::with_capacity(len);
    for i in 0..len.div_ceil(4) {
        let word = r.next()?;
        for j in 0..4 {
            if i * 4 + j < len {
                bytes.push((word >> (8 * j) & 0xFF) as u8);
            }
        }
    }
    String::from_utf8(bytes)
        .map_err(|_| FabricError::MalformedBitstream { detail: "non-UTF-8 port name".to_string() })
}

/// Encode a placed netlist into a [`Bitstream`].
///
/// # Errors
///
/// Propagates placement inconsistencies as [`FabricError`] variants.
pub fn encode(
    netlist: &Netlist,
    placement: &Placement,
    dims: FabricDims,
) -> Result<Bitstream, FabricError> {
    let mut clbs = vec![ClbStatic::default(); dims.clbs()];
    let mut state_bits = vec![false; dims.clbs()];
    for (i, node) in netlist.nodes().iter().enumerate() {
        let id = NodeId(i as u32);
        match node {
            Node::Lut { inputs, truth } => {
                let clb = placement.lut_site[&id] as usize;
                let cfg = &mut clbs[clb];
                cfg.lut_used = true;
                cfg.truth = *truth;
                for (pin, &src) in inputs.iter().enumerate() {
                    cfg.pin_src[pin] = encode_source(placement.source_of(netlist, src));
                }
            }
            Node::Dff { d, init } => {
                let clb = placement.dff_site[&id] as usize;
                clbs[clb].dff_used = true;
                clbs[clb].dff_src = encode_source(placement.source_of(netlist, *d));
                state_bits[clb] = *init;
            }
            Node::Const(_) | Node::Input { .. } => {}
        }
    }
    let outputs = netlist
        .outputs()
        .iter()
        .map(|(name, bits)| {
            let sels = bits
                .iter()
                .map(|&b| encode_source(placement.source_of(netlist, b)))
                .collect();
            (name.clone(), sels)
        })
        .collect();
    Ok(Bitstream {
        dims,
        clbs,
        inputs: netlist.inputs().to_vec(),
        outputs,
        initial_state: StateFrames { bits: state_bits },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::place;

    fn sample_bitstream() -> Bitstream {
        let mut b = NetlistBuilder::new();
        let a = b.input_bus("op_a", 8);
        let c = b.input_bus("op_b", 8);
        let s = b.add(&a, &c);
        let r = b.register_bus(&s, 0x5A);
        b.output_bus("result", &r);
        let done = b.const_bit(true);
        b.output_bit("done", done);
        let n = b.finish().expect("netlist");
        let p = place::place(&n, FabricDims::PFU).expect("place");
        encode(&n, &p, FabricDims::PFU).expect("encode")
    }

    #[test]
    fn pfu_static_section_is_54_kbytes() {
        let bs = sample_bitstream();
        assert_eq!(bs.static_bytes(), 54_000);
    }

    #[test]
    fn state_section_is_tiny_compared_to_static() {
        let bs = sample_bitstream();
        assert!(bs.state_bytes() < 100, "state is {} bytes", bs.state_bytes());
        assert!(bs.static_bytes() / bs.state_bytes() > 500);
    }

    #[test]
    fn words_roundtrip() {
        let bs = sample_bitstream();
        let words = bs.to_words();
        let back = Bitstream::from_words(&words).expect("decode");
        assert_eq!(bs, back);
    }

    #[test]
    fn bad_magic_rejected() {
        let bs = sample_bitstream();
        let mut words = bs.to_words();
        words[0] = 0xDEAD_BEEF;
        assert!(matches!(
            Bitstream::from_words(&words),
            Err(FabricError::MalformedBitstream { .. })
        ));
    }

    #[test]
    fn truncation_rejected() {
        let bs = sample_bitstream();
        let words = bs.to_words();
        assert!(Bitstream::from_words(&words[..words.len() - 1]).is_err());
    }

    #[test]
    fn selector_roundtrip() {
        use crate::place::SourceRef;
        for src in [
            SourceRef::Const(false),
            SourceRef::Const(true),
            SourceRef::Port(2, 31),
            SourceRef::ClbLut(499),
            SourceRef::ClbDff(0),
        ] {
            assert_eq!(decode_source(encode_source(src)).expect("decode"), src);
        }
    }

    #[test]
    fn initial_state_carries_register_init() {
        let bs = sample_bitstream();
        let ones: usize = bs.initial_state().bits.iter().filter(|&&b| b).count();
        // 0x5A has four set bits.
        assert_eq!(ones, 4);
    }
}
