//! Per-PFU usage statistics (paper §4.5).
//!
//! Each PFU has "a register containing a count of the times that
//! instruction has completed", incremented at *completion* (so
//! interrupted-and-reissued instructions count once), readable and
//! clearable by the OS. The kernel's LRU / Second Chance policies are
//! built on these.

/// The bank of per-PFU completion counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageCounters {
    counts: Vec<u64>,
}

impl UsageCounters {
    /// Counters for `pfus` units, all zero.
    pub fn new(pfus: usize) -> Self {
        Self { counts: vec![0; pfus] }
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True if there are no counters.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Hardware increment on instruction completion.
    pub fn record_completion(&mut self, pfu: usize) {
        self.counts[pfu] = self.counts[pfu].saturating_add(1);
    }

    /// OS read.
    pub fn read(&self, pfu: usize) -> u64 {
        self.counts[pfu]
    }

    /// OS read-and-clear (the typical scan in a replacement policy).
    pub fn read_and_clear(&mut self, pfu: usize) -> u64 {
        std::mem::take(&mut self.counts[pfu])
    }

    /// Clear every counter.
    pub fn clear_all(&mut self) {
        self.counts.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_completions() {
        let mut c = UsageCounters::new(4);
        c.record_completion(2);
        c.record_completion(2);
        c.record_completion(0);
        assert_eq!(c.read(2), 2);
        assert_eq!(c.read_and_clear(2), 2);
        assert_eq!(c.read(2), 0);
        assert_eq!(c.read(0), 1);
    }
}
