//! The Twofish key schedule (128-bit keys).

use super::mds::{mds_column, rs_reduce};
use super::qbox::{q0, q1};

/// The ρ constant used to feed round indices into `h`.
pub const RHO: u32 = 0x0101_0101;

/// The h function for k = 2 (128-bit keys): two rounds of key-byte XOR
/// between q permutations, then the MDS matrix.
pub(crate) fn h(x: u32, l: &[u32; 2]) -> u32 {
    let xb = x.to_le_bytes();
    let l0 = l[0].to_le_bytes();
    let l1 = l[1].to_le_bytes();
    let y = [
        q1(q0(q0(xb[0]) ^ l1[0]) ^ l0[0]),
        q0(q0(q1(xb[1]) ^ l1[1]) ^ l0[1]),
        q1(q1(q0(xb[2]) ^ l1[2]) ^ l0[2]),
        q0(q1(q1(xb[3]) ^ l1[3]) ^ l0[3]),
    ];
    mds_column(y)
}

/// Expanded key material: 40 round subkeys plus the S-box words driving
/// the g function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeySchedule {
    /// Subkeys K0–K39 (whitening: 0–7; rounds: 8–39).
    pub k: [u32; 40],
    /// The key-dependent S words for g (`s[0]` pairs with the inner q
    /// stage).
    pub s: [u32; 2],
}

impl KeySchedule {
    /// Expand a 128-bit key.
    pub fn new(key: &[u8; 16]) -> Self {
        let m: Vec<u32> = key
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let me = [m[0], m[2]];
        let mo = [m[1], m[3]];
        // S words come from the RS code over key byte groups, in
        // *reverse* group order.
        let s = [rs_reduce(&key[8..16]), rs_reduce(&key[0..8])];
        let mut k = [0u32; 40];
        for i in 0..20u32 {
            let a = h(2 * i * RHO, &me);
            let b = h((2 * i + 1) * RHO, &mo).rotate_left(8);
            k[2 * i as usize] = a.wrapping_add(b);
            k[2 * i as usize + 1] = a.wrapping_add(b.wrapping_mul(2)).rotate_left(9);
        }
        Self { k, s }
    }

    /// The key-dependent g function: `h(x, S)`.
    pub fn g(&self, x: u32) -> u32 {
        h(x, &self.s)
    }

    /// "Full keying" lookup tables: `g(x) = T0[x₀] ^ T1[x₁] ^ T2[x₂] ^
    /// T3[x₃]`. This is what fast software implementations precompute,
    /// and what the guest program's registered *software alternative*
    /// embeds in memory.
    pub fn g_tables(&self) -> Box<[[u32; 256]; 4]> {
        let s0 = self.s[0].to_le_bytes();
        let s1 = self.s[1].to_le_bytes();
        let mut t = Box::new([[0u32; 256]; 4]);
        for b in 0..=255u8 {
            let y = [
                q1(q0(q0(b) ^ s1[0]) ^ s0[0]),
                q0(q0(q1(b) ^ s1[1]) ^ s0[1]),
                q1(q1(q0(b) ^ s1[2]) ^ s0[2]),
                q0(q1(q1(b) ^ s1[3]) ^ s0[3]),
            ];
            for lane in 0..4 {
                let mut col = [0u8; 4];
                col[lane] = y[lane];
                t[lane][b as usize] = mds_column(col);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_key_sensitive() {
        let a = KeySchedule::new(&[0u8; 16]);
        let b = KeySchedule::new(&[0u8; 16]);
        assert_eq!(a, b);
        let mut key = [0u8; 16];
        key[5] = 1;
        let c = KeySchedule::new(&key);
        assert_ne!(a.k, c.k);
    }

    #[test]
    fn g_tables_reproduce_g() {
        let ks = KeySchedule::new(b"table check key!");
        let t = ks.g_tables();
        for x in [0u32, 1, 0xDEAD_BEEF, 0x0102_0304, u32::MAX] {
            let b = x.to_le_bytes();
            let via_tables =
                t[0][b[0] as usize] ^ t[1][b[1] as usize] ^ t[2][b[2] as usize] ^ t[3][b[3] as usize];
            assert_eq!(via_tables, ks.g(x), "x={x:#x}");
        }
    }

    #[test]
    fn g_differs_from_identity() {
        let ks = KeySchedule::new(b"0123456789abcdef");
        let outs: std::collections::HashSet<u32> = (0..64u32).map(|x| ks.g(x)).collect();
        assert_eq!(outs.len(), 64, "g should not collide on small inputs");
    }
}
