//! Benchmark harness for the Proteus reproduction.
//!
//! Two entry points:
//!
//! * the `repro` binary (`cargo run -p proteus-bench --bin repro
//!   --release`) regenerates every figure of the paper's evaluation and
//!   every DESIGN.md ablation as tables + CSVs under `results/`
//!   (override with `--out`). Experiments run as declarative
//!   [`proteus::runner::ExperimentPlan`]s on a `--jobs N` worker pool
//!   (default: host parallelism); assembly is deterministic, so output
//!   is byte-identical at any job count. Each figure also gets a
//!   `breakdown_<figure>.csv` attributing every simulated cycle to a
//!   [`proteus::CycleLedger`] category, `results/summary.json` records
//!   per-figure and total wall time, simulated-cycles-per-host-second
//!   throughput and a `cycle_breakdown` section, and `--trace
//!   alpha|echo|twofish` dumps a JSON-lines event timeline
//!   (`trace_<scenario>.jsonl`);
//! * Criterion benches (`cargo bench`) time the figure plans at several
//!   worker counts plus the substrate microbenchmarks.
