#!/usr/bin/env bash
# Tracked perf benchmark: build the release binary and run the pinned
# benchmark subset (`repro --bench`), appending results/BENCH_<n>.json
# with throughput + host metadata and a comparison against the latest
# comparable record. Pass --quick for the CI-scale variant; any extra
# arguments are forwarded to repro.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p proteus-bench --bin repro
./target/release/repro --bench "$@"
