//! Offline stand-in for the subset of the [`proptest`] crate this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small property-testing engine with the same API surface:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`,
//! ranges and tuples as strategies, [`prop_oneof!`], [`strategy::Just`],
//! `any::<T>()`, `proptest::collection::vec`, `proptest::option::of`,
//! the `prop_assert*` / `prop_assume!` macros and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the sampled input verbatim.
//! * **Deterministic seeding.** Each test derives its RNG seed from the
//!   test's module path and name, so runs are reproducible; set
//!   `PROPTEST_RNG_SEED` to explore a different deterministic stream and
//!   `PROPTEST_CASES` to override the case count.
//! * **`*.proptest-regressions` files are not replayed** (their `cc`
//!   entries are hashes of upstream's RNG state, which this engine
//!   cannot interpret). Regressions fixed in this repository are pinned
//!   as plain `#[test]` cases instead — see
//!   `crates/isa/tests/regressions.rs`.
//!
//! To compensate for the lack of shrinking, range and integer strategies
//! are *edge-biased*: they sample range endpoints and zero with elevated
//! probability, which is how the canonical-form corner cases upstream
//! proptest found (zero offsets, zero shift amounts, zero immediates)
//! keep being exercised here.
//!
//! [`proptest`]: https://crates.io/crates/proptest

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// Everything the `proptest!` macro and typical property tests need.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declare property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __strategy = ($($strat,)+);
            let mut __runner = $crate::test_runner::TestRunner::new(
                __config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            __runner.run(&__strategy, |($($pat,)+)| {
                $body;
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items!{ @cfg($cfg) $($rest)* }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::union_arm($strat)),+
        ])
    };
}

/// Fail the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current test case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                    __l,
                    __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
                    __l,
                    __r,
                    format!($($fmt)+)
                );
            }
        }
    };
}

/// Fail the current test case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `left != right`\n  both: `{:?}`",
                    __l
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `left != right`\n  both: `{:?}`: {}",
                    __l,
                    format!($($fmt)+)
                );
            }
        }
    };
}

/// Discard the current case (does not count towards the case total)
/// unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
