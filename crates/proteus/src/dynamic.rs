//! Dynamic scheduling loads — the paper's stated next step ("we are now
//! going on … to test the performance of the system with more dynamic
//! scheduling loads", §6).
//!
//! Jobs arrive over time with exponential inter-arrival gaps, cycling
//! through the three applications. The harness advances the machine to
//! each arrival, spawns the job, and reports per-job *turnaround*
//! (finish − arrival) — the metric that exposes how management policy
//! behaves when the PFU population fluctuates instead of being fixed at
//! the start.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use porsche::cis::DispatchMode;
use porsche::kernel::{KernelConfig, KernelError};
use porsche::policy::PolicyKind;
use porsche::probe::{AttributedLedger, CycleLedger, Event, Tag};
use porsche::process::Pid;
use porsche::stats::KernelStats;
use proteus_apps::workload::{WorkloadConfig, WorkloadSpec};
use proteus_apps::AppKind;
use proteus_rfu::RfuConfig;

use crate::machine::{Machine, MachineConfig};

/// Configuration of a dynamic-arrival run.
///
/// # Example
///
/// ```
/// use proteus::dynamic::DynamicLoad;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let result = DynamicLoad {
///     jobs: 4,
///     mean_interarrival: 200_000,
///     job_size: (32, 2),
///     ..DynamicLoad::default()
/// }
/// .run()?;
/// assert!(result.valid);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DynamicLoad {
    /// Number of jobs to inject.
    pub jobs: usize,
    /// Mean inter-arrival gap in cycles (exponentially distributed).
    pub mean_interarrival: u64,
    /// Per-job work: `(size, passes)` applied to every application kind.
    pub job_size: (usize, u32),
    /// Scheduling quantum.
    pub quantum: u64,
    /// Replacement policy.
    pub policy: PolicyKind,
    /// Contention resolution.
    pub mode: DispatchMode,
    /// §4.2 circuit sharing.
    pub sharing: bool,
    /// RNG seed for arrivals.
    pub seed: u64,
    /// Timeline-event capacity (0 disables tracing).
    pub trace_capacity: usize,
}

impl Default for DynamicLoad {
    fn default() -> Self {
        Self {
            jobs: 12,
            mean_interarrival: 2_000_000,
            job_size: (256, 8),
            quantum: 100_000,
            policy: PolicyKind::RoundRobin,
            mode: DispatchMode::HardwareOnly,
            sharing: false,
            seed: 2003,
            trace_capacity: 0,
        }
    }
}

/// Outcome of a dynamic-arrival run.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicResult {
    /// Mean turnaround (finish − arrival) over all jobs, in cycles.
    pub mean_turnaround: f64,
    /// Worst-case turnaround.
    pub max_turnaround: u64,
    /// Completion cycle of the last job.
    pub makespan: u64,
    /// Kernel statistics.
    pub stats: KernelStats,
    /// Per-job `(pid, turnaround)` in arrival order.
    pub turnarounds: Vec<(Pid, u64)>,
    /// Where every simulated cycle (including inter-arrival idle time)
    /// went.
    pub ledger: CycleLedger,
    /// The same cycles attributed per process × emit site.
    pub attributed: AttributedLedger,
    /// Timeline events, oldest first (empty unless
    /// [`DynamicLoad::trace_capacity`] was set).
    pub trace: Vec<(u64, Tag, Event)>,
    /// Events the trace ring discarded once full.
    pub trace_dropped: u64,
    /// Total simulated cycles (== `ledger.total()`).
    pub total_cycles: u64,
    /// Every job exited with its reference checksum.
    pub valid: bool,
}

impl DynamicLoad {
    /// Run the arrival process to completion.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (the hard cycle limit is generous).
    pub fn run(&self) -> Result<DynamicResult, KernelError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Pre-build one spec per application kind.
        let kinds = [AppKind::Alpha, AppKind::Twofish, AppKind::Echo];
        let specs: Vec<WorkloadSpec> = kinds
            .iter()
            .map(|&k| WorkloadSpec::build(WorkloadConfig::new(k, self.job_size.0, self.job_size.1)))
            .collect();
        let with_sw = self.mode == DispatchMode::SoftwareFallback;

        let mut machine = Machine::new(MachineConfig {
            kernel: KernelConfig {
                quantum: self.quantum,
                policy: self.policy,
                mode: self.mode,
                share_circuits: self.sharing,
                trace_capacity: self.trace_capacity,
                ..KernelConfig::default()
            },
            rfu: RfuConfig::default(),
        });

        let cycle_limit = 2_000_000_000_000;
        let mut arrivals: Vec<(Pid, u64, u32)> = Vec::with_capacity(self.jobs);
        let mut clock = 0u64;
        for j in 0..self.jobs {
            // Exponential gap via inverse transform.
            let u: f64 = rng.gen_range(1e-9..1.0);
            let gap = (-u.ln() * self.mean_interarrival as f64) as u64;
            clock += gap;
            let idle = machine.advance_until(clock, cycle_limit)?;
            if idle {
                // Nothing runnable: the workstation sits idle until the
                // job arrives.
                machine.idle_until(clock);
            }
            let arrival = machine.cycles().max(clock);
            let spec = &specs[j % specs.len()];
            let pid = machine.spawn(spec.spawn_spec(with_sw))?;
            arrivals.push((pid, arrival, spec.expected_checksum()));
        }
        machine.run(cycle_limit)?;
        let report = machine.report();

        let mut turnarounds: Vec<(Pid, u64)> = Vec::with_capacity(self.jobs);
        let mut valid = report.killed.is_empty();
        for (pid, arrival, checksum) in &arrivals {
            match report.exited.iter().find(|(p, _, _)| p == pid) {
                Some((_, finish, code)) => {
                    valid &= code == checksum;
                    turnarounds.push((*pid, finish.saturating_sub(*arrival)));
                }
                None => valid = false,
            }
        }
        let mean_turnaround = turnarounds.iter().map(|(_, t)| t).sum::<u64>() as f64
            / turnarounds.len().max(1) as f64;
        Ok(DynamicResult {
            mean_turnaround,
            max_turnaround: turnarounds.iter().map(|(_, t)| *t).max().unwrap_or(0),
            makespan: report.makespan,
            stats: report.stats,
            ledger: report.ledger,
            attributed: report.attributed,
            trace: machine.kernel().trace().snapshot(),
            trace_dropped: machine.kernel().trace().dropped(),
            total_cycles: machine.cycles(),
            turnarounds,
            valid,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_arrivals_complete_and_validate() {
        let result = DynamicLoad {
            jobs: 6,
            mean_interarrival: 100_000,
            job_size: (32, 4),
            ..DynamicLoad::default()
        }
        .run()
        .expect("run");
        assert!(result.valid, "{result:?}");
        assert!(result.mean_turnaround > 0.0);
        assert!(result.max_turnaround as f64 >= result.mean_turnaround);
    }

    #[test]
    fn heavier_offered_load_increases_turnaround() {
        let run = |gap: u64| {
            DynamicLoad {
                jobs: 10,
                mean_interarrival: gap,
                job_size: (64, 8),
                ..DynamicLoad::default()
            }
            .run()
            .expect("run")
        };
        let sparse = run(50_000_000);
        let dense = run(10_000);
        assert!(sparse.valid && dense.valid);
        assert!(
            dense.mean_turnaround > sparse.mean_turnaround,
            "dense {} <= sparse {}",
            dense.mean_turnaround,
            sparse.mean_turnaround
        );
    }

    #[test]
    fn turnaround_matches_event_stream_span() {
        // Per-job turnaround must equal the spawn→exit span visible in
        // the event timeline — the two are produced by independent code
        // paths (arrival bookkeeping vs. probe emission).
        let result = DynamicLoad {
            jobs: 3,
            mean_interarrival: 150_000,
            job_size: (32, 2),
            trace_capacity: 1 << 16,
            ..DynamicLoad::default()
        }
        .run()
        .expect("run");
        assert!(result.valid, "{result:?}");
        assert_eq!(result.turnarounds.len(), 3);
        for &(pid, turnaround) in &result.turnarounds {
            let spawn = result
                .trace
                .iter()
                .find_map(|&(at, _, e)| match e {
                    Event::Spawn { pid: p } if p == pid => Some(at),
                    _ => None,
                })
                .expect("spawn event");
            let exit = result
                .trace
                .iter()
                .find_map(|&(at, _, e)| match e {
                    Event::Exit { pid: p, .. } if p == pid => Some(at),
                    _ => None,
                })
                .expect("exit event");
            assert_eq!(turnaround, exit - spawn, "pid {pid:?}");
        }
        assert_eq!(result.ledger.total(), result.total_cycles);
    }

    #[test]
    fn arrivals_are_deterministic_per_seed() {
        let run = || {
            DynamicLoad { jobs: 5, job_size: (32, 2), ..DynamicLoad::default() }
                .run()
                .expect("run")
        };
        assert_eq!(run(), run());
    }
}
