//! Binary encoding.
//!
//! Every instruction is one 32-bit word:
//!
//! ```text
//! [31:28] condition      [27:24] class
//!
//! class 0x0/0x1  data-processing, register operand (class bit 0 = S flag)
//!                [23:20] op  [19:16] rd  [15:12] rn
//!                [11:8] rm  [7:6] shift kind  [5:1] shift amount
//! class 0x2/0x3  data-processing, immediate operand (class bit 0 = S)
//!                [23:20] op  [19:16] rd  [15:12] rn  [11:8] rot  [7:0] imm8
//! class 0x4      multiply: [23] accumulate  [22] S
//!                [19:16] rd  [15:12] rm  [11:8] rs  [7:4] rn
//! class 0x5      load/store, immediate offset:
//!                [23] load  [22] byte  [21] pre  [20] up
//!                [19:16] rd  [15:12] rn  [11] writeback  [10:0] offset
//! class 0x6      load/store, register offset: as 0x5 but
//!                [10:7] rm  [6:5] shift kind  [4:0] shift amount
//! class 0x7      block transfer: [23] load  [22] up  [21] before
//!                [20] writeback  [19:16] rn  [15:0] register list
//! class 0x8      branch: [23] link  [22:0] signed word offset
//! class 0x9      swi: [23:0] imm24
//! class 0xA      pfu: [23:16] cid  [15:12] rd  [11:8] rn  [7:4] rm
//! class 0xB      RFU system ops, [23:20] selects:
//!                0 mcr   [19:16] rfu reg   [15:12] rs
//!                1 mrc   [19:16] rfu reg   [15:12] rd
//!                2 ldop  [19:16] operand   [15:12] rd
//!                3 stres [15:12] rs
//!                4 retsd
//!                5 mcro  [19:16] field     [15:12] rs
//!                6 mrco  [19:16] field     [15:12] rd
//! classes 0xC–0xF are undefined and fault.
//! ```
//!
//! # Canonical forms
//!
//! Several field combinations are redundant: they denote the same
//! operation as another encoding. The encoder always emits — and
//! [`crate::decode`] always returns — the *canonical* choice, so
//! `encode ∘ decode` is the identity on canonical words and the
//! disassembly of any decoded instruction re-assembles to the same
//! word (DESIGN.md §2, "one text form per operation"):
//!
//! * a **zero-amount shift** passes the value through whatever its
//!   kind; canonical kind is `lsl` (the text form drops it entirely);
//! * an **immediate operand** whose value has several `(imm8, rot)`
//!   representations (e.g. zero) uses the lowest rotation, matching
//!   the assembler's choice;
//! * **test ops** (`tst`/`teq`/`cmp`/`cmn`) ignore `rd` and always set
//!   flags; canonical `rd` is `r0` and `s` is set. **Moves** ignore
//!   `rn`; canonical `rn` is `r0`;
//! * a **zero immediate memory offset** is an addition (`up`): there is
//!   no negative zero;
//! * a **post-indexed access** always writes the address back; the
//!   writeback bit is canonically set when `pre` is clear.

use crate::instr::{BlockOp, Instr, MemOffset, MemOp, Operand2, Shift, ShiftKind};

fn shift_bits(shift: Shift) -> u32 {
    assert!(shift.amount < 32, "shift amount {} out of range", shift.amount);
    // Canonical zero-amount shift is `lsl #0` (pass-through).
    let kind = if shift.amount == 0 { ShiftKind::Lsl } else { shift.kind };
    (kind.bits() << 5) | u32::from(shift.amount)
}

/// Encode an instruction into its 32-bit word.
///
/// # Panics
///
/// Panics if a field is out of its encodable range (shift amount ≥ 32,
/// immediate offset ≥ 2048, branch offset outside ±2²², SWI immediate
/// ≥ 2²⁴, RFU indices ≥ 16). The assembler validates these before
/// constructing an [`Instr`]; direct constructors should too.
pub fn encode(instr: Instr) -> u32 {
    let cond = instr.cond().bits() << 28;
    let body = match instr {
        Instr::DataProc { op, s, rd, rn, op2, .. } => {
            // Canonical ignored fields: tests have no destination, moves
            // have no first operand.
            let s = s || op.is_test();
            let rd_bits = if op.is_test() { 0 } else { rd.bits() };
            let rn_bits = if op.is_move() { 0 } else { rn.bits() };
            match op2 {
                Operand2::Reg { reg, shift } => {
                    let class = if s { 0x1 } else { 0x0 };
                    (class << 24)
                        | (op.bits() << 20)
                        | (rd_bits << 16)
                        | (rn_bits << 12)
                        | (reg.bits() << 8)
                        | (shift_bits(shift) << 1)
                }
                Operand2::Imm { value, rot } => {
                    assert!(rot < 16, "rotation {rot} out of range");
                    // Canonical immediate: lowest rotation denoting the
                    // same constant (zero in particular encodes with
                    // every rotation).
                    let (value, rot) = match Operand2::try_imm(Operand2::imm_value(value, rot)) {
                        Some(Operand2::Imm { value, rot }) => (value, rot),
                        _ => (value, rot),
                    };
                    let class = if s { 0x3 } else { 0x2 };
                    (class << 24)
                        | (op.bits() << 20)
                        | (rd_bits << 16)
                        | (rn_bits << 12)
                        | (u32::from(rot) << 8)
                        | u32::from(value)
                }
            }
        }
        Instr::Mul { s, rd, rm, rs, acc, .. } => {
            (0x4 << 24)
                | (u32::from(acc.is_some()) << 23)
                | (u32::from(s) << 22)
                | (rd.bits() << 16)
                | (rm.bits() << 12)
                | (rs.bits() << 8)
                | (acc.map_or(0, |r| r.bits()) << 4)
        }
        Instr::Mem { op, byte, rd, rn, offset, up, pre, writeback, .. } => {
            let load = matches!(op, MemOp::Ldr);
            // Canonical addressing: a zero immediate offset is an
            // addition (no negative zero) and post-indexed accesses
            // always write back.
            let up = up || matches!(offset, MemOffset::Imm(0));
            let writeback = writeback || !pre;
            let head = (u32::from(load) << 23)
                | (u32::from(byte) << 22)
                | (u32::from(pre) << 21)
                | (u32::from(up) << 20)
                | (rd.bits() << 16)
                | (rn.bits() << 12)
                | (u32::from(writeback) << 11);
            match offset {
                MemOffset::Imm(i) => {
                    assert!(i < 2048, "memory offset {i} out of range");
                    (0x5 << 24) | head | u32::from(i)
                }
                MemOffset::Reg(rm, shift) => {
                    (0x6 << 24) | head | (rm.bits() << 7) | shift_bits(shift)
                }
            }
        }
        Instr::Block { op, rn, regs, before, up, writeback, .. } => {
            let load = matches!(op, BlockOp::Ldm);
            (0x7 << 24)
                | (u32::from(load) << 23)
                | (u32::from(up) << 22)
                | (u32::from(before) << 21)
                | (u32::from(writeback) << 20)
                | (rn.bits() << 16)
                | u32::from(regs)
        }
        Instr::Branch { link, offset, .. } => {
            assert!((-(1 << 22)..(1 << 22)).contains(&offset), "branch offset {offset} out of range");
            (0x8 << 24) | (u32::from(link) << 23) | ((offset as u32) & 0x7F_FFFF)
        }
        Instr::Swi { imm, .. } => {
            assert!(imm < 1 << 24, "swi immediate {imm} out of range");
            (0x9 << 24) | imm
        }
        Instr::Pfu { cid, rd, rn, rm, .. } => {
            (0xA << 24) | (u32::from(cid) << 16) | (rd.bits() << 12) | (rn.bits() << 8) | (rm.bits() << 4)
        }
        Instr::Mcr { rfu, rs, .. } => {
            assert!(rfu < 16, "rfu register {rfu} out of range");
            (0xB << 24) | (u32::from(rfu) << 16) | (rs.bits() << 12)
        }
        Instr::Mrc { rd, rfu, .. } => {
            assert!(rfu < 16, "rfu register {rfu} out of range");
            (0xB << 24) | (0x1 << 20) | (u32::from(rfu) << 16) | (rd.bits() << 12)
        }
        Instr::LdOp { rd, sel, .. } => {
            (0xB << 24) | (0x2 << 20) | (sel.bits() << 16) | (rd.bits() << 12)
        }
        Instr::StRes { rs, .. } => (0xB << 24) | (0x3 << 20) | (rs.bits() << 12),
        Instr::RetSd { .. } => (0xB << 24) | (0x4 << 20),
        Instr::McrO { field, rs, .. } => {
            assert!(field < 16, "operand-block field {field} out of range");
            (0xB << 24) | (0x5 << 20) | (u32::from(field) << 16) | (rs.bits() << 12)
        }
        Instr::MrcO { rd, field, .. } => {
            assert!(field < 16, "operand-block field {field} out of range");
            (0xB << 24) | (0x6 << 20) | (u32::from(field) << 16) | (rd.bits() << 12)
        }
    };
    cond | body
}
