//! Parallel experiment execution.
//!
//! The paper's evaluation is ~150 *independent* scenario simulations
//! (every `(series, instance-count)` point of every figure). The
//! generators in [`crate::experiment`] describe those runs declaratively
//! as an [`ExperimentPlan`] — a list of [`ScenarioJob`]s, each one
//! simulation — and this module executes the plan on a `std::thread`
//! worker pool.
//!
//! # Determinism
//!
//! Result assembly is decoupled from execution order: workers store each
//! job's output in a slot indexed by the job's position in the plan, and
//! the [`SeriesSet`] is assembled by walking the jobs in plan order,
//! appending points to their series in first-mention order. A plan
//! therefore produces a **byte-identical CSV at any worker count** —
//! `--jobs 1` and `--jobs 8` differ only in wall time. Each simulation
//! is itself deterministic (seeded policies, no wall-clock inputs), so
//! this holds for the values too, not just the ordering.
//!
//! # Instrumentation
//!
//! Execution returns [`PlanMetrics`] alongside the results: wall time of
//! the whole plan, summed per-job wall time (their ratio is the achieved
//! parallel efficiency) and total simulated cycles, from which the
//! `repro` binary derives simulated-cycles-per-host-second throughput
//! for `results/summary.json`.

use std::panic;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use porsche::probe::{AttributedLedger, CycleLedger};

use crate::scenario::Scenario;
use crate::series::{BreakdownRow, BreakdownSet, Series, SeriesSet};

/// What one job contributes to the figure.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobOutput {
    /// `(x, y)` points appended to the job's series, in order.
    pub points: Vec<(f64, f64)>,
    /// Simulated cycles this job advanced (for throughput accounting).
    pub sim_cycles: u64,
    /// `(x, total_cycles, ledger)` cycle-attribution rows appended to the
    /// plan's [`BreakdownSet`], in order.
    pub breakdown: Vec<(f64, u64, CycleLedger)>,
    /// Per-process × per-callsite attribution, absorbed into the plan's
    /// merged [`PlanMetrics::attributed`] ledger (cell-wise u64 sums, so
    /// the merge commutes and worker count cannot affect the result).
    pub attributed: AttributedLedger,
    /// `(series, x, y)` points appended to *other* named series — for
    /// jobs whose one simulation yields several metrics (the fault
    /// campaign emits makespan on its own series plus an outcome code
    /// on a sibling). Extra series obey the same first-mention ordering
    /// as job series, so determinism is unaffected.
    pub extra: Vec<(String, f64, f64)>,
}

impl JobOutput {
    /// The common case: one `(x, y)` point, no breakdown.
    pub fn point(x: f64, y: f64, sim_cycles: u64) -> Self {
        Self {
            points: vec![(x, y)],
            sim_cycles,
            breakdown: Vec::new(),
            attributed: AttributedLedger::default(),
            extra: Vec::new(),
        }
    }

    /// Attach a cycle-attribution row for `x`.
    #[must_use]
    pub fn with_breakdown(mut self, x: f64, total: u64, ledger: CycleLedger) -> Self {
        self.breakdown.push((x, total, ledger));
        self
    }

    /// Attach the run's per-process × per-callsite ledger (absorbed into
    /// the plan-wide fold that feeds the flamegraph exporter).
    #[must_use]
    pub fn with_attribution(mut self, attributed: AttributedLedger) -> Self {
        self.attributed.absorb(&attributed);
        self
    }

    /// Attach a point on a different series than the job's own.
    #[must_use]
    pub fn with_extra(mut self, series: impl Into<String>, x: f64, y: f64) -> Self {
        self.extra.push((series.into(), x, y));
        self
    }
}

/// One schedulable unit of work: a single simulation producing points
/// for one named series.
pub struct ScenarioJob {
    /// The series the points belong to.
    pub series: String,
    /// The simulation itself. Runs on a worker thread; must therefore
    /// capture only owned, [`Send`] data (a [`Scenario`] qualifies — it
    /// is plain data; the [`crate::machine::Machine`] is built *inside*
    /// the closure).
    pub run: Box<dyn FnOnce() -> JobOutput + Send>,
}

impl std::fmt::Debug for ScenarioJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioJob").field("series", &self.series).finish_non_exhaustive()
    }
}

/// Post-execution hook: derived series (e.g. the speedup ratios) that
/// need several jobs' results at once. Runs on the caller's thread after
/// assembly, so it sees the complete, deterministically-ordered set.
type FinishHook = Box<dyn FnOnce(&mut SeriesSet) + Send>;

/// A declarative experiment: an ordered list of independent jobs plus an
/// optional finishing pass.
pub struct ExperimentPlan {
    /// Figure identifier (becomes [`SeriesSet::figure`]).
    pub figure: String,
    jobs: Vec<ScenarioJob>,
    finish: Option<FinishHook>,
}

impl std::fmt::Debug for ExperimentPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentPlan")
            .field("figure", &self.figure)
            .field("jobs", &self.jobs.len())
            .field("finish", &self.finish.is_some())
            .finish()
    }
}

/// Execution metrics for one plan (feeds `results/summary.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanMetrics {
    /// Figure identifier.
    pub figure: String,
    /// Number of jobs executed.
    pub jobs: usize,
    /// Worker threads actually used.
    pub workers: usize,
    /// Wall time of the whole plan.
    pub wall: Duration,
    /// Sum of per-job wall times (≈ `wall × workers` at full efficiency).
    pub job_wall: Duration,
    /// Total simulated cycles across all jobs.
    pub sim_cycles: u64,
    /// Cycle-attribution rows contributed by the jobs, in plan order.
    pub breakdown: BreakdownSet,
    /// All jobs' per-process × per-callsite ledgers merged cell-wise —
    /// the source of `results/flamegraph_<figure>.folded`.
    pub attributed: AttributedLedger,
}

impl PlanMetrics {
    /// Simulated cycles per host second — the headline throughput
    /// number ("as fast as the hardware allows").
    pub fn sim_cycles_per_host_second(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.sim_cycles as f64 / secs
        } else {
            0.0
        }
    }
}

impl ExperimentPlan {
    /// An empty plan for `figure`.
    pub fn new(figure: impl Into<String>) -> Self {
        Self { figure: figure.into(), jobs: Vec::new(), finish: None }
    }

    /// Number of jobs queued so far.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Append a raw job.
    pub fn push_job(
        &mut self,
        series: impl Into<String>,
        run: impl FnOnce() -> JobOutput + Send + 'static,
    ) {
        self.jobs.push(ScenarioJob { series: series.into(), run: Box::new(run) });
    }

    /// Append the common case: run `scenario`, validate its checksums,
    /// contribute the point `(x, makespan)`.
    ///
    /// The scenario is described *now* (it is plain data) but simulated
    /// only when the job runs.
    pub fn scenario_point(&mut self, series: impl Into<String>, x: f64, scenario: Scenario) {
        let series = series.into();
        let label = series.clone();
        self.push_job(series, move || {
            let result = scenario.run().unwrap_or_else(|e| panic!("{label} x={x}: {e}"));
            assert!(result.all_valid(), "{label} x={x}: checksum mismatch");
            JobOutput::point(x, result.makespan as f64, result.makespan)
                .with_breakdown(x, result.total_cycles, result.ledger)
                .with_attribution(result.attributed)
        });
    }

    /// Append one job per instance count `1..=max_instances` — the shape
    /// of every completion-time-vs-instances series in the paper.
    pub fn instance_sweep(
        &mut self,
        series: impl Into<String>,
        max_instances: usize,
        build: impl Fn(usize) -> Scenario,
    ) {
        let series = series.into();
        for n in 1..=max_instances {
            self.scenario_point(series.clone(), n as f64, build(n));
        }
    }

    /// Install a finishing pass that runs after all jobs are assembled
    /// (derived series such as ratios).
    #[must_use]
    pub fn with_finish(mut self, f: impl FnOnce(&mut SeriesSet) + Send + 'static) -> Self {
        self.finish = Some(Box::new(f));
        self
    }

    /// Execute every job on `workers` threads (clamped to `1..=jobs`)
    /// and assemble the results. `workers == 1` runs the jobs in plan
    /// order on a single pool thread — the serial path goes through the
    /// same machinery.
    ///
    /// # Panics
    ///
    /// Re-raises the first job panic (checksum mismatches and simulation
    /// errors are job panics, exactly as in the old eager generators).
    pub fn execute(self, workers: usize) -> (SeriesSet, PlanMetrics) {
        let figure = self.figure;
        let n = self.jobs.len();
        let workers = workers.max(1).min(n.max(1));
        let t0 = Instant::now();

        // Split names (needed for assembly) from the closures (consumed
        // by workers). Slot i of `results` belongs to job i.
        let mut names = Vec::with_capacity(n);
        let mut runs = Vec::with_capacity(n);
        for job in self.jobs {
            names.push(job.series);
            runs.push(Mutex::new(Some(job.run)));
        }
        let results: Vec<Mutex<Option<(JobOutput, Duration)>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);

        if n > 0 {
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        s.spawn(|| loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            // A poisoned slot lock only means another
                            // worker panicked mid-`take`; the closure
                            // itself runs outside the lock, so the data
                            // is still sound to claim.
                            let run = runs[i]
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .take();
                            let Some(run) = run else {
                                // The fetch_add ticket hands out each
                                // index exactly once.
                                debug_assert!(false, "job {i} claimed twice");
                                continue;
                            };
                            let t = Instant::now();
                            let output = run();
                            *results[i].lock().unwrap_or_else(PoisonError::into_inner) =
                                Some((output, t.elapsed()));
                        })
                    })
                    .collect();
                for h in handles {
                    if let Err(payload) = h.join() {
                        panic::resume_unwind(payload);
                    }
                }
            });
        }

        // Deterministic assembly: plan order, first-mention series order.
        // PROTEUS_JOB_TIMES=1 dumps one timing line per job to stderr —
        // the cheap way to see where host time goes without a profiler.
        let job_times = std::env::var_os("PROTEUS_JOB_TIMES").is_some();
        let mut set = SeriesSet::new(figure.clone());
        let mut breakdown = BreakdownSet::new(figure.clone());
        let mut attributed = AttributedLedger::default();
        let mut job_wall = Duration::ZERO;
        let mut sim_cycles = 0u64;
        for (i, name) in names.iter().enumerate() {
            let slot = results[i].lock().unwrap_or_else(PoisonError::into_inner).take();
            let Some((output, dur)) = slot else {
                // Worker panics re-raise before assembly, so a job that
                // ran left a result; an empty slot is unreachable.
                debug_assert!(false, "job {i} produced no result");
                continue;
            };
            if job_times {
                eprintln!(
                    "[job {i:>3}] {:>8.3}s {:>14} cyc {:>9.3e} cyc/s  {name}",
                    dur.as_secs_f64(),
                    output.sim_cycles,
                    output.sim_cycles as f64 / dur.as_secs_f64().max(1e-9),
                );
            }
            job_wall += dur;
            sim_cycles += output.sim_cycles;
            attributed.absorb(&output.attributed);
            for (x, total, ledger) in output.breakdown {
                breakdown.rows.push(BreakdownRow { series: name.clone(), x, total, ledger });
            }
            let idx = series_index(&mut set, name);
            for (x, y) in output.points {
                set.series[idx].push(x, y);
            }
            for (extra_name, x, y) in output.extra {
                let idx = series_index(&mut set, &extra_name);
                set.series[idx].push(x, y);
            }
        }
        if let Some(finish) = self.finish {
            finish(&mut set);
        }

        let metrics = PlanMetrics {
            figure,
            jobs: n,
            workers,
            wall: t0.elapsed(),
            job_wall,
            sim_cycles,
            breakdown,
            attributed,
        };
        (set, metrics)
    }
}

/// Index of `name` in `set`, appending a fresh series on first mention.
fn series_index(set: &mut SeriesSet, name: &str) -> usize {
    match set.series.iter().position(|s| s.name == name) {
        Some(idx) => idx,
        None => {
            set.push(Series::new(name.to_owned()));
            set.series.len() - 1
        }
    }
}

/// The host's available parallelism (the `--jobs` default).
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_plan() -> ExperimentPlan {
        // Interleaved series mentions, out-of-order x production: the
        // assembly must still yield first-mention series order and
        // plan-order points.
        let mut plan = ExperimentPlan::new("toy");
        for n in 1..=3u32 {
            plan.push_job("a", move || {
                JobOutput::point(n as f64, (10 * n) as f64, u64::from(n))
            });
            plan.push_job("b", move || {
                JobOutput::point(n as f64, (20 * n) as f64, 2 * u64::from(n))
            });
        }
        plan
    }

    #[test]
    fn serial_and_parallel_results_are_identical() {
        let (serial, m1) = toy_plan().execute(1);
        let (parallel, m4) = toy_plan().execute(4);
        assert_eq!(serial, parallel);
        assert_eq!(serial.to_csv(), parallel.to_csv());
        assert_eq!(m1.workers, 1);
        assert_eq!(m4.workers, 4, "6 jobs admit 4 workers");
        assert_eq!(m1.sim_cycles, 18);
        assert_eq!(m4.sim_cycles, 18);
    }

    #[test]
    fn series_appear_in_first_mention_order() {
        let (set, metrics) = toy_plan().execute(8);
        assert_eq!(set.series.len(), 2);
        assert_eq!(set.series[0].name, "a");
        assert_eq!(set.series[1].name, "b");
        assert_eq!(set.series[0].points.len(), 3);
        assert_eq!(set.series[0].points[2].y, 30.0);
        assert_eq!(metrics.jobs, 6);
        assert_eq!(metrics.workers, 6, "workers clamp to the job count");
    }

    #[test]
    fn finish_hook_sees_assembled_set() {
        let plan = toy_plan().with_finish(|set| {
            let sum: f64 =
                set.series.iter().flat_map(|s| s.points.iter().map(|p| p.y)).sum();
            let mut derived = Series::new("sum");
            derived.push(0.0, sum);
            set.push(derived);
        });
        let (set, _) = plan.execute(3);
        assert_eq!(set.series.last().expect("derived").points[0].y, 180.0);
        // The derived series lands after all job series, as in the old
        // eager generators.
        assert_eq!(set.series.last().expect("derived").name, "sum");
    }

    #[test]
    fn extra_points_land_on_their_named_series_deterministically() {
        let plan = || {
            let mut plan = ExperimentPlan::new("x");
            for n in 1..=3u32 {
                plan.push_job("main", move || {
                    JobOutput::point(n as f64, n as f64, 1)
                        .with_extra("aux", n as f64, (100 * n) as f64)
                });
            }
            plan
        };
        let (serial, _) = plan().execute(1);
        let (parallel, _) = plan().execute(4);
        assert_eq!(serial, parallel);
        assert_eq!(serial.series.len(), 2);
        assert_eq!(serial.series[0].name, "main");
        assert_eq!(serial.series[1].name, "aux");
        assert_eq!(serial.series[1].points.len(), 3);
        assert_eq!(serial.series[1].points[2].y, 300.0);
    }

    #[test]
    fn empty_plan_executes() {
        let (set, metrics) = ExperimentPlan::new("empty").execute(4);
        assert!(set.series.is_empty());
        assert_eq!(metrics.jobs, 0);
        assert_eq!(metrics.wall.as_secs(), 0);
    }

    #[test]
    fn throughput_is_cycles_over_wall() {
        let m = PlanMetrics {
            figure: "f".into(),
            jobs: 1,
            workers: 1,
            wall: Duration::from_secs(2),
            job_wall: Duration::from_secs(2),
            sim_cycles: 10_000_000,
            breakdown: BreakdownSet::new("f"),
            attributed: AttributedLedger::default(),
        };
        let thr = m.sim_cycles_per_host_second();
        assert!((thr - 5_000_000.0).abs() < 1.0, "{thr}");
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn job_panic_propagates() {
        let mut plan = ExperimentPlan::new("p");
        plan.push_job("s", || panic!("boom"));
        let _ = plan.execute(2);
    }

    #[test]
    fn scenario_point_runs_a_real_simulation() {
        use proteus_apps::AppKind;
        let mut plan = ExperimentPlan::new("real");
        plan.scenario_point(
            "alpha",
            1.0,
            Scenario::new(AppKind::Alpha).size(16).passes(1),
        );
        let (set, metrics) = plan.execute(2);
        assert_eq!(set.series.len(), 1);
        assert!(set.series[0].points[0].y > 0.0);
        assert!(metrics.sim_cycles > 0);
        assert!(metrics.sim_cycles_per_host_second() > 0.0);
        // Every scenario job contributes one attribution row, and the
        // ledger conserves the run's total cycles.
        assert_eq!(metrics.breakdown.rows.len(), 1);
        let row = &metrics.breakdown.rows[0];
        assert_eq!(row.series, "alpha");
        assert_eq!(row.ledger.total(), row.total);
        assert!(row.total > 0);
        // The plan-wide attributed fold refolds to exactly the same
        // ledger (one job here, so plan fold == job fold).
        assert_eq!(metrics.attributed.refold(), row.ledger);
        assert_eq!(metrics.attributed.total(), row.total);
    }
}
