//! The profiling exporters' external contracts: folded-stack output is
//! byte-identical at any `--jobs` worker count (the flamegraph analogue
//! of the runner's CSV determinism guarantee), and the Chrome
//! trace-event JSON is structurally sound and complete enough for
//! `trace_viewer` (metadata tracks, X/i phases, drop accounting).

use porsche::chrome::chrome_trace_json;
use porsche::probe::{Callsite, CycleLedger};
use proteus::experiment::{
    demo_scenario, fig3_plan, plan_for, resolve_target, RunTarget, Scale, EXPERIMENTS,
};
use proteus_apps::AppKind;

fn tiny() -> Scale {
    Scale { target_cycles: 300_000, max_instances: 2, seed: 7 }
}

/// The acceptance criterion: `flamegraph_fig3.folded` is byte-identical
/// at `--jobs 1` and `--jobs 8`, and its per-category sums equal the
/// run's `CycleLedger` values exactly.
#[test]
fn folded_stacks_are_byte_identical_at_any_worker_count() {
    let (_, serial) = fig3_plan(&tiny()).execute(1);
    let (_, parallel) = fig3_plan(&tiny()).execute(8);
    let folded_serial = serial.attributed.to_folded("fig3");
    let folded_parallel = parallel.attributed.to_folded("fig3");
    assert!(!folded_serial.is_empty());
    assert_eq!(folded_serial, folded_parallel, "--jobs must not change the folded output");
    assert_eq!(serial.attributed, parallel.attributed);

    // Per-category folded sums == the plan's aggregate ledger.
    let aggregate = serial.breakdown.aggregate();
    assert_eq!(serial.attributed.refold(), aggregate);
    for (name, value) in CycleLedger::CATEGORIES.iter().zip(aggregate.values()) {
        let suffix = format!(";{name}");
        let sum: u64 = folded_serial
            .lines()
            .filter_map(|l| l.rsplit_once(' '))
            .filter(|(stack, _)| stack.ends_with(&suffix))
            .map(|(_, n)| n.parse::<u64>().expect("numeric count"))
            .sum();
        assert_eq!(sum, value, "category {name}");
    }
}

/// Every folded line follows `scenario;pid<N>;<callsite>;<category> <n>`
/// with frames drawn from the declared vocabularies — what flamegraph.pl
/// and inferno consume without preprocessing.
#[test]
fn folded_lines_use_the_declared_vocabulary() {
    let result = demo_scenario(AppKind::Alpha, true).run().expect("demo runs");
    assert!(result.all_valid());
    let folded = result.attributed.to_folded("alpha");
    assert!(!folded.is_empty());
    for line in folded.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("space-separated count");
        assert!(count.parse::<u64>().expect("numeric count") > 0, "zero cells are skipped");
        let frames: Vec<&str> = stack.split(';').collect();
        assert_eq!(frames.len(), 4, "{line}");
        assert_eq!(frames[0], "alpha");
        assert!(frames[1].strip_prefix("pid").is_some_and(|p| p.parse::<u32>().is_ok()));
        assert!(Callsite::ALL.iter().any(|c| c.name() == frames[2]), "{line}");
        assert!(CycleLedger::CATEGORIES.contains(&frames[3]), "{line}");
    }
}

/// Minimal structural JSON scan (the workspace carries no JSON parser):
/// quote-aware bracket balance plus top-level key presence.
fn assert_balanced_json(doc: &str) {
    let mut depth = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    for c in doc.chars() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '{' | '[' if !in_string => depth += 1,
            '}' | ']' if !in_string => {
                depth -= 1;
                assert!(depth >= 0, "unbalanced close");
            }
            _ => {}
        }
    }
    assert_eq!(depth, 0, "unbalanced braces");
    assert!(!in_string, "unterminated string");
}

#[test]
fn chrome_trace_schema_is_sane() {
    let result = demo_scenario(AppKind::Echo, true).run().expect("demo runs");
    assert!(result.all_valid());
    let json = chrome_trace_json("echo", &result.trace, result.trace_dropped, result.total_cycles);
    assert_balanced_json(&json);
    assert!(json.starts_with("{\"traceEvents\":["));
    // Track metadata for processes and the PFU pseudo-process.
    assert!(json.contains("\"name\":\"process_name\",\"ph\":\"M\""));
    assert!(json.contains("\"PFU 0\""));
    // Work slices and lifecycle instants both present.
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.contains("\"ph\":\"i\""));
    assert!(json.contains("\"name\":\"compute\""));
    assert!(json.contains("\"cat\":\"resident\""), "PFU residency slices reconstructed");
    // Drop accounting is explicit even when zero.
    assert!(json.contains(&format!("\"dropped_events\":{}", result.trace_dropped)));
    assert!(json.contains(&format!("\"total_cycles\":{}", result.total_cycles)));
    // Events carry their attribution callsite.
    assert!(json.contains("\"callsite\":\"reconfig\""));
}

/// The shared resolver accepts every registry experiment and every demo
/// app, and rejects unknown names with the full valid list.
#[test]
fn run_target_resolver_tracks_the_registry() {
    for name in EXPERIMENTS {
        assert_eq!(resolve_target(name), Ok(RunTarget::Experiment(name)));
        assert!(plan_for(name, &tiny()).is_some());
    }
    for app in AppKind::ALL {
        assert_eq!(resolve_target(app.name()), Ok(RunTarget::Demo(app)));
    }
    let err = resolve_target("not-a-scenario").expect_err("unknown name");
    for name in EXPERIMENTS {
        assert!(err.contains(name), "error must list {name}: {err}");
    }
    for app in AppKind::ALL {
        assert!(err.contains(app.name()), "error must list {}: {err}", app.name());
    }
}
