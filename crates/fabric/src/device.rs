//! The configurable device: loads a bitstream and executes it.
//!
//! [`Device`] is the honest half of the fabric model: it executes circuits
//! **from the decoded configuration only** — LUT truth tables and routing
//! selectors — with no access to the original netlist. Together with the
//! encode path this exercises the whole
//! netlist → place → encode → decode → simulate chain, so a bug anywhere in
//! the bitstream format breaks circuit outputs, exactly as on real FPL.
//!
//! State save/restore uses the *state frames only* (the paper's §4.1 split
//! configuration), which is what makes context-switching a resident circuit
//! cheap for the OS.

use crate::bitstream::{decode_source, Bitstream, StateFrames};
use crate::error::FabricError;
use crate::place::{FabricDims, SourceRef};
use crate::validate;

/// Result of clocking a configured device for one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockOutput {
    /// Value on the `result` output bus after combinational settling.
    pub result: u32,
    /// Value of the `done` output.
    pub done: bool,
}

#[derive(Debug, Clone, Copy)]
enum PortKind {
    OpA,
    OpB,
    Init,
    Other,
}

#[derive(Debug, Clone)]
struct LoadedClb {
    lut_used: bool,
    truth: u16,
    pins: [SourceRef; 4],
    dff_used: bool,
    dff_src: SourceRef,
}

#[derive(Debug, Clone)]
struct Loaded {
    clbs: Vec<LoadedClb>,
    /// Evaluation order over LUT-bearing CLB indices.
    order: Vec<u16>,
    port_kinds: Vec<PortKind>,
    result_sels: Vec<SourceRef>,
    done_sel: Option<SourceRef>,
    lut_out: Vec<bool>,
    dff_state: Vec<bool>,
}

/// A PFU-sized region of fabric that can hold one configuration.
#[derive(Debug, Clone)]
pub struct Device {
    dims: FabricDims,
    loaded: Option<Loaded>,
}

impl Device {
    /// An empty (unconfigured) device.
    pub fn new(dims: FabricDims) -> Self {
        Self { dims, loaded: None }
    }

    /// Fabric dimensions.
    pub fn dims(&self) -> FabricDims {
        self.dims
    }

    /// Whether a configuration is currently loaded.
    pub fn is_configured(&self) -> bool {
        self.loaded.is_some()
    }

    /// Load a full configuration (static + initial state frames).
    ///
    /// The bitstream is validated first — see [`validate::validate`] — so a
    /// malformed or hostile configuration is rejected before it can touch
    /// the array.
    ///
    /// # Errors
    ///
    /// [`FabricError::DimensionMismatch`] if the bitstream targets a
    /// different fabric, plus any validation error.
    pub fn load(&mut self, bitstream: &Bitstream) -> Result<(), FabricError> {
        if bitstream.dims() != self.dims {
            return Err(FabricError::DimensionMismatch {
                expected: (bitstream.dims().width, bitstream.dims().height),
                actual: (self.dims.width, self.dims.height),
            });
        }
        validate::validate(bitstream)?;
        let n = self.dims.clbs();
        let mut clbs = Vec::with_capacity(n);
        for raw in bitstream.clbs() {
            clbs.push(LoadedClb {
                lut_used: raw.lut_used,
                truth: raw.truth,
                pins: [
                    decode_source(raw.pin_src[0])?,
                    decode_source(raw.pin_src[1])?,
                    decode_source(raw.pin_src[2])?,
                    decode_source(raw.pin_src[3])?,
                ],
                dff_used: raw.dff_used,
                dff_src: decode_source(raw.dff_src)?,
            });
        }
        let order = topo_order(&clbs)?;
        let port_kinds = bitstream
            .inputs()
            .iter()
            .map(|p| match p.name.as_str() {
                "op_a" => PortKind::OpA,
                "op_b" => PortKind::OpB,
                "init" => PortKind::Init,
                _ => PortKind::Other,
            })
            .collect();
        let find = |name: &str| {
            bitstream
                .outputs()
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, sels)| sels.iter().map(|&s| decode_source(s)).collect::<Result<Vec<_>, _>>())
        };
        let result_sels = find("result").transpose()?.unwrap_or_default();
        let done_sel = find("done").transpose()?.and_then(|v| v.first().copied());
        self.loaded = Some(Loaded {
            clbs,
            order,
            port_kinds,
            result_sels,
            done_sel,
            lut_out: vec![false; n],
            dff_state: bitstream.initial_state().bits.clone(),
        });
        Ok(())
    }

    /// Remove the configuration, leaving the device empty.
    pub fn unload(&mut self) {
        self.loaded = None;
    }

    /// Save the state frames (CLB register values) — the cheap half of a
    /// context switch.
    ///
    /// # Errors
    ///
    /// [`FabricError::NotConfigured`] if nothing is loaded.
    pub fn save_state(&self) -> Result<StateFrames, FabricError> {
        let loaded = self.loaded.as_ref().ok_or(FabricError::NotConfigured)?;
        Ok(StateFrames { bits: loaded.dff_state.clone() })
    }

    /// Restore previously saved state frames into the loaded
    /// configuration.
    ///
    /// # Errors
    ///
    /// [`FabricError::NotConfigured`] if nothing is loaded;
    /// [`FabricError::StateMismatch`] if the frame covers a different
    /// number of CLBs.
    pub fn load_state(&mut self, state: &StateFrames) -> Result<(), FabricError> {
        let loaded = self.loaded.as_mut().ok_or(FabricError::NotConfigured)?;
        if state.bits.len() != loaded.dff_state.len() {
            return Err(FabricError::StateMismatch {
                detail: format!(
                    "state frame covers {} CLBs, device has {}",
                    state.bits.len(),
                    loaded.dff_state.len()
                ),
            });
        }
        loaded.dff_state.copy_from_slice(&state.bits);
        Ok(())
    }

    /// Drive the PFU interface for one clock cycle: present the operands
    /// and `init`, settle combinational logic, read `result`/`done`, latch
    /// registers.
    ///
    /// # Errors
    ///
    /// [`FabricError::NotConfigured`] if nothing is loaded.
    pub fn clock(&mut self, op_a: u32, op_b: u32, init: bool) -> Result<ClockOutput, FabricError> {
        let loaded = self.loaded.as_mut().ok_or(FabricError::NotConfigured)?;
        let read = |loaded: &Loaded, src: SourceRef| -> bool {
            match src {
                SourceRef::Const(v) => v,
                SourceRef::Port(port, bit) => match loaded.port_kinds.get(port as usize) {
                    Some(PortKind::OpA) => (op_a >> bit) & 1 == 1,
                    Some(PortKind::OpB) => (op_b >> bit) & 1 == 1,
                    Some(PortKind::Init) => init,
                    _ => false,
                },
                SourceRef::ClbLut(clb) => loaded.lut_out[clb as usize],
                SourceRef::ClbDff(clb) => loaded.dff_state[clb as usize],
            }
        };
        // Combinational settle in topological order.
        for i in 0..loaded.order.len() {
            let clb = loaded.order[i] as usize;
            let cfg = &loaded.clbs[clb];
            let mut addr = 0usize;
            for (pin, &src) in cfg.pins.iter().enumerate() {
                if read(loaded, src) {
                    addr |= 1 << pin;
                }
            }
            loaded.lut_out[clb] = (loaded.clbs[clb].truth >> addr) & 1 == 1;
        }
        // Sample outputs before the clock edge.
        let mut result = 0u32;
        for (i, &sel) in loaded.result_sels.iter().enumerate().take(32) {
            if read(loaded, sel) {
                result |= 1 << i;
            }
        }
        let done = loaded.done_sel.map(|s| read(loaded, s)).unwrap_or(false);
        // Clock edge: latch every used register.
        let next: Vec<(usize, bool)> = loaded
            .clbs
            .iter()
            .enumerate()
            .filter(|(_, c)| c.dff_used)
            .map(|(i, c)| (i, read(loaded, c.dff_src)))
            .collect();
        for (i, v) in next {
            loaded.dff_state[i] = v;
        }
        Ok(ClockOutput { result, done })
    }

    /// Run a complete custom-instruction invocation: assert `init` on the
    /// first cycle, then clock until `done`, returning the result and the
    /// number of cycles taken.
    ///
    /// # Errors
    ///
    /// [`FabricError::NotConfigured`] if nothing is loaded; a
    /// [`FabricError::MalformedBitstream`] variant if the circuit fails to
    /// assert `done` within `max_cycles` (a runaway instruction — the OS
    /// would kill the process).
    pub fn run_instruction(
        &mut self,
        op_a: u32,
        op_b: u32,
        max_cycles: u32,
    ) -> Result<(u32, u32), FabricError> {
        let mut init = true;
        for cycle in 1..=max_cycles {
            let out = self.clock(op_a, op_b, init)?;
            init = false;
            if out.done {
                return Ok((out.result, cycle));
            }
        }
        Err(FabricError::MalformedBitstream {
            detail: format!("instruction did not complete within {max_cycles} cycles"),
        })
    }
}

/// Topological order of LUT-bearing CLBs following LUT→LUT routing edges.
fn topo_order(clbs: &[LoadedClb]) -> Result<Vec<u16>, FabricError> {
    let n = clbs.len();
    let mut indegree = vec![0u32; n];
    let mut fanout: Vec<Vec<u16>> = vec![Vec::new(); n];
    for (i, c) in clbs.iter().enumerate() {
        if !c.lut_used {
            continue;
        }
        for &pin in &c.pins {
            if let SourceRef::ClbLut(src) = pin {
                if clbs[src as usize].lut_used {
                    indegree[i] += 1;
                    fanout[src as usize].push(i as u16);
                }
            }
        }
    }
    let mut queue: Vec<u16> =
        (0..n as u16).filter(|&i| clbs[i as usize].lut_used && indegree[i as usize] == 0).collect();
    let total = clbs.iter().filter(|c| c.lut_used).count();
    let mut order = Vec::with_capacity(total);
    while let Some(i) = queue.pop() {
        order.push(i);
        for &next in &fanout[i as usize] {
            indegree[next as usize] -= 1;
            if indegree[next as usize] == 0 {
                queue.push(next);
            }
        }
    }
    if order.len() != total {
        return Err(FabricError::MalformedBitstream {
            detail: "configuration contains a combinational routing loop".to_string(),
        });
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::compile;
    use crate::sim::NetlistSim;

    fn adder_bitstream() -> Bitstream {
        let mut b = NetlistBuilder::new();
        let a = b.input_bus("op_a", 32);
        let c = b.input_bus("op_b", 32);
        let s = b.add(&a, &c);
        b.output_bus("result", &s);
        let done = b.const_bit(true);
        b.output_bit("done", done);
        let n = b.finish().expect("netlist");
        compile(&n, FabricDims::PFU).expect("compile").into_bitstream()
    }

    #[test]
    fn device_runs_decoded_adder() {
        let mut dev = Device::new(FabricDims::PFU);
        dev.load(&adder_bitstream()).expect("load");
        let out = dev.clock(1234, 8766, true).expect("clock");
        assert_eq!(out.result, 10_000);
        assert!(out.done);
    }

    #[test]
    fn device_agrees_with_reference_sim() {
        // The decoded-bitstream execution must match NetlistSim on the
        // same circuit for a spread of operand values.
        let mut b = NetlistBuilder::new();
        let a = b.input_bus("op_a", 16);
        let c = b.input_bus("op_b", 16);
        let m = b.mul(&a, &c);
        let m32 = b.resize(&m, 32);
        b.output_bus("result", &m32);
        let done = b.const_bit(true);
        b.output_bit("done", done);
        let n = b.finish().expect("netlist");

        let mut sim = NetlistSim::new(&n).expect("sim");
        let compiled = compile(&n, FabricDims::new(40, 40)).expect("compile");
        let mut dev = Device::new(FabricDims::new(40, 40));
        dev.load(compiled.bitstream()).expect("load");

        for (a, b2) in [(3u32, 5u32), (65535, 65535), (1000, 999), (0, 77)] {
            sim.set_input("op_a", u64::from(a));
            sim.set_input("op_b", u64::from(b2));
            sim.settle();
            let want = sim.output("result") as u32;
            let got = dev.clock(a, b2, true).expect("clock").result;
            assert_eq!(got, want, "a={a} b={b2}");
        }
    }

    #[test]
    fn unconfigured_device_errors() {
        let mut dev = Device::new(FabricDims::PFU);
        assert!(matches!(dev.clock(0, 0, true), Err(FabricError::NotConfigured)));
        assert!(matches!(dev.save_state(), Err(FabricError::NotConfigured)));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut dev = Device::new(FabricDims::new(4, 4));
        assert!(matches!(
            dev.load(&adder_bitstream()),
            Err(FabricError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn state_save_restore_preserves_counter() {
        // A circuit that counts invocations: result = number of clocks seen.
        let mut b = NetlistBuilder::new();
        let _a = b.input_bus("op_a", 32);
        let _c = b.input_bus("op_b", 32);
        let one = b.const_bit(true);
        let cnt = b.counter(8, one);
        let cnt32 = b.resize(&cnt, 32);
        b.output_bus("result", &cnt32);
        b.output_bit("done", one);
        let n = b.finish().expect("netlist");
        let compiled = compile(&n, FabricDims::PFU).expect("compile");

        let mut dev = Device::new(FabricDims::PFU);
        dev.load(compiled.bitstream()).expect("load");
        for _ in 0..5 {
            dev.clock(0, 0, false).expect("clock");
        }
        let saved = dev.save_state().expect("save");
        assert_eq!(dev.clock(0, 0, false).expect("clock").result, 5);
        // Trash the state by reloading the full config (counter resets)...
        dev.load(compiled.bitstream()).expect("reload");
        assert_eq!(dev.clock(0, 0, false).expect("clock").result, 0);
        // ...then restore just the state frames.
        dev.load_state(&saved).expect("restore");
        assert_eq!(dev.clock(0, 0, false).expect("clock").result, 5);
    }

    #[test]
    fn run_instruction_times_out_on_runaway_circuit() {
        // done is stuck low.
        let mut b = NetlistBuilder::new();
        let a = b.input_bus("op_a", 32);
        b.output_bus("result", &a);
        let zero = b.const_bit(false);
        b.output_bit("done", zero);
        let n = b.finish().expect("netlist");
        let compiled = compile(&n, FabricDims::PFU).expect("compile");
        let mut dev = Device::new(FabricDims::PFU);
        dev.load(compiled.bitstream()).expect("load");
        assert!(dev.run_instruction(1, 2, 16).is_err());
    }
}
