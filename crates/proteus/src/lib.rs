//! Proteus — a full-system reproduction of *"Managing a Reconfigurable
//! Processor in a General Purpose Workstation Environment"*
//! (Michael Dales, DATE 2003).
//!
//! This facade crate wires the substrates together and exposes the
//! experiment harness:
//!
//! * [`machine::Machine`] — a complete ProteanARM workstation:
//!   [`proteus_cpu::Cpu`] core + [`proteus_rfu::Rfu`] reconfigurable
//!   function unit + [`porsche::Kernel`];
//! * [`scenario::Scenario`] — one experimental run: an application,
//!   an instance count, a quantum, a replacement policy and a dispatch
//!   mode, with end-to-end checksum validation;
//! * [`experiment`] — generators for every figure of the paper's
//!   evaluation (Figure 2, Figure 3, the speedup claim) plus the
//!   ablations listed in DESIGN.md;
//! * [`runner`] — declarative [`runner::ExperimentPlan`]s executed on a
//!   worker pool, with deterministic assembly (byte-identical CSVs at
//!   any `--jobs` count) and throughput metrics;
//! * [`series`] — simple long-format CSV output for the results.
//!
//! # Quickstart
//!
//! ```
//! use proteus::scenario::Scenario;
//! use proteus_apps::AppKind;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two concurrent alpha-blending processes on a 4-PFU ProteanARM.
//! let result = Scenario::new(AppKind::Alpha)
//!     .instances(2)
//!     .size(64)
//!     .passes(2)
//!     .run()?;
//! assert!(result.all_valid());
//! assert!(result.makespan > 0);
//! # Ok(())
//! # }
//! ```

pub mod dynamic;
pub mod experiment;
pub mod machine;
pub mod runner;
pub mod scenario;
pub mod series;

pub use dynamic::{DynamicLoad, DynamicResult};
pub use machine::{Machine, MachineConfig};
pub use porsche::{AttributedLedger, Callsite, CycleLedger, Event, EventSink, Probe, Tag};
pub use runner::{ExperimentPlan, JobOutput, PlanMetrics, ScenarioJob};
pub use scenario::{Scenario, ScenarioResult};
pub use series::{BreakdownRow, BreakdownSet, Point, Series, SeriesSet};
