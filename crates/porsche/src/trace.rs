//! Kernel event tracing.
//!
//! When enabled ([`crate::kernel::KernelConfig::trace_capacity`] > 0),
//! the kernel records a timeline of scheduling and CIS events — the raw
//! material behind every aggregate in [`crate::stats::KernelStats`].
//! Useful for debugging policies and for asserting ordering invariants
//! in tests.

use std::fmt;

use proteus_rfu::TupleKey;

use crate::process::Pid;

/// One timeline entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A process was created.
    Spawn {
        /// New process.
        pid: Pid,
    },
    /// The CPU switched from one process to another.
    ContextSwitch {
        /// Previously running process (`None` right after a terminate).
        from: Option<Pid>,
        /// Now-running process.
        to: Pid,
    },
    /// The quantum expired with no other runnable process.
    TimerTick {
        /// The process that keeps running.
        pid: Pid,
    },
    /// A custom-instruction fault was taken.
    Fault {
        /// The faulting tuple.
        key: TupleKey,
    },
    /// The fault was a mapping fault: TLB re-programmed, no load.
    MappingRepair {
        /// The repaired tuple.
        key: TupleKey,
    },
    /// A full configuration was loaded.
    ConfigLoad {
        /// The tuple now resident.
        key: TupleKey,
    },
    /// A resident circuit was evicted to make room.
    Eviction,
    /// A shared configuration changed hands via a state-frame swap.
    StateSwap {
        /// The tuple now owning the shared PFU.
        key: TupleKey,
    },
    /// The fault was resolved by mapping the software alternative.
    SoftwareInstall {
        /// The tuple now dispatching to software.
        key: TupleKey,
    },
    /// A system call was serviced.
    Syscall {
        /// Calling process.
        pid: Pid,
        /// SWI number.
        number: u32,
    },
    /// A process exited.
    Exit {
        /// The process.
        pid: Pid,
        /// Exit code.
        code: u32,
    },
    /// A process was killed by the kernel.
    Kill {
        /// The process.
        pid: Pid,
    },
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Spawn { pid } => write!(f, "spawn pid={pid}"),
            Event::ContextSwitch { from: Some(p), to } => write!(f, "switch {p} -> {to}"),
            Event::ContextSwitch { from: None, to } => write!(f, "dispatch -> {to}"),
            Event::TimerTick { pid } => write!(f, "tick pid={pid}"),
            Event::Fault { key } => write!(f, "fault ({}, {})", key.pid, key.cid),
            Event::MappingRepair { key } => write!(f, "tlb-repair ({}, {})", key.pid, key.cid),
            Event::ConfigLoad { key } => write!(f, "load ({}, {})", key.pid, key.cid),
            Event::Eviction => write!(f, "evict"),
            Event::StateSwap { key } => write!(f, "state-swap ({}, {})", key.pid, key.cid),
            Event::SoftwareInstall { key } => write!(f, "soft-map ({}, {})", key.pid, key.cid),
            Event::Syscall { pid, number } => write!(f, "swi pid={pid} #{number}"),
            Event::Exit { pid, code } => write!(f, "exit pid={pid} code={code}"),
            Event::Kill { pid } => write!(f, "kill pid={pid}"),
        }
    }
}

/// A bounded event timeline: `(cycle, event)` pairs in emission order.
/// Recording stops silently at capacity (the counters in
/// [`crate::stats::KernelStats`] remain complete).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<(u64, Event)>,
    capacity: usize,
}

impl Trace {
    /// A trace that keeps at most `capacity` events (0 disables).
    pub fn with_capacity(capacity: usize) -> Self {
        Self { events: Vec::new(), capacity }
    }

    /// Whether recording is active.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Record an event at `cycle`.
    pub fn record(&mut self, cycle: u64, event: Event) {
        if self.events.len() < self.capacity {
            self.events.push((cycle, event));
        }
    }

    /// The recorded timeline.
    pub fn events(&self) -> &[(u64, Event)] {
        &self.events
    }

    /// Render as one line per event.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (cycle, e) in &self.events {
            out.push_str(&format!("{cycle:>12} {e}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_bounds_recording() {
        let mut t = Trace::with_capacity(2);
        for i in 0..5 {
            t.record(i, Event::TimerTick { pid: 1 });
        }
        assert_eq!(t.events().len(), 2);
        assert!(t.enabled());
        assert!(!Trace::with_capacity(0).enabled());
    }

    #[test]
    fn text_rendering_is_one_line_per_event() {
        let mut t = Trace::with_capacity(8);
        t.record(10, Event::Spawn { pid: 1 });
        t.record(20, Event::Exit { pid: 1, code: 0 });
        let text = t.to_text();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("spawn pid=1"));
        assert!(text.contains("exit pid=1"));
    }
}
