//! Audio echo workload: reference implementation and circuits.
//!
//! A feedback echo over 16-bit samples (stored one per word):
//! `y[n] = sat16(x[n] + (y[n-D] * gain) >> 8)` with an 8.8 fixed-point
//! gain. The guest implements the kernel with **two custom instructions
//! in a tight loop** — `echo_scale` (CID 0) and `echo_sat_add` (CID 1) —
//! which is what makes echo contend for PFUs at half the process count of
//! the single-circuit workloads (paper §5.1).

use proteus_rfu::behavioral::FixedLatency;
use proteus_rfu::PfuCircuit;

/// Cycles for the scale instruction (16×8 multiply + shift, sequential
/// shift-add datapath).
pub const SCALE_LATENCY: u32 = 3;

/// Cycles for the saturating add.
pub const SAT_ADD_LATENCY: u32 = 1;

/// `(sample * gain) >> 8` on sign-extended 16-bit samples; gain is 8.8
/// fixed point in the low 16 bits of `op_b`.
pub fn echo_scale(sample: u32, gain: u32) -> u32 {
    let s = sample as u16 as i16 as i32;
    let g = (gain & 0xFFFF) as i32;
    (((s * g) >> 8) as u32) & 0xFFFF
}

/// Saturating signed 16-bit add of the two operands' low halves.
pub fn echo_sat_add(a: u32, b: u32) -> u32 {
    let x = a as u16 as i16;
    let y = b as u16 as i16;
    x.saturating_add(y) as u16 as u32
}

/// Reference echo over a sample buffer. `delay` is in samples; the
/// feedback taps the *output* signal. Samples wrap around the low 16
/// bits of each word.
///
/// # Panics
///
/// Panics if `delay` is zero.
pub fn echo_ref(input: &[u32], delay: usize, gain: u32) -> Vec<u32> {
    assert!(delay > 0, "delay must be positive");
    let mut out = Vec::with_capacity(input.len());
    for (n, &x) in input.iter().enumerate() {
        let fed = if n >= delay { out[n - delay] } else { 0 };
        let scaled = echo_scale(fed, gain);
        out.push(echo_sat_add(x, scaled));
    }
    out
}

/// The scale custom instruction (CID 0 in the guest program).
pub fn scale_circuit() -> Box<dyn PfuCircuit> {
    Box::new(FixedLatency::new("echo_scale", SCALE_LATENCY, 8, echo_scale))
}

/// The saturating-add custom instruction (CID 1).
pub fn sat_add_circuit() -> Box<dyn PfuCircuit> {
    Box::new(FixedLatency::new("echo_sat_add", SAT_ADD_LATENCY, 4, echo_sat_add))
}

/// Deterministic 16-bit test signal shared with the guest generator.
pub fn test_samples(n: usize, mut seed: u32) -> Vec<u32> {
    (0..n)
        .map(|_| {
            seed = seed.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            seed >> 16
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_applies_fixed_point_gain() {
        assert_eq!(echo_scale(256, 0x80), 128, "gain 0.5");
        assert_eq!(echo_scale(100, 0x100), 100, "gain 1.0");
        assert_eq!(echo_scale(0, 0xFF), 0);
        // Negative samples stay negative.
        let neg = (-256i16) as u16 as u32;
        assert_eq!(echo_scale(neg, 0x80) as u16 as i16, -128);
    }

    #[test]
    fn sat_add_saturates() {
        assert_eq!(echo_sat_add(0x7FFF, 1) as u16 as i16, i16::MAX);
        let neg = (-30000i16) as u16 as u32;
        assert_eq!(echo_sat_add(neg, neg) as u16 as i16, i16::MIN);
        assert_eq!(echo_sat_add(5, 7), 12);
    }

    #[test]
    fn echo_is_silence_preserving() {
        let silence = vec![0u32; 64];
        assert_eq!(echo_ref(&silence, 8, 0x80), silence);
    }

    #[test]
    fn echo_repeats_an_impulse() {
        let mut input = vec![0u32; 40];
        input[0] = 1000;
        let out = echo_ref(&input, 10, 0x80);
        assert_eq!(out[0], 1000);
        assert_eq!(out[10], 500);
        assert_eq!(out[20], 250);
        assert_eq!(out[5], 0);
    }

    #[test]
    fn circuits_match_reference() {
        let run = |c: &mut Box<dyn PfuCircuit>, a: u32, b: u32| {
            let mut init = true;
            loop {
                let o = c.clock(a, b, init);
                init = false;
                if o.done {
                    return o.result;
                }
            }
        };
        let mut sc = scale_circuit();
        let mut ad = sat_add_circuit();
        for (&a, &b) in test_samples(32, 3).iter().zip(&test_samples(32, 4)) {
            assert_eq!(run(&mut sc, a, 0x9A), echo_scale(a, 0x9A));
            assert_eq!(run(&mut ad, a, b), echo_sat_add(a, b));
        }
    }
}
