//! ALU: barrel shifter, data-processing semantics and CPSR flags.

use proteus_isa::{DpOp, Operand2, Shift, ShiftKind};

/// The four CPSR condition flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cpsr {
    /// Negative.
    pub n: bool,
    /// Zero.
    pub z: bool,
    /// Carry.
    pub c: bool,
    /// Overflow.
    pub v: bool,
}

impl Cpsr {
    /// Pack into a word (bits 31..28 = N,Z,C,V) for context save.
    pub fn to_word(self) -> u32 {
        (u32::from(self.n) << 31) | (u32::from(self.z) << 30) | (u32::from(self.c) << 29) | (u32::from(self.v) << 28)
    }

    /// Unpack from a context-save word.
    pub fn from_word(w: u32) -> Cpsr {
        Cpsr { n: w >> 31 & 1 == 1, z: w >> 30 & 1 == 1, c: w >> 29 & 1 == 1, v: w >> 28 & 1 == 1 }
    }
}

/// Apply a barrel shift, returning `(value, carry_out)`.
///
/// An amount of zero passes the value through with the incoming carry
/// (our shifts are immediate-amount only; ARM's special amount-0 LSR/ASR
/// encodings for 32-bit shifts are not modelled).
#[inline(always)]
pub fn barrel_shift(value: u32, shift: Shift, carry_in: bool) -> (u32, bool) {
    let amount = u32::from(shift.amount);
    if amount == 0 {
        return (value, carry_in);
    }
    match shift.kind {
        ShiftKind::Lsl => (value << amount, value >> (32 - amount) & 1 == 1),
        ShiftKind::Lsr => (value >> amount, value >> (amount - 1) & 1 == 1),
        ShiftKind::Asr => (((value as i32) >> amount) as u32, (value as i32) >> (amount - 1) & 1 == 1),
        ShiftKind::Ror => (value.rotate_right(amount), value.rotate_right(amount) >> 31 & 1 == 1),
    }
}

/// Evaluate a flexible second operand: `(value, shifter_carry)`.
#[inline(always)]
pub fn eval_op2(op2: Operand2, reg_read: impl Fn(usize) -> u32, carry_in: bool) -> (u32, bool) {
    match op2 {
        Operand2::Imm { value, rot } => {
            let v = Operand2::imm_value(value, rot);
            let carry = if rot == 0 { carry_in } else { v >> 31 & 1 == 1 };
            (v, carry)
        }
        Operand2::Reg { reg, shift } => barrel_shift(reg_read(reg.index()), shift, carry_in),
    }
}

/// Outcome of a data-processing operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AluResult {
    /// The computed value (meaningless for test ops, which only set
    /// flags).
    pub value: u32,
    /// Flags this operation produces when `S` is set.
    pub flags: Cpsr,
    /// Whether `value` is written to `rd`.
    pub writes_rd: bool,
}

#[inline(always)]
fn add_flags(a: u32, b: u32, carry_in: bool) -> (u32, Cpsr) {
    let (s1, c1) = a.overflowing_add(b);
    let (sum, c2) = s1.overflowing_add(u32::from(carry_in));
    let c = c1 || c2;
    let v = (!(a ^ b) & (a ^ sum)) >> 31 & 1 == 1;
    (sum, Cpsr { n: sum >> 31 & 1 == 1, z: sum == 0, c, v })
}

#[inline(always)]
fn logical_flags(value: u32, shifter_carry: bool, old: Cpsr) -> Cpsr {
    Cpsr { n: value >> 31 & 1 == 1, z: value == 0, c: shifter_carry, v: old.v }
}

/// Execute a data-processing opcode without computing flags — the fast
/// lane for the common `S`-clear case. Returns `(value, writes_rd)`;
/// matches [`exec_dp`]'s value exactly (tested against it).
#[inline(always)]
pub fn exec_dp_value(op: DpOp, rn: u32, op2: u32, carry_in: bool) -> (u32, bool) {
    let borrow = u32::from(!carry_in);
    match op {
        DpOp::And => (rn & op2, true),
        DpOp::Eor => (rn ^ op2, true),
        DpOp::Orr => (rn | op2, true),
        DpOp::Bic => (rn & !op2, true),
        DpOp::Mov => (op2, true),
        DpOp::Mvn => (!op2, true),
        DpOp::Tst | DpOp::Teq | DpOp::Cmp | DpOp::Cmn => (0, false),
        DpOp::Add => (rn.wrapping_add(op2), true),
        DpOp::Adc => (rn.wrapping_add(op2).wrapping_add(u32::from(carry_in)), true),
        DpOp::Sub => (rn.wrapping_sub(op2), true),
        DpOp::Sbc => (rn.wrapping_sub(op2).wrapping_sub(borrow), true),
        DpOp::Rsb => (op2.wrapping_sub(rn), true),
        DpOp::Rsc => (op2.wrapping_sub(rn).wrapping_sub(borrow), true),
    }
}

/// Execute a data-processing opcode.
#[inline(always)]
pub fn exec_dp(op: DpOp, rn: u32, op2: u32, shifter_carry: bool, cpsr: Cpsr) -> AluResult {
    let logical = |value: u32, writes: bool| AluResult {
        value,
        flags: logical_flags(value, shifter_carry, cpsr),
        writes_rd: writes,
    };
    let arith = |(value, flags): (u32, Cpsr), writes: bool| AluResult { value, flags, writes_rd: writes };
    match op {
        DpOp::And => logical(rn & op2, true),
        DpOp::Eor => logical(rn ^ op2, true),
        DpOp::Orr => logical(rn | op2, true),
        DpOp::Bic => logical(rn & !op2, true),
        DpOp::Mov => logical(op2, true),
        DpOp::Mvn => logical(!op2, true),
        DpOp::Tst => logical(rn & op2, false),
        DpOp::Teq => logical(rn ^ op2, false),
        DpOp::Add => arith(add_flags(rn, op2, false), true),
        DpOp::Adc => arith(add_flags(rn, op2, cpsr.c), true),
        DpOp::Sub => arith(add_flags(rn, !op2, true), true),
        DpOp::Sbc => arith(add_flags(rn, !op2, cpsr.c), true),
        DpOp::Rsb => arith(add_flags(op2, !rn, true), true),
        DpOp::Rsc => arith(add_flags(op2, !rn, cpsr.c), true),
        DpOp::Cmp => arith(add_flags(rn, !op2, true), false),
        DpOp::Cmn => arith(add_flags(rn, op2, false), false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sets_carry_and_overflow() {
        let r = exec_dp(DpOp::Add, 0xFFFF_FFFF, 1, false, Cpsr::default());
        assert_eq!(r.value, 0);
        assert!(r.flags.z && r.flags.c && !r.flags.v);
        let r = exec_dp(DpOp::Add, 0x7FFF_FFFF, 1, false, Cpsr::default());
        assert!(r.flags.v && r.flags.n && !r.flags.c);
    }

    #[test]
    fn sub_carry_is_not_borrow() {
        // ARM: C set when no borrow.
        let r = exec_dp(DpOp::Sub, 5, 3, false, Cpsr::default());
        assert_eq!(r.value, 2);
        assert!(r.flags.c);
        let r = exec_dp(DpOp::Sub, 3, 5, false, Cpsr::default());
        assert_eq!(r.value, 3u32.wrapping_sub(5));
        assert!(!r.flags.c && r.flags.n);
    }

    #[test]
    fn cmp_writes_no_rd() {
        let r = exec_dp(DpOp::Cmp, 9, 9, false, Cpsr::default());
        assert!(!r.writes_rd);
        assert!(r.flags.z);
    }

    #[test]
    fn adc_sbc_use_carry() {
        let carry = Cpsr { c: true, ..Cpsr::default() };
        assert_eq!(exec_dp(DpOp::Adc, 1, 1, false, carry).value, 3);
        assert_eq!(exec_dp(DpOp::Sbc, 5, 3, false, carry).value, 2);
        let no_carry = Cpsr::default();
        assert_eq!(exec_dp(DpOp::Sbc, 5, 3, false, no_carry).value, 1);
    }

    #[test]
    fn barrel_shift_carries() {
        assert_eq!(barrel_shift(0x8000_0001, Shift { kind: ShiftKind::Lsl, amount: 1 }, false), (2, true));
        assert_eq!(barrel_shift(0x3, Shift { kind: ShiftKind::Lsr, amount: 1 }, false), (1, true));
        assert_eq!(
            barrel_shift(0x8000_0000, Shift { kind: ShiftKind::Asr, amount: 4 }, false),
            (0xF800_0000, false)
        );
        assert_eq!(barrel_shift(0x1, Shift { kind: ShiftKind::Ror, amount: 1 }, false), (0x8000_0000, true));
        // amount 0 passes carry through.
        assert_eq!(barrel_shift(7, Shift::NONE, true), (7, true));
    }

    #[test]
    fn value_fast_path_matches_exec_dp() {
        // The flag-free lane must agree with the full ALU on value and
        // rd-writeback for every opcode, operand pattern, and carry-in.
        let ops = [
            DpOp::And, DpOp::Eor, DpOp::Orr, DpOp::Bic, DpOp::Mov, DpOp::Mvn,
            DpOp::Tst, DpOp::Teq, DpOp::Cmp, DpOp::Cmn,
            DpOp::Add, DpOp::Adc, DpOp::Sub, DpOp::Sbc, DpOp::Rsb, DpOp::Rsc,
        ];
        let samples = [0, 1, 5, 0x7FFF_FFFF, 0x8000_0000, 0xFFFF_FFFF, 0xDEAD_BEEF];
        for op in ops {
            for &rn in &samples {
                for &op2 in &samples {
                    for carry in [false, true] {
                        let cpsr = Cpsr { c: carry, ..Cpsr::default() };
                        let full = exec_dp(op, rn, op2, false, cpsr);
                        let (value, writes_rd) = exec_dp_value(op, rn, op2, carry);
                        assert_eq!(
                            writes_rd, full.writes_rd,
                            "{op:?} rn={rn:#x} op2={op2:#x} c={carry}"
                        );
                        if writes_rd {
                            assert_eq!(
                                value, full.value,
                                "{op:?} rn={rn:#x} op2={op2:#x} c={carry}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn cpsr_word_roundtrip() {
        let c = Cpsr { n: true, z: false, c: true, v: false };
        assert_eq!(Cpsr::from_word(c.to_word()), c);
    }
}
