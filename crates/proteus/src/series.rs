//! Result series and CSV output.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use porsche::probe::CycleLedger;

/// One data point of a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// X value (typically the number of concurrent instances).
    pub x: f64,
    /// Y value (typically completion time in cycles).
    pub y: f64,
}

/// A named line on a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label, e.g. `"Alpha, Round Robin, 10ms"`.
    pub name: String,
    /// Points in x order.
    pub points: Vec<Point>,
}

impl Series {
    /// An empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), points: Vec::new() }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push(Point { x, y });
    }

    /// The y value at the given x, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|p| p.x == x).map(|p| p.y)
    }
}

/// A figure: a titled collection of series.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSet {
    /// Figure identifier, e.g. `"fig2"`.
    pub figure: String,
    /// All series.
    pub series: Vec<Series>,
}

impl SeriesSet {
    /// An empty figure.
    pub fn new(figure: impl Into<String>) -> Self {
        Self { figure: figure.into(), series: Vec::new() }
    }

    /// Append a series.
    pub fn push(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Find a series by name.
    pub fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Long-format CSV: `figure,series,x,y`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("figure,series,x,y\n");
        for s in &self.series {
            for p in &s.points {
                let _ = writeln!(out, "{},{},{},{}", self.figure, s.name, p.x, p.y);
            }
        }
        out
    }

    /// Write the CSV to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_csv())
    }

    /// Render an ASCII summary table (x columns, one row per series) for
    /// terminal output.
    pub fn to_table(&self) -> String {
        let xs: Vec<f64> = {
            let mut xs: Vec<f64> = self.series.iter().flat_map(|s| s.points.iter().map(|p| p.x)).collect();
            xs.sort_by(f64::total_cmp);
            xs.dedup();
            xs
        };
        let name_w = self.series.iter().map(|s| s.name.len()).max().unwrap_or(6).max(6);
        let mut out = format!("{:<name_w$}", "series");
        for x in &xs {
            let _ = write!(out, " {:>12}", format!("x={x}"));
        }
        out.push('\n');
        for s in &self.series {
            let _ = write!(out, "{:<name_w$}", s.name);
            for x in &xs {
                match s.y_at(*x) {
                    Some(y) => {
                        let _ = write!(out, " {y:>12.0}");
                    }
                    None => {
                        let _ = write!(out, " {:>12}", "-");
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

/// One job's cycle attribution: which series/x it belongs to, the total
/// simulated cycles of that run, and the per-category ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownRow {
    /// Legend label of the series the job contributed to.
    pub series: String,
    /// X value of the corresponding [`Point`].
    pub x: f64,
    /// Total simulated cycles of the run (== `ledger.total()`).
    pub total: u64,
    /// Per-category attribution.
    pub ledger: CycleLedger,
}

/// Per-figure cycle-attribution table, assembled in plan order so it is
/// byte-identical at any worker count (same guarantee as [`SeriesSet`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownSet {
    /// Figure identifier, e.g. `"fig2"`.
    pub figure: String,
    /// Rows in plan order.
    pub rows: Vec<BreakdownRow>,
}

impl BreakdownSet {
    /// An empty table for `figure`.
    pub fn new(figure: impl Into<String>) -> Self {
        Self { figure: figure.into(), rows: Vec::new() }
    }

    /// Sum of every row's ledger (for aggregate reporting).
    pub fn aggregate(&self) -> CycleLedger {
        let mut total = CycleLedger::default();
        for row in &self.rows {
            total.absorb(&row.ledger);
        }
        total
    }

    /// Long-format CSV: `figure,series,x,total,<one column per ledger
    /// category>` in [`CycleLedger::CATEGORIES`] order.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("figure,series,x,total");
        for cat in CycleLedger::CATEGORIES {
            let _ = write!(out, ",{cat}");
        }
        out.push('\n');
        for row in &self.rows {
            let _ = write!(out, "{},{},{},{}", self.figure, row.series, row.x, row.total);
            for v in row.ledger.values() {
                let _ = write!(out, ",{v}");
            }
            out.push('\n');
        }
        out
    }

    /// Write the CSV to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_csv_has_one_column_per_category() {
        let mut set = BreakdownSet::new("figX");
        let ledger = CycleLedger { user_compute: 70, idle: 30, ..CycleLedger::default() };
        set.rows.push(BreakdownRow { series: "a".into(), x: 2.0, total: 100, ledger });
        let csv = set.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().expect("header");
        assert_eq!(header.split(',').count(), 4 + CycleLedger::CATEGORIES.len());
        assert!(header.starts_with("figure,series,x,total,user_compute,"));
        let row = lines.next().expect("row");
        assert!(row.starts_with("figX,a,2,100,70,"));
        assert_eq!(set.aggregate().total(), 100);
    }

    #[test]
    fn csv_is_long_format() {
        let mut set = SeriesSet::new("figX");
        let mut s = Series::new("a");
        s.push(1.0, 10.0);
        s.push(2.0, 20.0);
        set.push(s);
        let csv = set.to_csv();
        assert!(csv.starts_with("figure,series,x,y\n"));
        assert!(csv.contains("figX,a,1,10"));
        assert!(csv.contains("figX,a,2,20"));
    }

    #[test]
    fn table_renders_missing_points_as_dash() {
        let mut set = SeriesSet::new("f");
        let mut a = Series::new("a");
        a.push(1.0, 5.0);
        let mut b = Series::new("b");
        b.push(2.0, 6.0);
        set.push(a);
        set.push(b);
        let t = set.to_table();
        assert!(t.contains('-'));
        assert!(t.contains("x=1"));
        assert!(t.contains("x=2"));
    }

    #[test]
    fn y_at_lookup() {
        let mut s = Series::new("s");
        s.push(3.0, 9.0);
        assert_eq!(s.y_at(3.0), Some(9.0));
        assert_eq!(s.y_at(4.0), None);
    }
}
