//! `any::<T>()` — canonical strategies for primitive types.

use std::fmt::Debug;
use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Debug + Sized + 'static {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `A` (see [`any`]).
pub struct Any<A>(PhantomData<fn() -> A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The canonical strategy producing any value of `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Edge-biased, like the range strategies: zero and the
                // extremes appear with elevated probability.
                match rng.below(8) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )+};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrays_and_ints_sample() {
        let mut rng = TestRng::seed_from_u64(9);
        let bytes = <[u8; 16]>::arbitrary(&mut rng);
        assert_eq!(bytes.len(), 16);
        let words = <[u32; 4]>::arbitrary(&mut rng);
        assert_eq!(words.len(), 4);
        let strat = any::<u64>();
        let mut saw_zero = false;
        for _ in 0..100 {
            saw_zero |= strat.sample(&mut rng) == 0;
        }
        assert!(saw_zero, "edge bias should produce zero");
    }
}
