//! One experimental run: N instances of a workload under a scheduling
//! configuration.

use porsche::cis::DispatchMode;
use porsche::costs::CostModel;
use porsche::fault::{FaultPlan, RecoveryPolicy};
use porsche::kernel::{KernelConfig, KernelError};
use porsche::policy::PolicyKind;
use porsche::probe::{AttributedLedger, CycleLedger, Event, Tag};
use porsche::stats::KernelStats;
use proteus_apps::workload::{WorkloadConfig, WorkloadSpec};
use proteus_apps::AppKind;
use proteus_rfu::RfuConfig;

use crate::machine::{Machine, MachineConfig};

/// Builder for one run of the paper's experimental setup: between 1 and
/// N concurrent instances of a test application (paper §5.1; "sharing is
/// not allowed", which holds here automatically because every instance
/// registers its own circuit instances).
#[derive(Debug, Clone)]
pub struct Scenario {
    app: AppKind,
    accelerated: bool,
    instances: usize,
    size: usize,
    passes: u32,
    quantum: u64,
    policy: PolicyKind,
    mode: DispatchMode,
    with_software_alt: bool,
    pfus: usize,
    tlb_capacity: usize,
    costs: CostModel,
    share_circuits: bool,
    cycle_limit: u64,
    trace_capacity: usize,
    faults: Option<FaultPlan>,
    recovery: RecoveryPolicy,
    watchdog_cycles: Option<u64>,
}

impl Scenario {
    /// A single accelerated instance with small defaults; chain setters
    /// to describe the experiment.
    pub fn new(app: AppKind) -> Self {
        Self {
            app,
            accelerated: true,
            instances: 1,
            size: default_size(app),
            passes: 4,
            quantum: 1_000_000,
            policy: PolicyKind::RoundRobin,
            mode: DispatchMode::HardwareOnly,
            with_software_alt: false,
            pfus: 4,
            tlb_capacity: 16,
            costs: CostModel::default(),
            share_circuits: false,
            cycle_limit: 500_000_000_000,
            trace_capacity: 0,
            faults: None,
            recovery: RecoveryPolicy::default(),
            watchdog_cycles: None,
        }
    }

    /// Concurrent process instances (paper: 1–8).
    pub fn instances(mut self, n: usize) -> Self {
        self.instances = n;
        self
    }

    /// Work units per pass (pixels / samples / blocks).
    pub fn size(mut self, size: usize) -> Self {
        self.size = size;
        self
    }

    /// Passes over the data per process.
    pub fn passes(mut self, passes: u32) -> Self {
        self.passes = passes;
        self
    }

    /// Scheduling quantum in cycles.
    pub fn quantum(mut self, cycles: u64) -> Self {
        self.quantum = cycles;
        self
    }

    /// PFU replacement policy.
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Contention resolution mode. [`DispatchMode::SoftwareFallback`]
    /// implies registering the software alternatives.
    pub fn mode(mut self, mode: DispatchMode) -> Self {
        self.mode = mode;
        if mode == DispatchMode::SoftwareFallback {
            self.with_software_alt = true;
        }
        self
    }

    /// Use the pure-software program variant (no custom instructions).
    pub fn software_only(mut self) -> Self {
        self.accelerated = false;
        self
    }

    /// Number of PFUs (paper: 4).
    pub fn pfus(mut self, pfus: usize) -> Self {
        self.pfus = pfus;
        self
    }

    /// Dispatch-TLB capacity.
    pub fn tlb_capacity(mut self, slots: usize) -> Self {
        self.tlb_capacity = slots;
        self
    }

    /// Override the kernel cost model.
    pub fn costs(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }

    /// Enable §4.2 circuit sharing: same-image circuits share a PFU via
    /// state-frame swaps. The paper's experiments disable this.
    pub fn sharing(mut self, on: bool) -> Self {
        self.share_circuits = on;
        self
    }

    /// Safety valve for runaway runs.
    pub fn cycle_limit(mut self, limit: u64) -> Self {
        self.cycle_limit = limit;
        self
    }

    /// Keep the latest `capacity` timeline events in the result (0, the
    /// default, disables tracing).
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Inject faults per `plan` (DESIGN.md §9). Pair with
    /// [`Scenario::watchdog`] so hung slots are actually detected.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// How far the kernel's fault handler climbs the recovery ladder
    /// (retry → software failover → quarantine).
    pub fn recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Per-PFU watchdog allowance: clocks a slot may accumulate without
    /// raising `done` before the RFU trips a fault (`None` disables —
    /// the seed behaviour).
    pub fn watchdog(mut self, cycles: u64) -> Self {
        self.watchdog_cycles = Some(cycles);
        self
    }

    /// Register the software alternatives without switching the dispatch
    /// mode: contention still reconfigures, but the fault handler's
    /// failover rung has a software path to fall back on.
    pub fn software_alts(mut self) -> Self {
        self.with_software_alt = true;
        self
    }

    /// Build the machine, spawn the instances and run to completion.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (spawn failure, cycle limit).
    pub fn run(&self) -> Result<ScenarioResult, KernelError> {
        let mut cfg = WorkloadConfig::new(self.app, self.size, self.passes);
        if !self.accelerated {
            cfg = cfg.software();
        }
        let spec = WorkloadSpec::build(cfg);
        let mut machine = Machine::new(MachineConfig {
            kernel: KernelConfig {
                quantum: self.quantum,
                costs: self.costs,
                policy: self.policy,
                mode: self.mode,
                default_mem: 1 << 20,
                share_circuits: self.share_circuits,
                trace_capacity: self.trace_capacity,
                faults: self.faults,
                recovery: self.recovery,
                ..KernelConfig::default()
            },
            rfu: RfuConfig {
                pfus: self.pfus,
                tlb_capacity: self.tlb_capacity,
                watchdog_cycles: self.watchdog_cycles,
                ..RfuConfig::default()
            },
        });
        for _ in 0..self.instances {
            machine.spawn(spec.spawn_spec(self.with_software_alt))?;
        }
        let report = machine.run(self.cycle_limit)?;
        let expected = spec.expected_checksum();
        let finishes: Vec<u64> = report.exited.iter().map(|(_, f, _)| *f).collect();
        let valid = report.killed.is_empty()
            && report.exited.len() == self.instances
            && report.exited.iter().all(|(_, _, code)| *code == expected);
        Ok(ScenarioResult {
            makespan: report.makespan,
            finishes,
            stats: report.stats,
            ledger: report.ledger,
            attributed: report.attributed,
            trace: machine.kernel().trace().snapshot(),
            trace_dropped: machine.kernel().trace().dropped(),
            total_cycles: machine.cycles(),
            valid,
            expected_checksum: expected,
        })
    }
}

fn default_size(app: AppKind) -> usize {
    match app {
        AppKind::Alpha => 256,
        AppKind::Echo => 512,
        AppKind::Twofish => 16,
    }
}

/// Outcome of a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioResult {
    /// Completion time of the last process, in cycles (the paper's
    /// y-axis).
    pub makespan: u64,
    /// Per-process finish cycles, PID order.
    pub finishes: Vec<u64>,
    /// Kernel management statistics.
    pub stats: KernelStats,
    /// Where every simulated cycle went (folded from the event stream).
    pub ledger: CycleLedger,
    /// The same cycles attributed per process × emit site; refolds to
    /// `ledger` exactly (see `porsche::probe::AttributedLedger`).
    pub attributed: AttributedLedger,
    /// Timeline events, oldest first (empty unless
    /// [`Scenario::trace_capacity`] was set).
    pub trace: Vec<(u64, Tag, Event)>,
    /// Events the trace ring discarded (oldest-first) once full; when
    /// non-zero, `trace` is only the *tail* of the timeline.
    pub trace_dropped: u64,
    /// Total simulated cycles, including post-makespan idle time; equals
    /// [`CycleLedger::total`] of `ledger`.
    pub total_cycles: u64,
    /// All processes exited with the reference checksum.
    pub valid: bool,
    /// The reference checksum.
    pub expected_checksum: u32,
}

impl ScenarioResult {
    /// Whether every instance computed the correct result.
    pub fn all_valid(&self) -> bool {
        self.valid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_instance_valid_for_each_app() {
        for app in AppKind::ALL {
            let r = Scenario::new(app).size(16).passes(1).run().expect("run");
            assert!(r.all_valid(), "{app:?}: {r:?}");
        }
    }

    #[test]
    fn contention_appears_beyond_four_single_circuit_instances() {
        // Workloads must span several quanta so the instances overlap in
        // time: 5 alpha instances on 4 PFUs must evict; 4 must not.
        let run = |n| {
            Scenario::new(AppKind::Alpha)
                .instances(n)
                .size(64)
                .passes(30)
                .quantum(5_000)
                .run()
                .expect("run")
        };
        let no_contention = run(4);
        assert_eq!(no_contention.stats.evictions, 0, "{:?}", no_contention.stats);
        let contention = run(5);
        assert!(contention.stats.evictions > 0, "{:?}", contention.stats);
        assert!(contention.all_valid());
    }

    #[test]
    fn echo_contends_at_three_instances() {
        // Echo uses two circuits; with 4 PFUs, 2 instances fit, 3 thrash.
        let run = |n| {
            Scenario::new(AppKind::Echo)
                .instances(n)
                .size(128)
                .passes(20)
                .quantum(5_000)
                .run()
                .expect("run")
        };
        let fits = run(2);
        assert_eq!(fits.stats.evictions, 0, "{:?}", fits.stats);
        let thrash = run(3);
        assert!(thrash.stats.evictions > 0, "{:?}", thrash.stats);
        assert!(thrash.all_valid());
    }

    #[test]
    fn software_fallback_mode_validates_under_contention() {
        let r = Scenario::new(AppKind::Alpha)
            .instances(6)
            .size(64)
            .passes(30)
            .quantum(5_000)
            .mode(DispatchMode::SoftwareFallback)
            .run()
            .expect("run");
        assert!(r.all_valid());
        assert!(r.stats.software_installs >= 2, "{:?}", r.stats);
        assert_eq!(r.stats.evictions, 0, "{:?}", r.stats);
    }
}
