//! `pasm` — assemble ProteanARM source to a flat binary image.
//!
//! ```text
//! pasm <input.s> [-o out.bin] [--hex] [--symbols]
//! ```
//!
//! With `--hex` the output is one word per line in hex (easy to diff);
//! otherwise a little-endian flat binary is written. `--symbols` prints
//! the symbol table to stderr.

use std::io::Write as _;
use std::process::ExitCode;

use proteus_isa::assemble;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input = None;
    let mut output = None;
    let mut hex = false;
    let mut symbols = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" => output = it.next().cloned(),
            "--hex" => hex = true,
            "--symbols" => symbols = true,
            "-h" | "--help" => {
                eprintln!("usage: pasm <input.s> [-o out.bin] [--hex] [--symbols]");
                return ExitCode::SUCCESS;
            }
            other => input = Some(other.to_string()),
        }
    }
    let Some(input) = input else {
        eprintln!("pasm: no input file (try --help)");
        return ExitCode::FAILURE;
    };
    let source = match std::fs::read_to_string(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pasm: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let program = match assemble(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("pasm: {input}:{e}");
            return ExitCode::FAILURE;
        }
    };
    if symbols {
        let mut syms: Vec<_> = program.symbols().iter().collect();
        syms.sort_by_key(|(_, &a)| a);
        for (name, addr) in syms {
            eprintln!("{addr:#010x} {name}");
        }
    }
    let out_path = output.unwrap_or_else(|| format!("{input}.bin"));
    let result = if hex {
        let text: String =
            program.words().iter().map(|w| format!("{w:08x}\n")).collect();
        std::fs::write(&out_path, text)
    } else {
        let mut bytes = Vec::with_capacity(program.byte_len());
        for w in program.words() {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        std::fs::write(&out_path, bytes)
    };
    if let Err(e) = result {
        eprintln!("pasm: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    let _ = writeln!(
        std::io::stderr(),
        "pasm: {} words at origin {:#x} -> {out_path}",
        program.words().len(),
        program.origin()
    );
    ExitCode::SUCCESS
}
