//! Cycle-counted CPU model of the ProteanARM core.
//!
//! The paper's ProteanARM is an ARM7TDMI with one change to the core: the
//! coprocessor interface can supply a branch target (for software
//! dispatch, §4.3/§5). This crate models that core as a functional,
//! cycle-counted interpreter over the [`proteus_isa`] instruction set:
//!
//! * [`cpu::Cpu`] — registers, CPSR, the fetch/decode/execute loop with
//!   ARM7-class cycle costs, and precise stop reasons (quantum expiry,
//!   SWI, faults) so an external kernel model can drive scheduling;
//! * [`memory::Memory`] — a flat byte-addressable memory (one per
//!   process; the paper's workstation MMU is replaced by private address
//!   spaces, see DESIGN.md);
//! * [`coproc::Coprocessor`] — the interface the reconfigurable function
//!   unit plugs into, including interruptible multi-cycle custom
//!   instructions (§4.4) and software-dispatch operand latching (§4.3).
//!
//! # Example
//!
//! ```
//! use proteus_cpu::cpu::{Cpu, Stop};
//! use proteus_cpu::coproc::NullCoprocessor;
//! use proteus_cpu::memory::Memory;
//! use proteus_isa::assemble;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble("mov r0, #6\n mov r1, #7\n mul r2, r0, r1\n swi #0\n")?;
//! let mut mem = Memory::new(64 * 1024);
//! mem.load_program(&program)?;
//! let mut cpu = Cpu::new();
//! let stop = cpu.run(&mut mem, &mut NullCoprocessor, u64::MAX);
//! assert!(matches!(stop, Stop::Swi { imm: 0 }));
//! assert_eq!(cpu.reg(2), 42);
//! # Ok(())
//! # }
//! ```

pub mod alu;
pub mod coproc;
pub mod cpu;
pub mod memory;

pub use coproc::{CoprocResult, Coprocessor, NullCoprocessor, RetInfo};
pub use cpu::{Cpu, ExecMix, Stop};
pub use memory::{MemError, Memory};
