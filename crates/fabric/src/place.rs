//! Placement of netlists onto the CLB grid.
//!
//! Each CLB provides one LUT4 and one DFF. Placement assigns every LUT and
//! DFF node of a netlist to a CLB, pairing a flip-flop with the LUT that
//! drives it whenever possible (the common registered-output pattern costs
//! one CLB, exactly as on a Virtex slice).

use std::collections::HashMap;

use crate::error::FabricError;
use crate::netlist::{Netlist, Node, NodeId};

/// Dimensions of a rectangular CLB array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FabricDims {
    /// Columns of CLBs.
    pub width: u16,
    /// Rows of CLBs.
    pub height: u16,
}

impl FabricDims {
    /// The PFU size used throughout the paper: 500 CLBs (25 × 20).
    pub const PFU: FabricDims = FabricDims { width: 25, height: 20 };

    /// Create dimensions.
    pub fn new(width: u16, height: u16) -> Self {
        Self { width, height }
    }

    /// Total CLB count.
    pub fn clbs(self) -> usize {
        self.width as usize * self.height as usize
    }
}

impl Default for FabricDims {
    fn default() -> Self {
        Self::PFU
    }
}

/// Where a signal comes from, in fabric coordinates. This is the value a
/// routing mux selects; the encoding has no representation for driving a
/// wire from two places, which is how mux-based routing makes shorts
/// impossible (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceRef {
    /// The constant-0 or constant-1 rail.
    Const(bool),
    /// A datapath input-port bit (`port`, `bit`).
    Port(u16, u16),
    /// The combinational output of a CLB's LUT.
    ClbLut(u16),
    /// The registered output of a CLB's DFF.
    ClbDff(u16),
}

/// Result of placement: site assignment for every LUT/DFF node plus the
/// resolved source of every routed signal.
#[derive(Debug, Clone, Default)]
pub struct Placement {
    /// CLB index for each LUT node.
    pub lut_site: HashMap<NodeId, u16>,
    /// CLB index for each DFF node.
    pub dff_site: HashMap<NodeId, u16>,
    /// CLBs actually occupied.
    pub used_clbs: usize,
}

impl Placement {
    /// Translate a netlist node into the fabric-level source that routing
    /// muxes select.
    pub fn source_of(&self, netlist: &Netlist, id: NodeId) -> SourceRef {
        match netlist.nodes()[id.index()] {
            Node::Const(v) => SourceRef::Const(v),
            Node::Input { port, bit } => SourceRef::Port(port, bit),
            Node::Lut { .. } => {
                // Invariant: placement covers every node of a checked
                // netlist, so a missing site is an internal bug.
                debug_assert!(self.lut_site.contains_key(&id), "LUT node missing from placement");
                SourceRef::ClbLut(self.lut_site.get(&id).copied().unwrap_or_default())
            }
            Node::Dff { .. } => {
                debug_assert!(self.dff_site.contains_key(&id), "DFF node missing from placement");
                SourceRef::ClbDff(self.dff_site.get(&id).copied().unwrap_or_default())
            }
        }
    }
}

impl FabricDims {
    /// Grid coordinates of a CLB index.
    pub fn coords(self, clb: u16) -> (u16, u16) {
        (clb % self.width, clb / self.width)
    }
}

impl Placement {
    /// Total Manhattan wirelength of the placed design: the sum, over
    /// every routed sink pin (LUT inputs, DFF data inputs), of the grid
    /// distance to its driving CLB. Port and constant sources count as
    /// distance zero (they arrive on dedicated datapath tracks). The
    /// standard quality-of-result metric for a placement.
    pub fn wirelength(&self, netlist: &Netlist, dims: FabricDims) -> u64 {
        let dist = |src: SourceRef, sink_clb: u16| -> u64 {
            let src_clb = match src {
                SourceRef::ClbLut(c) | SourceRef::ClbDff(c) => c,
                SourceRef::Const(_) | SourceRef::Port(..) => return 0,
            };
            let (ax, ay) = dims.coords(src_clb);
            let (bx, by) = dims.coords(sink_clb);
            u64::from(ax.abs_diff(bx)) + u64::from(ay.abs_diff(by))
        };
        let mut total = 0u64;
        for (i, node) in netlist.nodes().iter().enumerate() {
            let id = NodeId(i as u32);
            match node {
                Node::Lut { inputs, .. } => {
                    let sink = self.lut_site[&id];
                    for &inp in inputs {
                        total += dist(self.source_of(netlist, inp), sink);
                    }
                }
                Node::Dff { d, .. } => {
                    let sink = self.dff_site[&id];
                    total += dist(self.source_of(netlist, *d), sink);
                }
                _ => {}
            }
        }
        total
    }
}

/// Greedy placer: walk the netlist, give each LUT the next free CLB, and
/// co-locate a DFF with its driving LUT when that CLB's register slot is
/// still free.
///
/// # Errors
///
/// [`FabricError::CapacityExceeded`] if the design does not fit.
pub fn place(netlist: &Netlist, dims: FabricDims) -> Result<Placement, FabricError> {
    let capacity = dims.clbs();
    let mut placement = Placement::default();
    let mut next_clb: u16 = 0;
    let mut dff_free: Vec<bool> = Vec::new(); // parallel to allocated CLBs
    let mut lut_free: Vec<bool> = Vec::new();

    let mut alloc_clb = |dff_free: &mut Vec<bool>, lut_free: &mut Vec<bool>| -> u16 {
        let clb = next_clb;
        next_clb += 1;
        dff_free.push(true);
        lut_free.push(true);
        clb
    };

    // Pass 1: LUTs get fresh CLBs.
    for (i, node) in netlist.nodes().iter().enumerate() {
        if matches!(node, Node::Lut { .. }) {
            let clb = alloc_clb(&mut dff_free, &mut lut_free);
            lut_free[clb as usize] = false;
            placement.lut_site.insert(NodeId(i as u32), clb);
        }
    }
    // Pass 2: DFFs pair with their driving LUT's CLB when free.
    for (i, node) in netlist.nodes().iter().enumerate() {
        if let Node::Dff { d, .. } = node {
            let id = NodeId(i as u32);
            let paired = placement
                .lut_site
                .get(d)
                .copied()
                .filter(|&clb| dff_free[clb as usize]);
            let clb = match paired {
                Some(clb) => clb,
                None => alloc_clb(&mut dff_free, &mut lut_free),
            };
            dff_free[clb as usize] = false;
            placement.dff_site.insert(id, clb);
        }
    }
    placement.used_clbs = next_clb as usize;
    if placement.used_clbs > capacity {
        return Err(FabricError::CapacityExceeded {
            required: placement.used_clbs,
            available: capacity,
        });
    }
    Ok(placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    #[test]
    fn pfu_dims_hold_500_clbs() {
        assert_eq!(FabricDims::PFU.clbs(), 500);
    }

    #[test]
    fn registered_adder_shares_clbs() {
        let mut b = NetlistBuilder::new();
        let a = b.input_bus("op_a", 8);
        let c = b.input_bus("op_b", 8);
        let s = b.add(&a, &c);
        let r = b.register_bus(&s, 0);
        b.output_bus("result", &r);
        let n = b.finish().expect("netlist");
        let p = place(&n, FabricDims::PFU).expect("place");
        // Every DFF should have paired with its driving sum LUT.
        assert_eq!(p.used_clbs, n.lut_count());
    }

    #[test]
    fn wirelength_is_reported() {
        let mut b = NetlistBuilder::new();
        let a = b.input_bus("op_a", 8);
        let c = b.input_bus("op_b", 8);
        let s = b.add(&a, &c);
        b.output_bus("result", &s);
        let n = b.finish().expect("netlist");
        let p = place(&n, FabricDims::PFU).expect("place");
        let wl = p.wirelength(&n, FabricDims::PFU);
        // Ripple carries hop between adjacent CLBs in declaration order,
        // so the greedy placement keeps wirelength modest but nonzero.
        assert!(wl > 0);
        assert!(wl < 10_000, "wl={wl}");
    }

    #[test]
    fn capacity_is_enforced() {
        let mut b = NetlistBuilder::new();
        let a = b.input_bus("op_a", 16);
        let c = b.input_bus("op_b", 16);
        // 16x16 multiply blows past a 2x2 fabric.
        let m = b.mul(&a, &c);
        b.output_bus("result", &m);
        let n = b.finish().expect("netlist");
        assert!(matches!(
            place(&n, FabricDims::new(2, 2)),
            Err(FabricError::CapacityExceeded { .. })
        ));
    }
}
