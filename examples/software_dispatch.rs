//! Software dispatch (paper §4.3 / Figure 3): when the array is full,
//! the OS can map a custom instruction to its registered *software
//! alternative* instead of swapping circuits.
//!
//! Run with `cargo run --release --example software_dispatch`.

use porsche::cis::DispatchMode;
use porsche::policy::PolicyKind;
use proteus::scenario::Scenario;
use proteus_apps::AppKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("echo (two custom instructions per sample), 4 PFUs, 1 ms quantum");
    println!(
        "{:>4} {:>16} {:>16} {:>10} {:>12}",
        "n", "swap makespan", "soft makespan", "evictions", "sw installs"
    );
    for n in 1..=8 {
        let swap = Scenario::new(AppKind::Echo)
            .instances(n)
            .size(1024)
            .passes(30)
            .quantum(100_000)
            .policy(PolicyKind::RoundRobin)
            .run()?;
        let soft = Scenario::new(AppKind::Echo)
            .instances(n)
            .size(1024)
            .passes(30)
            .quantum(100_000)
            .policy(PolicyKind::RoundRobin)
            .mode(DispatchMode::SoftwareFallback)
            .run()?;
        assert!(swap.all_valid() && soft.all_valid());
        println!(
            "{:>4} {:>16} {:>16} {:>10} {:>12}",
            n, swap.makespan, soft.makespan, swap.stats.evictions, soft.stats.software_installs,
        );
    }
    println!();
    println!("below three instances the columns agree (everything fits in");
    println!("hardware); beyond that, 'soft' trades slower instructions for");
    println!("zero reconfiguration traffic — worthwhile at short quanta.");
    Ok(())
}
