//! Cross-crate integration tests live in `tests/`; this library is empty.
