//! The Twofish block-encryption custom instruction.
//!
//! The paper gives Twofish a *single* custom instruction. Accelerating
//! only the g function leaves the Feistel scaffolding in software and
//! caps the speedup near 2× (Amdahl), so the circuit here implements the
//! whole block path — key schedule baked into the configuration, one
//! round per clock — fed through the 2-in/1-out PFU interface with a
//! small phase machine:
//!
//! | invocation | operands  | latency | result |
//! |-----------:|-----------|--------:|--------|
//! | 1          | `w0`,`w1` | 1       | 0 (absorb) |
//! | 2          | `w2`,`w3` | 20      | `ct0` (whiten + 16 rounds + whiten) |
//! | 3–5        | ignored   | 1       | `ct1`–`ct3` |
//!
//! The internal state (plaintext/ciphertext registers + phase counter)
//! is exactly what the state frames carry when the OS swaps the circuit,
//! so an instance interrupted mid-block survives eviction.

use proteus_fabric::FabricError;
use proteus_rfu::circuit::{CircuitClock, CircuitState, PfuCircuit};

use super::cipher::Twofish;

/// Rounds-plus-whitening latency of the encrypting invocation.
pub const ENCRYPT_LATENCY: u32 = 20;

/// The phase-machine block cipher circuit.
#[derive(Debug, Clone)]
pub struct BlockCircuit {
    tf: Twofish,
    phase: u32,
    elapsed: u32,
    latched: (u32, u32),
    w: [u32; 4],
    ct: [u32; 4],
}

impl BlockCircuit {
    /// A circuit with `key` baked into its configuration.
    pub fn new(key: &[u8; 16]) -> Self {
        Self {
            tf: Twofish::new(key),
            phase: 0,
            elapsed: 0,
            latched: (0, 0),
            w: [0; 4],
            ct: [0; 4],
        }
    }

    fn latency(&self) -> u32 {
        if self.phase == 1 {
            ENCRYPT_LATENCY
        } else {
            1
        }
    }
}

impl PfuCircuit for BlockCircuit {
    fn clock(&mut self, op_a: u32, op_b: u32, init: bool) -> CircuitClock {
        if init {
            self.elapsed = 0;
            self.latched = (op_a, op_b);
        }
        self.elapsed += 1;
        if self.elapsed < self.latency() {
            return CircuitClock { result: 0, done: false };
        }
        self.elapsed = 0;
        let (a, b) = self.latched;
        let (result, next_phase) = match self.phase {
            0 => {
                self.w[0] = a;
                self.w[1] = b;
                (0, 1)
            }
            1 => {
                self.w[2] = a;
                self.w[3] = b;
                let mut block = [0u8; 16];
                for (i, w) in self.w.iter().enumerate() {
                    block[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
                }
                let ct = self.tf.encrypt_block(&block);
                for (i, c) in ct.chunks_exact(4).enumerate() {
                    self.ct[i] = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
                }
                (self.ct[0], 2)
            }
            p => {
                let idx = (p - 1) as usize;
                (self.ct[idx], if p == 4 { 0 } else { p + 1 })
            }
        };
        self.phase = next_phase;
        CircuitClock { result, done: true }
    }

    fn save_state(&self) -> CircuitState {
        let mut words = vec![0u32; 12];
        words[0] = self.phase;
        words[1] = self.elapsed;
        words[2] = self.latched.0;
        words[3] = self.latched.1;
        words[4..8].copy_from_slice(&self.w);
        words[8..12].copy_from_slice(&self.ct);
        CircuitState(words)
    }

    fn load_state(&mut self, state: &CircuitState) -> Result<(), FabricError> {
        if state.0.len() < 12 {
            return Err(FabricError::StateMismatch {
                detail: format!("twofish block circuit needs 12 state words, got {}", state.0.len()),
            });
        }
        self.phase = state.0[0];
        self.elapsed = state.0[1];
        self.latched = (state.0[2], state.0[3]);
        self.w.copy_from_slice(&state.0[4..8]);
        self.ct.copy_from_slice(&state.0[8..12]);
        Ok(())
    }

    fn state_words(&self) -> usize {
        12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_instr(c: &mut BlockCircuit, a: u32, b: u32) -> (u32, u32) {
        let mut init = true;
        let mut cycles = 0;
        loop {
            let out = c.clock(a, b, init);
            init = false;
            cycles += 1;
            if out.done {
                return (out.result, cycles);
            }
        }
    }

    #[test]
    fn five_invocations_encrypt_a_block() {
        let key = [0u8; 16];
        let mut c = BlockCircuit::new(&key);
        let tf = Twofish::new(&key);
        let pt = [0u32; 4];
        let ct_ref = tf.encrypt_block(&[0u8; 16]);
        let ct_words: Vec<u32> =
            ct_ref.chunks_exact(4).map(|x| u32::from_le_bytes([x[0], x[1], x[2], x[3]])).collect();

        let (r0, c0) = run_instr(&mut c, pt[0], pt[1]);
        assert_eq!((r0, c0), (0, 1));
        let (ct0, c1) = run_instr(&mut c, pt[2], pt[3]);
        assert_eq!(c1, ENCRYPT_LATENCY);
        assert_eq!(ct0, ct_words[0]);
        for expected in &ct_words[1..] {
            let (r, cyc) = run_instr(&mut c, 0, 0);
            assert_eq!(cyc, 1);
            assert_eq!(r, *expected);
        }
        // Phase machine wrapped: the next block starts cleanly.
        let (r, _) = run_instr(&mut c, pt[0], pt[1]);
        assert_eq!(r, 0);
    }

    #[test]
    fn interrupted_encryption_survives_swap() {
        let key = *b"interrupt-key-00";
        let mut c = BlockCircuit::new(&key);
        run_instr(&mut c, 0x1111, 0x2222);
        // Start the 20-cycle encrypting invocation, stop after 7 clocks.
        let mut init = true;
        for _ in 0..7 {
            let out = c.clock(0x3333, 0x4444, init);
            init = false;
            assert!(!out.done);
        }
        let saved = c.save_state();
        // Swap out / in: fresh instance of the same configuration.
        let mut c2 = BlockCircuit::new(&key);
        c2.load_state(&saved).expect("restore");
        // Resume with init low; completes after the remaining 13 clocks.
        let mut cycles = 0;
        let ct0 = loop {
            let out = c2.clock(0x3333, 0x4444, false);
            cycles += 1;
            if out.done {
                break out.result;
            }
        };
        assert_eq!(cycles, 13);
        // Matches an uninterrupted run.
        let mut c3 = BlockCircuit::new(&key);
        run_instr(&mut c3, 0x1111, 0x2222);
        let (expect, _) = run_instr(&mut c3, 0x3333, 0x4444);
        assert_eq!(ct0, expect);
    }
}
