//! The highest-fidelity integration test: schedule a *gate-level*
//! circuit. The alpha-blend channel netlist is compiled to a bitstream,
//! hosted in a PFU as a [`NetlistCircuit`], evicted and reloaded by the
//! CIS mid-run — and the guest's results must still match the
//! arithmetic reference, proving that the state-frame machinery carries
//! real hardware state through the scheduler.

use porsche::kernel::{KernelConfig, SpawnSpec};
use porsche::process::CircuitSpec;
use proteus::machine::{Machine, MachineConfig};
use proteus_fabric::library::{alpha_blend_channel, alpha_blend_ref};
use proteus_fabric::place::FabricDims;
use proteus_fabric::compile;
use proteus_rfu::{NetlistCircuit, RfuConfig};

fn gate_level_blend_circuit() -> NetlistCircuit {
    let netlist = alpha_blend_channel().expect("netlist");
    let compiled = compile(&netlist, FabricDims::PFU).expect("compile");
    NetlistCircuit::new(compiled.bitstream()).expect("circuit")
}

/// Guest program blending a small channel buffer with the single-channel
/// interface (`op_a` = src | alpha<<8, `op_b` = dst), then exiting with
/// a checksum.
fn blend_program(n: usize) -> (proteus_isa::Program, u32) {
    let src: Vec<u32> = (0..n).map(|i| (i as u32 * 37) & 0xFF).collect();
    let alpha: Vec<u32> = (0..n).map(|i| (i as u32 * 91 + 13) & 0xFF).collect();
    let dst: Vec<u32> = (0..n).map(|i| (i as u32 * 53 + 7) & 0xFF).collect();
    let mut source = String::from(".org 0\n");
    let mut push_words = |label: &str, data: &[u32]| {
        source.push_str(&format!("{label}:\n"));
        for w in data {
            source.push_str(&format!("    .word {w}\n"));
        }
    };
    push_words("src", &src);
    push_words("alpha", &alpha);
    push_words("dst", &dst);
    source.push_str(&format!(
        "start:\n\
         \x20   ldr r0, =src\n\
         \x20   ldr r1, =alpha\n\
         \x20   ldr r2, =dst\n\
         \x20   ldr r3, ={n}\n\
         \x20   mov r8, #0\n\
         loop:\n\
         \x20   ldr r4, [r0], #4\n\
         \x20   ldr r5, [r1], #4\n\
         \x20   orr r4, r4, r5, lsl #8\n\
         \x20   ldr r5, [r2], #4\n\
         \x20   pfu 0, r6, r4, r5\n\
         \x20   add r8, r8, r6\n\
         \x20   subs r3, r3, #1\n\
         \x20   bne loop\n\
         \x20   mov r0, r8\n\
         \x20   swi #0\n"
    ));
    let expected = src
        .iter()
        .zip(&alpha)
        .zip(&dst)
        .fold(0u32, |acc, ((&s, &a), &d)| {
            acc.wrapping_add(u32::from(alpha_blend_ref(s as u8, d as u8, a as u8)))
        });
    (proteus_isa::assemble(&source).expect("asm"), expected)
}

#[test]
fn gate_level_circuit_survives_scheduling_and_eviction() {
    let (program, expected) = blend_program(600);
    let entry = program.symbol("start").expect("start");
    // One PFU, two processes using gate-level circuits: constant
    // eviction pressure at a tiny quantum, interrupting blends mid-flight.
    let mut machine = Machine::new(MachineConfig {
        kernel: KernelConfig { quantum: 500, ..KernelConfig::default() },
        rfu: RfuConfig { pfus: 1, ..RfuConfig::default() },
    });
    let mut pids = Vec::new();
    for _ in 0..2 {
        let pid = machine
            .spawn(SpawnSpec::new(&program).entry(entry).circuit(CircuitSpec {
                cid: 0,
                circuit: Box::new(gate_level_blend_circuit()),
                software_alt: None, image: None }))
            .expect("spawn");
        pids.push(pid);
    }
    let report = machine.run(2_000_000_000).expect("run");
    assert!(report.killed.is_empty(), "{report:?}");
    for pid in pids {
        let (_, _, code) = report.exited.iter().find(|(p, _, _)| *p == pid).expect("exited");
        assert_eq!(*code, expected, "pid {pid}");
    }
    assert!(report.stats.evictions > 0, "the whole point is eviction pressure: {:?}", report.stats);
}

#[test]
fn gate_level_and_behavioral_models_agree_under_the_kernel() {
    let (program, expected) = blend_program(32);
    let entry = program.symbol("start").expect("start");
    // Behavioral 2-cycle model of the same channel blend.
    let behavioral = proteus_rfu::behavioral::FixedLatency::new("alpha_chan", 2, 16, |a, b| {
        u32::from(alpha_blend_ref((a & 0xFF) as u8, (b & 0xFF) as u8, ((a >> 8) & 0xFF) as u8))
    });
    for circuit in [
        Box::new(gate_level_blend_circuit()) as Box<dyn proteus_rfu::PfuCircuit>,
        Box::new(behavioral),
    ] {
        let mut machine = Machine::new(MachineConfig::default());
        machine
            .spawn(
                SpawnSpec::new(&program)
                    .entry(entry)
                    .circuit(CircuitSpec { cid: 0, circuit, software_alt: None, image: None }),
            )
            .expect("spawn");
        let report = machine.run(1_000_000_000).expect("run");
        assert_eq!(report.exited[0].2, expected);
    }
}
