//! Value-generation strategies.

use std::fmt::Debug;

use crate::test_runner::TestRng;

/// A recipe for producing values of one type.
///
/// Unlike upstream proptest there is no shrinking tree: a strategy is
/// just a sampler. Combinators mirror the upstream names so test code
/// is source-compatible.
pub trait Strategy: 'static {
    /// The generated type.
    type Value: Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O + 'static,
    {
        Map { source: self, map }
    }

    /// Keep only values satisfying `pred` (resamples on mismatch).
    fn prop_filter<F>(self, _whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        Filter { source: self, pred }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy(Box::new(move |rng: &mut TestRng| self.sample(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V: Debug + 'static> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O + 'static,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool + 'static,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 samples in a row");
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug + 'static> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// One arm of a [`Union`]; built by [`union_arm`] from `prop_oneof!`.
pub type UnionArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Box a strategy into a [`Union`] arm (used by `prop_oneof!`).
pub fn union_arm<S: Strategy>(strategy: S) -> UnionArm<S::Value> {
    Box::new(move |rng: &mut TestRng| strategy.sample(rng))
}

/// Uniform choice between same-typed strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<UnionArm<V>>,
}

impl<V> Union<V> {
    /// A union over the given arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<UnionArm<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: Debug + 'static> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let arm = rng.below(self.arms.len() as u64) as usize;
        (self.arms[arm])(rng)
    }
}

/// Integer ranges sample their endpoints with elevated probability —
/// the stand-in for upstream's shrinking towards simple values.
macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                match rng.below(8) {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => {
                        let span = (self.end as i128) - (self.start as i128);
                        (self.start as i128 + rng.below(span as u64) as i128) as $t
                    }
                }
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                match rng.below(8) {
                    0 => start,
                    1 => end,
                    _ => {
                        let span = (end as i128) - (start as i128) + 1;
                        (start as i128 + (rng.next_u64() as u128 % span as u128) as i128) as $t
                    }
                }
            }
        }
        impl Strategy for core::ops::RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).sample(rng)
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
    (A, B, C, D, E, F, G);
    (A, B, C, D, E, F, G, H);
    (A, B, C, D, E, F, G, H, I);
    (A, B, C, D, E, F, G, H, I, J);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_hit_their_endpoints() {
        let mut rng = TestRng::seed_from_u64(42);
        let strat = 0u16..2048;
        let mut saw_zero = false;
        let mut saw_max = false;
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!(v < 2048);
            saw_zero |= v == 0;
            saw_max |= v == 2047;
        }
        assert!(saw_zero && saw_max, "edge bias should hit both endpoints");
    }

    #[test]
    fn map_and_oneof_compose() {
        let mut rng = TestRng::seed_from_u64(1);
        let strat = crate::prop_oneof![
            (0u8..10).prop_map(|v| v as u32),
            Just(99u32),
        ];
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!(v < 10 || v == 99);
        }
    }

    #[test]
    fn signed_full_range_samples() {
        let mut rng = TestRng::seed_from_u64(3);
        let strat = -(1i32 << 22)..(1i32 << 22);
        for _ in 0..500 {
            let v = strat.sample(&mut rng);
            assert!((-(1 << 22)..(1 << 22)).contains(&v));
        }
    }
}
