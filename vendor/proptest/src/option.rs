//! `Option` strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Option<S::Value>`; see [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

/// `Some` values from `inner` three times out of four, `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let mut rng = TestRng::seed_from_u64(11);
        let strat = of(0u8..4);
        let samples: Vec<Option<u8>> = (0..100).map(|_| strat.sample(&mut rng)).collect();
        assert!(samples.iter().any(Option::is_none));
        assert!(samples.iter().any(Option::is_some));
    }
}
