//! Gate-level synthesis: a technology-independent gate IR, lowering to
//! LUT4s, and a LUT-packing optimisation pass.
//!
//! The [`crate::builder::NetlistBuilder`] API produces one LUT per
//! logical operator, which is convenient but wasteful — a real flow maps
//! logic *cones* into LUTs. This module provides the missing front end:
//!
//! 1. [`GateNetlist`] — AND/OR/XOR/NOT/MUX gates of arbitrary arity plus
//!    flip-flops, the level a hand-written HDL netlist or a simple
//!    compiler would emit;
//! 2. [`synthesize`] — lowering into the LUT4+DFF [`Netlist`] the fabric
//!    accepts;
//! 3. [`pack_luts`] — a classic single-fanout cone-packing pass: a LUT
//!    feeding exactly one other LUT is absorbed whenever the combined
//!    support still fits in four inputs. Equivalence is guaranteed by
//!    construction (truth tables are recomputed exhaustively) and checked
//!    by the property tests against random gate networks.

//!
//! # Example
//!
//! ```
//! use proteus_fabric::synth::{pack_luts, synthesize, GateNetlist};
//!
//! # fn main() -> Result<(), proteus_fabric::FabricError> {
//! let mut g = GateNetlist::new();
//! let a = g.input_bus("op_a", 4);
//! let b = g.input_bus("op_b", 4);
//! let bits: Vec<_> = a.iter().zip(&b).map(|(&x, &y)| (x, y)).collect();
//! let mut outs = Vec::new();
//! for (x, y) in bits {
//!     let n = g.and(vec![x, y]);
//!     outs.push(g.not(n)); // NAND per bit
//! }
//! g.output_bus("result", &outs);
//! let lowered = synthesize(&g)?;
//! let (packed, stats) = pack_luts(&lowered);
//! assert!(stats.luts_after <= stats.luts_before);
//! assert!(packed.check().is_ok());
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;

use crate::builder::NetlistBuilder;
use crate::error::FabricError;
use crate::netlist::{Netlist, Node, NodeId};

/// Identifier of a gate inside one [`GateNetlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GateId(pub u32);

/// A technology-independent gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Gate {
    /// One bit of a named input port.
    Input {
        /// Index into [`GateNetlist::inputs`].
        port: u16,
        /// Bit within the port.
        bit: u16,
    },
    /// Constant driver.
    Const(bool),
    /// Inverter.
    Not(GateId),
    /// N-ary AND (arity ≥ 1).
    And(Vec<GateId>),
    /// N-ary OR.
    Or(Vec<GateId>),
    /// N-ary XOR.
    Xor(Vec<GateId>),
    /// 2:1 multiplexer: `sel ? hi : lo`.
    Mux {
        /// Select line.
        sel: GateId,
        /// Value when `sel` is low.
        lo: GateId,
        /// Value when `sel` is high.
        hi: GateId,
    },
    /// D flip-flop.
    Dff {
        /// Sampled input.
        d: GateId,
        /// Configuration-time value.
        init: bool,
    },
}

/// A gate-level design: what a simple HDL front end emits.
#[derive(Debug, Clone, Default)]
pub struct GateNetlist {
    gates: Vec<Gate>,
    inputs: Vec<(String, u16)>,
    outputs: Vec<(String, Vec<GateId>)>,
}

impl GateNetlist {
    /// An empty design.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, gate: Gate) -> GateId {
        let id = GateId(self.gates.len() as u32);
        self.gates.push(gate);
        id
    }

    /// Declare an input port; returns its bit gates.
    pub fn input_bus(&mut self, name: &str, width: u16) -> Vec<GateId> {
        let port = self.inputs.len() as u16;
        self.inputs.push((name.to_string(), width));
        (0..width).map(|bit| self.push(Gate::Input { port, bit })).collect()
    }

    /// A constant bit.
    pub fn constant(&mut self, v: bool) -> GateId {
        self.push(Gate::Const(v))
    }

    /// Inverter.
    pub fn not(&mut self, a: GateId) -> GateId {
        self.push(Gate::Not(a))
    }

    /// N-ary AND.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn and(&mut self, inputs: Vec<GateId>) -> GateId {
        assert!(!inputs.is_empty(), "AND needs at least one input");
        self.push(Gate::And(inputs))
    }

    /// N-ary OR.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn or(&mut self, inputs: Vec<GateId>) -> GateId {
        assert!(!inputs.is_empty(), "OR needs at least one input");
        self.push(Gate::Or(inputs))
    }

    /// N-ary XOR.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn xor(&mut self, inputs: Vec<GateId>) -> GateId {
        assert!(!inputs.is_empty(), "XOR needs at least one input");
        self.push(Gate::Xor(inputs))
    }

    /// 2:1 mux.
    pub fn mux(&mut self, sel: GateId, lo: GateId, hi: GateId) -> GateId {
        self.push(Gate::Mux { sel, lo, hi })
    }

    /// Flip-flop.
    pub fn dff(&mut self, d: GateId, init: bool) -> GateId {
        self.push(Gate::Dff { d, init })
    }

    /// Register an output bus.
    pub fn output_bus(&mut self, name: &str, bits: &[GateId]) {
        self.outputs.push((name.to_string(), bits.to_vec()));
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the design has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Reference evaluation: one settle + clock edge. `inputs[name]` is
    /// the port value; returns the named output values *before* the edge
    /// and advances flip-flop state held in `dff_state` (keyed by gate
    /// id).
    pub fn eval(
        &self,
        inputs: &HashMap<String, u64>,
        dff_state: &mut HashMap<u32, bool>,
    ) -> HashMap<String, u64> {
        let mut values = vec![false; self.gates.len()];
        // Iterate until fixpoint (gates may be declared in any order;
        // combinational designs converge in ≤ depth passes).
        for _ in 0..self.gates.len().max(1) {
            let mut changed = false;
            for (i, g) in self.gates.iter().enumerate() {
                let v = match g {
                    Gate::Input { port, bit } => {
                        let (name, _) = &self.inputs[*port as usize];
                        inputs.get(name).copied().unwrap_or(0) >> bit & 1 == 1
                    }
                    Gate::Const(c) => *c,
                    Gate::Not(a) => !values[a.0 as usize],
                    Gate::And(xs) => xs.iter().all(|x| values[x.0 as usize]),
                    Gate::Or(xs) => xs.iter().any(|x| values[x.0 as usize]),
                    Gate::Xor(xs) => xs.iter().fold(false, |acc, x| acc ^ values[x.0 as usize]),
                    Gate::Mux { sel, lo, hi } => {
                        if values[sel.0 as usize] {
                            values[hi.0 as usize]
                        } else {
                            values[lo.0 as usize]
                        }
                    }
                    Gate::Dff { init, .. } => *dff_state.get(&(i as u32)).copied().get_or_insert(*init),
                };
                if values[i] != v {
                    values[i] = v;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let out = self
            .outputs
            .iter()
            .map(|(name, bits)| {
                let v = bits
                    .iter()
                    .enumerate()
                    .fold(0u64, |acc, (i, b)| acc | (u64::from(values[b.0 as usize]) << i));
                (name.clone(), v)
            })
            .collect();
        for (i, g) in self.gates.iter().enumerate() {
            if let Gate::Dff { d, .. } = g {
                dff_state.insert(i as u32, values[d.0 as usize]);
            }
        }
        out
    }
}

/// Lower a gate netlist into LUT4s + DFFs (no optimisation; follow with
/// [`pack_luts`]).
///
/// # Errors
///
/// Propagates [`Netlist::check`] failures (e.g. combinational loops in
/// the gate design).
pub fn synthesize(design: &GateNetlist) -> Result<Netlist, FabricError> {
    let mut b = NetlistBuilder::new();
    let mut port_nodes: Vec<Vec<NodeId>> = Vec::new();
    for (name, width) in &design.inputs {
        port_nodes.push(b.input_bus(name, *width));
    }
    let mut map: Vec<Option<NodeId>> = vec![None; design.gates.len()];
    // DFF placeholders first so feedback works.
    for (i, g) in design.gates.iter().enumerate() {
        if let Gate::Dff { init, .. } = g {
            map[i] = Some(b.dff_placeholder(*init));
        }
    }
    // Lower combinational gates until every one is mapped (worklist over
    // declaration order, repeated until fixpoint — handles any order).
    for _ in 0..design.gates.len().max(1) {
        let mut progressed = false;
        for (i, g) in design.gates.iter().enumerate() {
            if map[i].is_some() {
                continue;
            }
            let get = |id: GateId| map[id.0 as usize];
            let node = match g {
                Gate::Input { port, bit } => Some(port_nodes[*port as usize][*bit as usize]),
                Gate::Const(v) => Some(b.const_bit(*v)),
                Gate::Not(a) => get(*a).map(|n| b.not(n)),
                Gate::And(xs) => lower_nary(&mut b, xs, &map, |b, x, y| b.and2(x, y)),
                Gate::Or(xs) => lower_nary(&mut b, xs, &map, |b, x, y| b.or2(x, y)),
                Gate::Xor(xs) => lower_nary(&mut b, xs, &map, |b, x, y| b.xor2(x, y)),
                Gate::Mux { sel, lo, hi } => match (get(*sel), get(*lo), get(*hi)) {
                    (Some(s), Some(l), Some(h)) => Some(b.mux2(s, l, h)),
                    _ => None,
                },
                Gate::Dff { .. } => unreachable!("mapped above"),
            };
            if let Some(n) = node {
                map[i] = Some(n);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    // Wire DFF inputs.
    for (i, g) in design.gates.iter().enumerate() {
        if let Gate::Dff { d, .. } = g {
            let Some(dff) = map[i] else {
                // Invariant: DFF gates are allocated unconditionally in
                // the first mapping pass above.
                debug_assert!(false, "DFF gate {i} unallocated");
                return Err(FabricError::DanglingNode { node: i as u32 });
            };
            let src = map[d.0 as usize].ok_or(FabricError::DanglingNode { node: d.0 })?;
            b.set_dff_input(dff, src);
        }
    }
    for (name, bits) in &design.outputs {
        let nodes: Result<Vec<NodeId>, FabricError> = bits
            .iter()
            .map(|g| map[g.0 as usize].ok_or(FabricError::DanglingNode { node: g.0 }))
            .collect();
        b.output_bus(name, &nodes?);
    }
    b.finish()
}

fn lower_nary(
    b: &mut NetlistBuilder,
    xs: &[GateId],
    map: &[Option<NodeId>],
    f: impl Fn(&mut NetlistBuilder, NodeId, NodeId) -> NodeId,
) -> Option<NodeId> {
    let nodes: Option<Vec<NodeId>> = xs.iter().map(|x| map[x.0 as usize]).collect();
    let nodes = nodes?;
    let mut acc = nodes[0];
    for &n in &nodes[1..] {
        acc = f(b, acc, n);
    }
    Some(acc)
}

/// Statistics from a [`pack_luts`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackStats {
    /// LUTs before packing.
    pub luts_before: usize,
    /// LUTs after packing and dead-logic removal.
    pub luts_after: usize,
    /// Merge operations performed.
    pub merges: usize,
}

/// Pack single-fanout LUT chains: absorb a LUT into its lone consumer
/// whenever the merged support is ≤ 4 inputs, then sweep dead logic.
/// The result is functionally identical (truth tables are recomputed
/// exhaustively).
pub fn pack_luts(netlist: &Netlist) -> (Netlist, PackStats) {
    let mut nodes: Vec<Node> = netlist.nodes().to_vec();
    let luts_before = count_luts(&nodes);
    let mut merges = 0usize;
    loop {
        let fanout = lut_fanout(&nodes, netlist);
        let mut did = false;
        for m in 0..nodes.len() {
            let Node::Lut { inputs: m_in, truth: m_truth } = nodes[m] else { continue };
            // Find a feeding LUT whose only consumer is `m`.
            let Some(&src) = m_in.iter().find(|src| {
                matches!(nodes[src.index()], Node::Lut { .. })
                    && fanout[src.index()] == 1
                    && src.index() != m
            }) else {
                continue;
            };
            let Node::Lut { inputs: l_in, truth: l_truth } = nodes[src.index()] else { continue };
            // Combined support: L's inputs plus M's other inputs.
            let mut support: Vec<NodeId> = Vec::new();
            let l_used = used_pins(l_truth);
            for (pin, inp) in l_in.iter().enumerate() {
                if l_used[pin] && !support.contains(inp) {
                    support.push(*inp);
                }
            }
            let m_used = used_pins(m_truth);
            for (pin, inp) in m_in.iter().enumerate() {
                if m_used[pin] && *inp != src && !support.contains(inp) {
                    support.push(*inp);
                }
            }
            if support.len() > 4 {
                continue;
            }
            // Recompute the merged truth table exhaustively.
            let pad = support.first().copied().unwrap_or(src);
            let mut new_inputs = [pad; 4];
            for (i, s) in support.iter().enumerate() {
                new_inputs[i] = *s;
            }
            let mut new_truth = 0u16;
            for assign in 0..16u16 {
                let bit_of = |node: NodeId| -> bool {
                    support.iter().position(|&s| s == node).is_some_and(|p| assign >> p & 1 == 1)
                };
                let mut l_addr = 0usize;
                for (pin, inp) in l_in.iter().enumerate() {
                    if l_used[pin] && bit_of(*inp) {
                        l_addr |= 1 << pin;
                    }
                }
                let l_out = l_truth >> l_addr & 1 == 1;
                let mut m_addr = 0usize;
                for (pin, inp) in m_in.iter().enumerate() {
                    let v = if *inp == src { l_out } else { m_used[pin] && bit_of(*inp) };
                    if v {
                        m_addr |= 1 << pin;
                    }
                }
                if m_truth >> m_addr & 1 == 1 {
                    new_truth |= 1 << assign;
                }
            }
            nodes[m] = Node::Lut { inputs: new_inputs, truth: new_truth };
            merges += 1;
            did = true;
            break; // fanout counts are stale; restart the scan
        }
        if !did {
            break;
        }
    }
    let packed = sweep_dead(nodes, netlist);
    let stats = PackStats { luts_before, luts_after: packed.lut_count(), merges };
    (packed, stats)
}

/// Which pins actually influence a truth table.
fn used_pins(truth: u16) -> [bool; 4] {
    let mut used = [false; 4];
    for (pin, u) in used.iter_mut().enumerate() {
        for addr in 0..16usize {
            let other = addr ^ (1 << pin);
            if (truth >> addr & 1) != (truth >> other & 1) {
                *u = true;
                break;
            }
        }
    }
    used
}

fn count_luts(nodes: &[Node]) -> usize {
    nodes.iter().filter(|n| matches!(n, Node::Lut { .. })).count()
}

/// Fanout of each node counting only *live* uses (LUT pins that matter,
/// DFF inputs, outputs).
fn lut_fanout(nodes: &[Node], netlist: &Netlist) -> Vec<usize> {
    let mut fanout = vec![0usize; nodes.len()];
    for node in nodes {
        match node {
            Node::Lut { inputs, truth } => {
                let used = used_pins(*truth);
                for (pin, inp) in inputs.iter().enumerate() {
                    if used[pin] {
                        fanout[inp.index()] += 1;
                    }
                }
            }
            Node::Dff { d, .. } => fanout[d.index()] += 1,
            _ => {}
        }
    }
    for (_, bits) in netlist.outputs() {
        for b in bits {
            fanout[b.index()] += 1;
        }
    }
    fanout
}

/// Remove LUTs (and constants) unreachable from outputs or flip-flops,
/// rebuilding the netlist with dense ids.
fn sweep_dead(nodes: Vec<Node>, original: &Netlist) -> Netlist {
    let mut live = vec![false; nodes.len()];
    let mut stack: Vec<usize> = Vec::new();
    for (_, bits) in original.outputs() {
        for b in bits {
            stack.push(b.index());
        }
    }
    for (i, n) in nodes.iter().enumerate() {
        if matches!(n, Node::Dff { .. } | Node::Input { .. }) {
            stack.push(i);
        }
    }
    while let Some(i) = stack.pop() {
        if live[i] {
            continue;
        }
        live[i] = true;
        match &nodes[i] {
            Node::Lut { inputs, truth } => {
                let used = used_pins(*truth);
                for (pin, inp) in inputs.iter().enumerate() {
                    if used[pin] {
                        stack.push(inp.index());
                    }
                }
            }
            Node::Dff { d, .. } => stack.push(d.index()),
            _ => {}
        }
    }
    // Dead pins of live LUTs must still reference *something* valid;
    // retarget them to the node itself is not allowed (cycle), so keep
    // whatever they referenced alive too.
    loop {
        let mut grew = false;
        for (i, n) in nodes.iter().enumerate() {
            if !live[i] {
                continue;
            }
            if let Node::Lut { inputs, .. } = n {
                for inp in inputs {
                    if !live[inp.index()] {
                        live[inp.index()] = true;
                        grew = true;
                    }
                }
            }
        }
        if !grew {
            break;
        }
    }
    let mut remap = vec![NodeId(0); nodes.len()];
    let mut new_nodes = Vec::new();
    for (i, n) in nodes.iter().enumerate() {
        if live[i] {
            remap[i] = NodeId(new_nodes.len() as u32);
            new_nodes.push(*n);
        }
    }
    for n in &mut new_nodes {
        match n {
            Node::Lut { inputs, .. } => {
                for inp in inputs.iter_mut() {
                    *inp = remap[inp.index()];
                }
            }
            Node::Dff { d, .. } => *d = remap[d.index()],
            _ => {}
        }
    }
    let outputs = original
        .outputs()
        .iter()
        .map(|(name, bits)| (name.clone(), bits.iter().map(|b| remap[b.index()]).collect()))
        .collect();
    Netlist { nodes: new_nodes, inputs: original.inputs().to_vec(), outputs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::NetlistSim;

    /// A small combinational design: out = (a & b) ^ ~(c | d) per bit.
    fn sample_design(width: u16) -> GateNetlist {
        let mut g = GateNetlist::new();
        let a = g.input_bus("op_a", width);
        let b = g.input_bus("op_b", width);
        let mut outs = Vec::new();
        for i in 0..width as usize {
            let and = g.and(vec![a[i], b[i]]);
            let or = g.or(vec![a[i], b[i]]);
            let nor = g.not(or);
            let x = g.xor(vec![and, nor]);
            outs.push(x);
        }
        g.output_bus("result", &outs);
        g
    }

    fn check_equiv(design: &GateNetlist, netlist: &Netlist, samples: &[(u64, u64)]) {
        let mut sim = NetlistSim::new(netlist).expect("sim");
        for &(a, b) in samples {
            let mut inputs = HashMap::new();
            inputs.insert("op_a".to_string(), a);
            inputs.insert("op_b".to_string(), b);
            let mut dffs = HashMap::new();
            let want = design.eval(&inputs, &mut dffs)["result"];
            sim.set_input("op_a", a);
            sim.set_input("op_b", b);
            sim.settle();
            assert_eq!(sim.output("result"), want, "a={a:#x} b={b:#x}");
        }
    }

    #[test]
    fn synthesis_matches_reference() {
        let design = sample_design(8);
        let netlist = synthesize(&design).expect("synth");
        check_equiv(&design, &netlist, &[(0, 0), (0xFF, 0x0F), (0xAA, 0x55), (0x3C, 0xC3)]);
    }

    #[test]
    fn packing_reduces_luts_and_preserves_function() {
        let design = sample_design(8);
        let netlist = synthesize(&design).expect("synth");
        let (packed, stats) = pack_luts(&netlist);
        assert!(packed.check().is_ok());
        assert!(
            stats.luts_after < stats.luts_before,
            "packing should shrink {} LUTs (got {})",
            stats.luts_before,
            stats.luts_after
        );
        assert!(stats.merges > 0);
        check_equiv(&design, &packed, &[(0, 0), (0xFF, 0x0F), (0xAA, 0x55), (0x81, 0x7E)]);
    }

    #[test]
    fn sequential_designs_synthesize() {
        // A toggling register gated by op_a bit 0: d = a ? !q : q. The
        // DFF forward-references the mux (feedback); lowering resolves
        // DFFs before combinational logic, so declaration order is free.
        let mut g = GateNetlist::new();
        let a = g.input_bus("op_a", 1);
        let nq_id = GateId(g.len() as u32 + 1); // the Not added after the dff
        let mux_id = GateId(g.len() as u32 + 2);
        let q2 = g.dff(mux_id, false);
        let got_nq = g.not(q2);
        let got_mux = g.mux(a[0], q2, got_nq);
        assert_eq!(got_nq, nq_id);
        assert_eq!(got_mux, mux_id);
        g.output_bus("result", &[q2]);

        let netlist = synthesize(&g).expect("synth");
        let mut sim = NetlistSim::new(&netlist).expect("sim");
        sim.set_input("op_a", 1);
        let mut expected = false;
        for _ in 0..4 {
            sim.settle();
            assert_eq!(sim.output("result"), u64::from(expected));
            sim.clock_edge();
            expected = !expected;
        }
    }

    #[test]
    fn wide_gates_lower_correctly() {
        let mut g = GateNetlist::new();
        let a = g.input_bus("op_a", 8);
        let all = g.and(a.clone());
        let any = g.or(a.clone());
        let parity = g.xor(a);
        g.output_bus("result", &[all, any, parity]);
        let netlist = synthesize(&g).expect("synth");
        let (packed, _) = pack_luts(&netlist);
        let mut sim = NetlistSim::new(&packed).expect("sim");
        for v in [0u64, 0xFF, 0x80, 0x7F, 0xA5] {
            sim.set_input("op_a", v);
            sim.settle();
            let r = sim.output("result");
            assert_eq!(r & 1 == 1, v == 0xFF, "all({v:#x})");
            assert_eq!(r >> 1 & 1 == 1, v != 0, "any({v:#x})");
            assert_eq!(r >> 2 & 1 == 1, (v.count_ones() & 1) == 1, "parity({v:#x})");
        }
    }
}
