//! Cross-crate integration: full machines running mixed workloads.

use porsche::cis::DispatchMode;
use porsche::kernel::{KernelConfig, SpawnSpec};
use porsche::process::CircuitSpec;
use proteus::machine::{Machine, MachineConfig};
use proteus_apps::workload::{WorkloadConfig, WorkloadSpec};
use proteus_apps::AppKind;
use proteus_rfu::behavioral::FixedLatency;
use proteus_rfu::RfuConfig;

/// The paper's headline scenario writ small: all three applications at
/// once, contending for 4 PFUs, every result checksum-validated.
#[test]
fn mixed_application_workload_validates() {
    let specs: Vec<WorkloadSpec> = [
        WorkloadConfig::new(AppKind::Alpha, 128, 12),
        WorkloadConfig::new(AppKind::Twofish, 8, 12),
        WorkloadConfig::new(AppKind::Echo, 256, 12),
    ]
    .into_iter()
    .map(WorkloadSpec::build)
    .collect();

    let mut machine = Machine::new(MachineConfig {
        kernel: KernelConfig { quantum: 20_000, ..KernelConfig::default() },
        rfu: RfuConfig::default(),
    });
    // Two instances of each: 2*1 + 2*1 + 2*2 = 6 circuits on 4 PFUs.
    let mut expected = Vec::new();
    for spec in &specs {
        for _ in 0..2 {
            let pid = machine.spawn(spec.spawn_spec(false)).expect("spawn");
            expected.push((pid, spec.expected_checksum()));
        }
    }
    let report = machine.run(2_000_000_000).expect("run");
    assert!(report.killed.is_empty(), "{report:?}");
    for (pid, checksum) in expected {
        let (_, _, code) =
            report.exited.iter().find(|(p, _, _)| *p == pid).expect("process exited");
        assert_eq!(*code, checksum, "pid {pid}");
    }
    assert!(report.stats.evictions > 0, "6 circuits on 4 PFUs must contend: {:?}", report.stats);
}

/// Dispatch TLBs survive context switches because they match on the
/// (PID, CID) tuple — two processes with the same CID never collide.
#[test]
fn same_cid_different_processes_do_not_interfere() {
    let program = proteus_isa::assemble(
        "start:\n\
         \x20   ldr r4, =500\n\
         loop:\n\
         \x20   pfu 0, r2, r0, r1\n\
         \x20   add r0, r2, #1\n\
         \x20   subs r4, r4, #1\n\
         \x20   bne loop\n\
         \x20   swi #0\n",
    )
    .expect("asm");
    let entry = program.symbol("start").expect("start");
    let mut machine = Machine::new(MachineConfig {
        kernel: KernelConfig { quantum: 1_000, ..KernelConfig::default() },
        rfu: RfuConfig::default(),
    });
    // Process 1 adds 1 per custom instruction, process 2 adds 1000: if
    // dispatch ever confused the tuples, the exit codes would mix.
    let p1 = machine
        .spawn(SpawnSpec::new(&program).entry(entry).circuit(CircuitSpec {
            cid: 0,
            circuit: Box::new(FixedLatency::new("inc1", 2, 4, |a, _| a + 1)),
            software_alt: None, image: None }))
        .expect("spawn");
    let p2 = machine
        .spawn(SpawnSpec::new(&program).entry(entry).circuit(CircuitSpec {
            cid: 0,
            circuit: Box::new(FixedLatency::new("inc1000", 2, 4, |a, _| a + 1000)),
            software_alt: None, image: None }))
        .expect("spawn");
    let report = machine.run(100_000_000).expect("run");
    // Each loop iteration computes r0 = f(r0) + 1.
    let f1 = report.exited.iter().find(|(p, _, _)| *p == p1).expect("p1").2;
    let f2 = report.exited.iter().find(|(p, _, _)| *p == p2).expect("p2").2;
    assert_eq!(f1, 1000, "p1: 500 iterations of +2");
    assert_eq!(f2, 500_500, "p2: 500 iterations of +1001");
}

/// A tiny dispatch TLB forces mapping faults (§4.2) but never wrong
/// results, and mapping faults must dwarf configuration loads.
#[test]
fn tlb_thrash_is_correct_and_cheap() {
    let spec = WorkloadSpec::build(WorkloadConfig::new(AppKind::Alpha, 64, 10));
    let mut machine = Machine::new(MachineConfig {
        kernel: KernelConfig { quantum: 10_000, ..KernelConfig::default() },
        rfu: RfuConfig { tlb_capacity: 2, ..RfuConfig::default() },
    });
    for _ in 0..4 {
        machine.spawn(spec.spawn_spec(false)).expect("spawn");
    }
    let report = machine.run(2_000_000_000).expect("run");
    assert!(report.killed.is_empty());
    for (_, _, code) in &report.exited {
        assert_eq!(*code, spec.expected_checksum());
    }
    // 4 tuples on 2 TLB slots: mapping faults happen, but since all four
    // circuits stay resident there are no reloads after the first four.
    assert!(report.stats.mapping_faults > 0, "{:?}", report.stats);
    assert_eq!(report.stats.config_loads, 4, "{:?}", report.stats);
}

/// Exercising §4.3 corner: the software alternative ABI is entered from
/// arbitrary loop positions and must preserve the process's registers.
#[test]
fn software_dispatch_preserves_application_registers() {
    // r6..r9 carry sentinel values across the custom instruction; the
    // software alternative clobbers lots of registers internally.
    let program = proteus_isa::assemble(
        "start:\n\
         \x20   ldr r6, =0x61616161\n\
         \x20   ldr r7, =0x62626262\n\
         \x20   ldr r8, =0x63636363\n\
         \x20   ldr r9, =0x64646464\n\
         \x20   mov r0, #21\n\
         \x20   mov r1, #2\n\
         \x20   pfu 0, r2, r0, r1\n\
         \x20   ldr r3, =0x61616161\n\
         \x20   cmp r6, r3\n\
         \x20   bne fail\n\
         \x20   ldr r3, =0x64646464\n\
         \x20   cmp r9, r3\n\
         \x20   bne fail\n\
         \x20   mov r0, r2\n\
         \x20   swi #0\n\
         fail:\n\
         \x20   mov r0, #0\n\
         \x20   swi #0\n\
         sw_mul:\n\
         \x20   push {r0-r9}\n\
         \x20   ldop r0, a\n\
         \x20   ldop r1, b\n\
         \x20   mul r2, r0, r1\n\
         \x20   mov r6, #0\n\
         \x20   mov r7, #0\n\
         \x20   mov r8, #0\n\
         \x20   mov r9, #0\n\
         \x20   stres r2\n\
         \x20   pop {r0-r9}\n\
         \x20   retsd\n",
    )
    .expect("asm");
    let entry = program.symbol("start").expect("start");
    let sw = program.symbol("sw_mul");
    // Decoy occupies the only PFU so the instruction dispatches to
    // software.
    let decoy = proteus_isa::assemble(
        "start: ldr r2, =4000\nloop: pfu 0, r1, r0, r0\n subs r2, r2, #1\n bne loop\n mov r0, #0\n swi #0\n",
    )
    .expect("asm");
    let decoy_entry = decoy.symbol("start").expect("start");
    let mut machine = Machine::new(MachineConfig {
        kernel: KernelConfig {
            quantum: 5_000,
            mode: DispatchMode::SoftwareFallback,
            ..KernelConfig::default()
        },
        rfu: RfuConfig { pfus: 1, ..RfuConfig::default() },
    });
    machine
        .spawn(SpawnSpec::new(&decoy).entry(decoy_entry).circuit(CircuitSpec {
            cid: 0,
            circuit: Box::new(FixedLatency::new("spin", 30, 4, |a, _| a)),
            software_alt: None, image: None }))
        .expect("spawn decoy");
    let p = machine
        .spawn(SpawnSpec::new(&program).entry(entry).circuit(CircuitSpec {
            cid: 0,
            circuit: Box::new(FixedLatency::new("mul", 2, 4, |a, b| a.wrapping_mul(b))),
            software_alt: sw, image: None }))
        .expect("spawn");
    let report = machine.run(200_000_000).expect("run");
    let code = report.exited.iter().find(|(pid, _, _)| *pid == p).expect("exited").2;
    assert_eq!(code, 42, "registers must survive software dispatch");
    assert!(report.stats.software_installs >= 1, "{:?}", report.stats);
}

/// Killing a process frees its PFUs and TLB entries for the survivors.
#[test]
fn killed_process_releases_resources() {
    // This process touches an unmapped address after some circuit use.
    let bad = proteus_isa::assemble(
        "start:\n\
         \x20   mov r0, #1\n\
         \x20   pfu 0, r1, r0, r0\n\
         \x20   ldr r2, =0x0FFFFFF0\n\
         \x20   ldr r3, [r2]\n\
         \x20   swi #0\n",
    )
    .expect("asm");
    let entry = bad.symbol("start").expect("start");
    let spec = WorkloadSpec::build(WorkloadConfig::new(AppKind::Alpha, 64, 4));
    let mut machine = Machine::new(MachineConfig {
        kernel: KernelConfig { quantum: 20_000, ..KernelConfig::default() },
        rfu: RfuConfig { pfus: 1, ..RfuConfig::default() },
    });
    let killed = machine
        .spawn(SpawnSpec::new(&bad).entry(entry).circuit(CircuitSpec {
            cid: 0,
            circuit: Box::new(FixedLatency::new("id", 1, 4, |a, _| a)),
            software_alt: None, image: None }))
        .expect("spawn");
    let good = machine.spawn(spec.spawn_spec(false)).expect("spawn");
    let report = machine.run(2_000_000_000).expect("run");
    assert_eq!(report.killed, vec![killed]);
    let (_, _, code) = report.exited.iter().find(|(p, _, _)| *p == good).expect("survivor");
    assert_eq!(*code, spec.expected_checksum(), "survivor unaffected by the kill");
}

/// Regression: a tuple dispatched to software must STAY on the software
/// path even when its TLB2 entry is evicted and a PFU has freed up in
/// the meantime. Migrating it back to fresh hardware mid-protocol would
/// desynchronise stateful instructions whose shadow state lives in
/// process memory (twofish's 5-invocation phase machine). Found by the
/// full-scale dynamic-load experiment.
#[test]
fn software_dispatched_tuple_never_migrates_back_to_hardware() {
    use proteus_apps::twofish::BlockCircuit;
    use proteus_apps::workload::TWOFISH_KEY;
    // A twofish job forced onto the software path by a decoy holding the
    // single PFU; TLB capacity 1 makes every other fault evict entries;
    // the decoy exits midway, freeing the PFU — the trap.
    let tf = WorkloadSpec::build(WorkloadConfig::new(AppKind::Twofish, 24, 4));
    let decoy = proteus_isa::assemble(
        "start: ldr r2, =1500
loop: pfu 0, r1, r0, r0
 subs r2, r2, #1
 bne loop
 mov r0, #0
 swi #0
",
    )
    .expect("asm");
    let decoy_entry = decoy.symbol("start").expect("start");
    let mut machine = Machine::new(MachineConfig {
        kernel: KernelConfig {
            quantum: 5_000,
            mode: DispatchMode::SoftwareFallback,
            ..KernelConfig::default()
        },
        rfu: RfuConfig { pfus: 1, tlb_capacity: 1, ..RfuConfig::default() },
    });
    machine
        .spawn(SpawnSpec::new(&decoy).entry(decoy_entry).circuit(CircuitSpec {
            cid: 0,
            circuit: Box::new(FixedLatency::new("spin", 30, 4, |a, _| a)),
            software_alt: None,
            image: None,
        }))
        .expect("spawn decoy");
    let tf_pid = machine.spawn(tf.spawn_spec(true)).expect("spawn twofish");
    // Sanity: the block circuit would be loadable if the kernel
    // (incorrectly) migrated back to hardware.
    let _ = BlockCircuit::new(&TWOFISH_KEY);
    let report = machine.run(5_000_000_000).expect("run");
    assert!(report.killed.is_empty(), "{report:?}");
    let (_, _, code) = report.exited.iter().find(|(p, _, _)| *p == tf_pid).expect("exited");
    assert_eq!(*code, tf.expected_checksum(), "stateful soft dispatch must stay coherent");
    assert!(report.stats.software_installs >= 1, "{:?}", report.stats);
}

/// The kernel's event trace records a coherent timeline: spawn before
/// dispatch, fault before its resolution, exit last.
#[test]
fn event_trace_orders_the_management_story() {
    let spec = WorkloadSpec::build(WorkloadConfig::new(AppKind::Alpha, 64, 6));
    let mut machine = Machine::new(MachineConfig {
        kernel: KernelConfig { quantum: 10_000, trace_capacity: 4096, ..KernelConfig::default() },
        rfu: RfuConfig { pfus: 1, ..RfuConfig::default() },
    });
    for _ in 0..2 {
        machine.spawn(spec.spawn_spec(false)).expect("spawn");
    }
    machine.run(2_000_000_000).expect("run");
    let events = machine.kernel().trace().snapshot();
    assert!(!events.is_empty());
    // Cycles are monotonically non-decreasing.
    for pair in events.windows(2) {
        assert!(pair[0].0 <= pair[1].0, "{pair:?}");
    }
    use porsche::trace::Event;
    let idx_of = |pred: &dyn Fn(&Event) -> bool| events.iter().position(|(_, _, e)| pred(e));
    let first_spawn = idx_of(&|e| matches!(e, Event::Spawn { .. })).expect("spawn");
    let first_fault = idx_of(&|e| matches!(e, Event::Fault { .. })).expect("fault");
    let first_load = idx_of(&|e| matches!(e, Event::ConfigLoad { .. })).expect("load");
    let first_exit = idx_of(&|e| matches!(e, Event::Exit { .. })).expect("exit");
    assert!(first_spawn < first_fault && first_fault < first_load && first_load < first_exit);
    // Two processes fighting over one PFU must show evictions in the
    // timeline, and every fault precedes some resolution event.
    assert!(events.iter().any(|(_, _, e)| matches!(e, Event::Eviction { .. })));
    let text = machine.kernel().trace().to_text();
    assert!(text.contains("load (1, 0)"));
    assert!(text.contains("exit"));
}

/// Guest console output works through the kernel syscall layer.
#[test]
fn console_hello_world() {
    let mut source = String::from("start:\n");
    for byte in b"hello, proteus\n" {
        source.push_str(&format!("    mov r0, #{byte}\n    swi #2\n"));
    }
    source.push_str("    mov r0, #0\n    swi #0\n");
    let program = proteus_isa::assemble(&source).expect("asm");
    let entry = program.symbol("start").expect("start");
    let mut machine = Machine::new(MachineConfig::default());
    let pid = machine.spawn(SpawnSpec::new(&program).entry(entry)).expect("spawn");
    machine.run(10_000_000).expect("run");
    assert_eq!(machine.kernel().console_of(pid), Some(b"hello, proteus\n".as_slice()));
}
