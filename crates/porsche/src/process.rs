//! Process control blocks and circuit registration records.

use proteus_cpu::cpu::Context;
use proteus_cpu::Memory;
use proteus_rfu::{PfuCircuit, PfuIndex};

/// A process identifier. PIDs start at 1; 0 is reserved (never a valid
/// TLB key owner).
pub type Pid = u32;

/// Lifecycle state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Runnable (in the ready queue or currently running).
    Ready,
    /// Called `swi #0`.
    Exited {
        /// Exit code from `r0`.
        code: u32,
    },
    /// Terminated by the kernel (illegal instruction, bad memory access,
    /// unregistered CID, runaway circuit).
    Killed,
}

impl ProcState {
    /// Whether the process still competes for the CPU.
    pub fn is_live(self) -> bool {
        matches!(self, ProcState::Ready)
    }
}

/// A custom instruction an application registers with the OS: the
/// hardware description (here: the circuit instance standing in for the
/// bitstream) and optionally "a software alternative to the instruction"
/// (§2).
pub struct CircuitSpec {
    /// Process-local Circuit ID.
    pub cid: u8,
    /// The hardware implementation.
    pub circuit: Box<dyn PfuCircuit>,
    /// Entry address of the software alternative, if provided.
    pub software_alt: Option<u32>,
    /// Configuration image identity: circuits with equal `image` share
    /// identical *static* configurations, so the CIS may host them in
    /// one PFU and hand over by swapping state frames only (§4.2's
    /// multiple-tuples-per-circuit; `None` = never shareable).
    pub image: Option<u64>,
}

impl std::fmt::Debug for CircuitSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CircuitSpec")
            .field("cid", &self.cid)
            .field("software_alt", &self.software_alt)
            .finish_non_exhaustive()
    }
}

/// The CIS's registration record for one `(process, CID)`.
pub struct Registered {
    /// The circuit instance when *not* resident on the array (its state
    /// frames travel inside). `None` while loaded into a PFU.
    pub instance: Option<Box<dyn PfuCircuit>>,
    /// Saved PFU status bit (init/done feedback, §4.4) captured when the
    /// circuit was swapped out mid-instruction.
    pub status: bool,
    /// Which PFU currently hosts the circuit.
    pub loaded_at: Option<PfuIndex>,
    /// Software alternative address, if registered.
    pub software_alt: Option<u32>,
    /// Static configuration size (bytes) — cached for cost accounting.
    pub static_bytes: usize,
    /// State-frame size (words) — cached for cost accounting.
    pub state_words: usize,
    /// Shared-configuration image identity (see [`CircuitSpec::image`]).
    pub image: Option<u64>,
    /// Whether this tuple has been dispatched to its software
    /// alternative. Once set, the CIS keeps the tuple on the software
    /// path: a stateful instruction may hold shadow state in process
    /// memory mid-protocol, so silently migrating it back to a fresh
    /// hardware instance would desynchronise it.
    pub soft_active: bool,
}

impl std::fmt::Debug for Registered {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registered")
            .field("loaded_at", &self.loaded_at)
            .field("software_alt", &self.software_alt)
            .field("status", &self.status)
            .finish_non_exhaustive()
    }
}

impl Registered {
    /// Record for a freshly registered circuit.
    pub fn new(circuit: Box<dyn PfuCircuit>, software_alt: Option<u32>) -> Self {
        Self::with_image(circuit, software_alt, None)
    }

    /// Record with a shared-configuration image identity.
    pub fn with_image(
        circuit: Box<dyn PfuCircuit>,
        software_alt: Option<u32>,
        image: Option<u64>,
    ) -> Self {
        let static_bytes = circuit.static_config_bytes();
        let state_words = circuit.state_words();
        Self {
            instance: Some(circuit),
            status: true,
            loaded_at: None,
            software_alt,
            static_bytes,
            state_words,
            image,
            soft_active: false,
        }
    }
}

/// A process control block.
#[derive(Debug)]
pub struct Process {
    /// Process ID.
    pub pid: Pid,
    /// Saved core registers + CPSR.
    pub ctx: Context,
    /// Private flat address space.
    pub mem: Memory,
    /// Saved RFU register file.
    pub rfu_regs: [u32; 16],
    /// Saved software-dispatch operand block (fields 0–4).
    pub operand_block: [u32; 5],
    /// Lifecycle state.
    pub state: ProcState,
    /// Registered custom instructions by CID.
    pub circuits: std::collections::BTreeMap<u8, Registered>,
    /// Circuits handed to the process at spawn for later `swi #3`
    /// registration (index = `r1`).
    pub circuit_table: Vec<Option<CircuitSpec>>,
    /// Cycle at which the process left the Ready state.
    pub finish_cycle: Option<u64>,
    /// Bytes written via the `putc` syscall.
    pub console: Vec<u8>,
}

impl Process {
    /// Whether the process still competes for the CPU.
    pub fn is_live(&self) -> bool {
        self.state.is_live()
    }
}
