//! Property tests over the Twofish implementation and its hardware
//! circuit model.

use proptest::prelude::*;
use proteus_apps::twofish::{BlockCircuit, Twofish};
use proteus_rfu::PfuCircuit;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn decrypt_inverts_encrypt(key in any::<[u8; 16]>(), pt in any::<[u8; 16]>()) {
        let tf = Twofish::new(&key);
        prop_assert_eq!(tf.decrypt_block(&tf.encrypt_block(&pt)), pt);
    }

    #[test]
    fn encryption_is_a_permutation(key in any::<[u8; 16]>(), a in any::<[u8; 16]>(), b in any::<[u8; 16]>()) {
        prop_assume!(a != b);
        let tf = Twofish::new(&key);
        prop_assert_ne!(tf.encrypt_block(&a), tf.encrypt_block(&b));
    }

    #[test]
    fn ecb_stream_matches_blockwise(key in any::<[u8; 16]>(), blocks in proptest::collection::vec(any::<[u8; 16]>(), 1..6)) {
        let tf = Twofish::new(&key);
        let data: Vec<u8> = blocks.iter().flatten().copied().collect();
        let stream = tf.encrypt_ecb(&data);
        for (i, block) in blocks.iter().enumerate() {
            let ct = tf.encrypt_block(block);
            prop_assert_eq!(&stream[16 * i..16 * (i + 1)], ct.as_slice());
        }
    }

    /// The phase-machine circuit computes exactly what the cipher does,
    /// block after block.
    #[test]
    fn block_circuit_matches_cipher(key in any::<[u8; 16]>(), blocks in proptest::collection::vec(any::<[u32; 4]>(), 1..5)) {
        let tf = Twofish::new(&key);
        let mut circuit = BlockCircuit::new(&key);
        let run = |c: &mut BlockCircuit, a: u32, b: u32| {
            let mut init = true;
            loop {
                let out = c.clock(a, b, init);
                init = false;
                if out.done {
                    return out.result;
                }
            }
        };
        for w in &blocks {
            let mut block = [0u8; 16];
            for (i, word) in w.iter().enumerate() {
                block[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
            }
            let ct = tf.encrypt_block(&block);
            let expect: Vec<u32> =
                ct.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
            run(&mut circuit, w[0], w[1]);
            let ct0 = run(&mut circuit, w[2], w[3]);
            prop_assert_eq!(ct0, expect[0]);
            for e in &expect[1..] {
                prop_assert_eq!(run(&mut circuit, 0, 0), *e);
            }
        }
    }

    /// Circuit state can be saved/restored at any phase boundary without
    /// corrupting the stream.
    #[test]
    fn block_circuit_state_roundtrips(key in any::<[u8; 16]>(), w in any::<[u32; 4]>(), cut in 0usize..5) {
        let run = |c: &mut BlockCircuit, a: u32, b: u32| {
            let mut init = true;
            loop {
                let out = c.clock(a, b, init);
                init = false;
                if out.done {
                    return out.result;
                }
            }
        };
        let invocations = [(w[0], w[1]), (w[2], w[3]), (0, 0), (0, 0), (0, 0)];
        // Reference: uninterrupted.
        let mut reference = BlockCircuit::new(&key);
        let expect: Vec<u32> = invocations.iter().map(|&(a, b)| run(&mut reference, a, b)).collect();
        // Cut: save/transfer state to a fresh instance mid-protocol.
        let mut first = BlockCircuit::new(&key);
        let mut got = Vec::new();
        for &(a, b) in &invocations[..cut] {
            got.push(run(&mut first, a, b));
        }
        let saved = first.save_state();
        let mut second = BlockCircuit::new(&key);
        second.load_state(&saved).expect("restore");
        for &(a, b) in &invocations[cut..] {
            got.push(run(&mut second, a, b));
        }
        prop_assert_eq!(got, expect);
    }

    /// Alpha blend reference is bounded by its inputs for equal channels.
    #[test]
    fn alpha_blend_is_bounded(a in any::<u8>(), b in any::<u8>(), alpha in any::<u8>()) {
        let out = proteus_fabric::library::alpha_blend_ref(a, b, alpha);
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(out >= lo && out <= hi, "blend({a},{b},{alpha}) = {out} outside [{lo},{hi}]");
    }

    /// Echo reference: silence in, silence out; gain 0 is identity.
    #[test]
    fn echo_identities(input in proptest::collection::vec(0u32..0x8000, 1..64), delay in 1usize..16) {
        prop_assume!(delay < input.len());
        let out = proteus_apps::echo::echo_ref(&input, delay, 0);
        prop_assert_eq!(out, input);
    }
}
