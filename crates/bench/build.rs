//! Capture the compiler version at build time so benchmark records and
//! `summary.json` can state what produced the binary (throughput numbers
//! are only comparable across PRs with the toolchain pinned down).

use std::process::Command;

fn main() {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".into());
    let version = Command::new(&rustc)
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into());
    println!("cargo:rustc-env=PROTEUS_RUSTC_VERSION={version}");
}
