//! Property tests over the fabric: circuits built from the builder
//! library must compute exactly their Rust semantics after the full
//! place → encode → serialise → deserialise → decode → simulate chain.

use proptest::prelude::*;
use proteus_fabric::builder::NetlistBuilder;
use proteus_fabric::place::FabricDims;
use proteus_fabric::{compile, Bitstream, Device, Netlist, NodeId};

fn build_pfu_circuit(
    f: impl FnOnce(&mut NetlistBuilder, Vec<NodeId>, Vec<NodeId>) -> Vec<NodeId>,
) -> Netlist {
    let mut b = NetlistBuilder::new();
    let a = b.input_bus("op_a", 32);
    let c = b.input_bus("op_b", 32);
    let out = f(&mut b, a, c);
    let out32 = b.resize(&out, 32);
    b.output_bus("result", &out32);
    let one = b.const_bit(true);
    b.output_bit("done", one);
    b.finish().expect("netlist")
}

/// Compile + serialise + reload, then run on the device.
fn through_bitstream(netlist: &Netlist) -> Device {
    let compiled = compile(netlist, FabricDims::new(64, 64)).expect("compile");
    let words = compiled.bitstream().to_words();
    let reloaded = Bitstream::from_words(&words).expect("deserialise");
    let mut dev = Device::new(FabricDims::new(64, 64));
    dev.load(&reloaded).expect("load");
    dev
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn adder_semantics_hold(a in any::<u32>(), b in any::<u32>()) {
        let netlist = build_pfu_circuit(|bld, x, y| bld.add(&x, &y));
        let mut dev = through_bitstream(&netlist);
        let (r, _) = dev.run_instruction(a, b, 4).expect("run");
        prop_assert_eq!(r, a.wrapping_add(b));
    }

    #[test]
    fn subtractor_semantics_hold(a in any::<u32>(), b in any::<u32>()) {
        let netlist = build_pfu_circuit(|bld, x, y| bld.sub(&x, &y));
        let mut dev = through_bitstream(&netlist);
        let (r, _) = dev.run_instruction(a, b, 4).expect("run");
        prop_assert_eq!(r, a.wrapping_sub(b));
    }

    #[test]
    fn comparator_semantics_hold(a in any::<u32>(), b in any::<u32>()) {
        let netlist = build_pfu_circuit(|bld, x, y| {
            let lt = bld.less_than(&x, &y);
            let eq = bld.equal(&x, &y);
            vec![lt, eq]
        });
        let mut dev = through_bitstream(&netlist);
        let (r, _) = dev.run_instruction(a, b, 4).expect("run");
        prop_assert_eq!(r & 1 == 1, a < b);
        prop_assert_eq!(r >> 1 & 1 == 1, a == b);
    }

    #[test]
    fn multiplier_semantics_hold(a in any::<u16>(), b in any::<u16>()) {
        let netlist = build_pfu_circuit(|bld, x, y| bld.mul(&x[..16], &y[..16]));
        let mut dev = through_bitstream(&netlist);
        let (r, _) = dev.run_instruction(u32::from(a), u32::from(b), 4).expect("run");
        prop_assert_eq!(r, u32::from(a) * u32::from(b));
    }

    #[test]
    fn sat_add_semantics_hold(a in any::<u8>(), b in any::<u8>()) {
        let netlist = build_pfu_circuit(|bld, x, y| bld.sat_add(&x[..8], &y[..8]));
        let mut dev = through_bitstream(&netlist);
        let (r, _) = dev.run_instruction(u32::from(a), u32::from(b), 4).expect("run");
        prop_assert_eq!(r as u8, a.saturating_add(b));
    }

    #[test]
    fn popcount_semantics_hold(a in any::<u32>()) {
        let netlist = build_pfu_circuit(|bld, x, _| bld.popcount(&x));
        let mut dev = through_bitstream(&netlist);
        let (r, _) = dev.run_instruction(a, 0, 4).expect("run");
        prop_assert_eq!(r, a.count_ones());
    }

    /// Bitstream word serialisation round-trips for any compiled circuit.
    #[test]
    fn bitstream_words_roundtrip(width in 1u16..16, shift in 0usize..8) {
        let mut b = NetlistBuilder::new();
        let a = b.input_bus("op_a", 32);
        let c = b.input_bus("op_b", 32);
        let x = b.xor_bus(&a[..width as usize], &c[..width as usize]);
        let sh = b.shl_const(&x, shift);
        let out = b.resize(&sh, 32);
        b.output_bus("result", &out);
        let one = b.const_bit(true);
        b.output_bit("done", one);
        let netlist = b.finish().expect("netlist");
        let compiled = compile(&netlist, FabricDims::PFU).expect("compile");
        let words = compiled.bitstream().to_words();
        let back = Bitstream::from_words(&words).expect("decode");
        prop_assert_eq!(&back, compiled.bitstream());
    }

    /// Accumulator state frames survive arbitrary save/restore points.
    #[test]
    fn state_frames_replay(adds in proptest::collection::vec(any::<u32>(), 1..12), cut in 0usize..11) {
        let netlist = proteus_fabric::library::accumulator32().expect("netlist");
        let compiled = compile(&netlist, FabricDims::PFU).expect("compile");
        let mut dev = Device::new(FabricDims::PFU);
        dev.load(compiled.bitstream()).expect("load");
        let cut = cut.min(adds.len() - 1);
        let mut total = 0u32;
        for &v in &adds[..cut] {
            total = total.wrapping_add(v);
            dev.run_instruction(v, 0, 4).expect("run");
        }
        let saved = dev.save_state().expect("save");
        // Trash the device with a fresh configuration, then restore.
        dev.load(compiled.bitstream()).expect("reload");
        dev.load_state(&saved).expect("restore");
        for &v in &adds[cut..] {
            total = total.wrapping_add(v);
            let (r, _) = dev.run_instruction(v, 0, 4).expect("run");
            prop_assert_eq!(r, total);
        }
    }
}
