//! The kernel proper: process table, pre-emptive round-robin scheduler,
//! system calls, and the machine run loop.

use std::collections::{BTreeMap, VecDeque};
use std::error::Error;
use std::fmt;

use proteus_cpu::cpu::{Context, Stop};
use proteus_cpu::{Coprocessor, Cpu, MemError, Memory};
use proteus_isa::Program;
use proteus_rfu::{Rfu, TupleKey};

use crate::cis::{Cis, DispatchMode, FaultResolution};
use crate::costs::CostModel;
use crate::fault::{FaultPlan, FaultUnit, RecoveryPolicy};
use crate::policy::{PolicyKind, ReplacementPolicy};
use crate::probe::{AttributedLedger, Callsite, CycleLedger, Event, EventSink, Probe, Tag};
use crate::process::{CircuitSpec, Pid, ProcState, Process, Registered};
use crate::stats::KernelStats;
use crate::trace::Trace;

/// `swi` numbers understood by POrSCHE.
pub mod swi {
    /// Terminate the calling process; `r0` is the exit code.
    pub const EXIT: u32 = 0;
    /// Surrender the rest of the quantum.
    pub const YIELD: u32 = 1;
    /// Append `r0 & 0xFF` to the process console.
    pub const PUTC: u32 = 2;
    /// Register custom instruction `r0` (CID) from slot `r1` of the
    /// spawn-time circuit table, with software alternative at `r2`
    /// (0 = none).
    pub const REGISTER: u32 = 3;
    /// Return the caller's PID in `r0`.
    pub const GETPID: u32 = 4;
}

/// Kernel configuration.
#[derive(Debug)]
pub struct KernelConfig {
    /// Scheduling quantum in cycles (paper: 10 ms and 1 ms; at the
    /// DESIGN.md 100 MHz clock those are 1 000 000 and 100 000 cycles).
    pub quantum: u64,
    /// Management cycle costs.
    pub costs: CostModel,
    /// PFU replacement policy.
    pub policy: PolicyKind,
    /// Contention resolution mode.
    pub mode: DispatchMode,
    /// Default per-process memory size in bytes.
    pub default_mem: u32,
    /// Event-trace capacity: keep at most this many timeline events
    /// (see [`crate::trace::Trace`]); 0 disables tracing.
    pub trace_capacity: usize,
    /// Enable §4.2 circuit sharing: processes registering circuits with
    /// the same configuration image share a PFU via state-frame swaps.
    /// The paper's experiments run with this off.
    pub share_circuits: bool,
    /// Minimum run time guaranteed after a custom-instruction fault is
    /// resolved. Without it, a quantum shorter than the configuration
    /// load time livelocks under contention: every process spends its
    /// whole quantum inside the fault handler, is preempted before
    /// reissuing, and finds its circuit evicted when it runs again. The
    /// paper's quanta (1 ms / 10 ms) dwarf the 54 KB load so it never
    /// sees this; the guarantee only matters for aggressive quanta.
    pub post_fault_grace: u64,
    /// Fault-injection plan (SEU arrivals, transit errors, a stuck
    /// slot, scrub cadence); `None` simulates a fault-free machine.
    pub faults: Option<FaultPlan>,
    /// How far the fault handler goes to keep a faulting custom
    /// instruction alive (retry → software failover → quarantine).
    pub recovery: RecoveryPolicy,
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self {
            quantum: 1_000_000,
            costs: CostModel::default(),
            policy: PolicyKind::RoundRobin,
            mode: DispatchMode::HardwareOnly,
            default_mem: 1 << 20,
            trace_capacity: 0,
            share_circuits: false,
            post_fault_grace: 2_000,
            faults: None,
            recovery: RecoveryPolicy::default(),
        }
    }
}

/// Everything needed to start a process.
pub struct SpawnSpec {
    words: Vec<u32>,
    origin: u32,
    entry: u32,
    mem_size: u32,
    circuits: Vec<CircuitSpec>,
    circuit_table: Vec<Option<CircuitSpec>>,
}

impl fmt::Debug for SpawnSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpawnSpec")
            .field("origin", &self.origin)
            .field("entry", &self.entry)
            .field("mem_size", &self.mem_size)
            .field("circuits", &self.circuits.len())
            .finish_non_exhaustive()
    }
}

impl SpawnSpec {
    /// Spawn `program` with defaults: entry at the program origin, the
    /// kernel's default memory size, no circuits.
    pub fn new(program: &Program) -> Self {
        Self {
            words: program.words().to_vec(),
            origin: program.origin(),
            entry: program.origin(),
            mem_size: 0, // 0 = kernel default
            circuits: Vec::new(),
            circuit_table: Vec::new(),
        }
    }

    /// Override the entry point.
    pub fn entry(mut self, entry: u32) -> Self {
        self.entry = entry;
        self
    }

    /// Override the memory size (bytes, word-aligned).
    pub fn mem_size(mut self, bytes: u32) -> Self {
        self.mem_size = bytes;
        self
    }

    /// Register a custom instruction at spawn time.
    pub fn circuit(mut self, spec: CircuitSpec) -> Self {
        self.circuits.push(spec);
        self
    }

    /// Provide a circuit for later guest-side `swi #3` registration; the
    /// returned index goes in `r1`.
    pub fn table_circuit(mut self, spec: CircuitSpec) -> (Self, u32) {
        self.circuit_table.push(Some(spec));
        let idx = self.circuit_table.len() as u32 - 1;
        (self, idx)
    }
}

/// Kernel-level failure.
#[derive(Debug)]
pub enum KernelError {
    /// The run hit the caller's cycle limit with live processes left.
    CycleLimit {
        /// Cycles consumed.
        cycles: u64,
        /// Processes still live.
        live: usize,
    },
    /// A spawn could not fit the program into process memory.
    Spawn(MemError),
    /// Two circuits registered under one CID.
    DuplicateCid {
        /// Offending process.
        pid: Pid,
        /// Offending CID.
        cid: u8,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::CycleLimit { cycles, live } => {
                write!(f, "cycle limit reached after {cycles} cycles with {live} live processes")
            }
            KernelError::Spawn(e) => write!(f, "spawn failed: {e}"),
            KernelError::DuplicateCid { pid, cid } => {
                write!(f, "process {pid} registered CID {cid} twice")
            }
        }
    }
}

impl Error for KernelError {}

impl From<MemError> for KernelError {
    fn from(e: MemError) -> Self {
        KernelError::Spawn(e)
    }
}

/// Result of a completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// `(pid, finish_cycle, exit_code)` for every exited process.
    pub exited: Vec<(Pid, u64, u32)>,
    /// Processes the kernel terminated.
    pub killed: Vec<Pid>,
    /// Cycle at which the last process finished.
    pub makespan: u64,
    /// Management statistics.
    pub stats: KernelStats,
    /// Where every simulated cycle went (categories sum to the clock).
    pub ledger: CycleLedger,
    /// The same cycles sliced per-process × per-callsite; refolds to
    /// `ledger` exactly.
    pub attributed: AttributedLedger,
}

impl RunReport {
    /// Finish cycle of process `pid`, if it exited.
    pub fn finish_of(&self, pid: Pid) -> Option<u64> {
        self.exited.iter().find(|(p, _, _)| *p == pid).map(|(_, c, _)| *c)
    }
}

/// The POrSCHE kernel.
#[derive(Debug)]
pub struct Kernel {
    config: KernelConfig,
    procs: BTreeMap<Pid, Process>,
    ready: VecDeque<Pid>,
    current: Option<Pid>,
    next_pid: Pid,
    cis: Option<Cis>,
    policy: Box<dyn ReplacementPolicy>,
    probe: Probe,
    quantum_end: u64,
    faults: Option<FaultUnit>,
}

impl Kernel {
    /// A kernel with no processes.
    pub fn new(config: KernelConfig) -> Self {
        let policy = config.policy.build();
        let probe = Probe::new(config.trace_capacity);
        let faults = config.faults.map(FaultUnit::new);
        Self {
            config,
            procs: BTreeMap::new(),
            ready: VecDeque::new(),
            current: None,
            next_pid: 1,
            cis: None,
            policy,
            probe,
            quantum_end: 0,
            faults,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// Create a process.
    ///
    /// # Errors
    ///
    /// [`KernelError::Spawn`] if the program does not fit in the
    /// process's memory; [`KernelError::DuplicateCid`] on CID collisions.
    pub fn spawn(&mut self, spec: SpawnSpec) -> Result<Pid, KernelError> {
        self.spawn_at(spec, 0)
    }

    /// Create a process, stamping its [`Event::Spawn`] at simulated
    /// cycle `at` — the arrival time for dynamic workloads, so a
    /// spawn→exit span in the event stream equals the job's turnaround.
    ///
    /// # Errors
    ///
    /// As for [`Kernel::spawn`].
    pub fn spawn_at(&mut self, spec: SpawnSpec, at: u64) -> Result<Pid, KernelError> {
        let pid = self.next_pid;
        self.next_pid += 1;
        let mem_size = if spec.mem_size == 0 { self.config.default_mem } else { spec.mem_size };
        let mut mem = Memory::new(mem_size);
        let mut addr = spec.origin;
        for &w in &spec.words {
            mem.write_word(addr, w)?;
            addr += 4;
        }
        let mut ctx = Context::default();
        ctx.regs[13] = mem_size; // full descending stack at the top
        ctx.regs[15] = spec.entry;
        let mut circuits = BTreeMap::new();
        for c in spec.circuits {
            let reg = Registered::with_image(c.circuit, c.software_alt, c.image);
            if circuits.insert(c.cid, reg).is_some() {
                return Err(KernelError::DuplicateCid { pid, cid: 0 });
            }
        }
        self.procs.insert(
            pid,
            Process {
                pid,
                ctx,
                mem,
                rfu_regs: [0; 16],
                operand_block: [0; 5],
                state: ProcState::Ready,
                circuits,
                circuit_table: spec.circuit_table,
                finish_cycle: None,
                console: Vec::new(),
            },
        );
        self.ready.push_back(pid);
        self.probe.emit(at, Tag::new(pid, Callsite::ContextSwitch), Event::Spawn { pid });
        Ok(pid)
    }

    /// Console output of a process (bytes written via `swi #2`).
    pub fn console_of(&self, pid: Pid) -> Option<&[u8]> {
        self.procs.get(&pid).map(|p| p.console.as_slice())
    }

    /// Statistics gathered so far (a fold over the probe stream).
    pub fn stats(&self) -> &KernelStats {
        self.probe.stats()
    }

    /// The cycle-attribution ledger gathered so far.
    pub fn ledger(&self) -> &CycleLedger {
        self.probe.ledger()
    }

    /// The per-process × per-callsite attribution matrix gathered so
    /// far.
    pub fn attributed(&self) -> &AttributedLedger {
        self.probe.attributed()
    }

    /// The recorded event timeline (empty unless
    /// [`KernelConfig::trace_capacity`] was set).
    pub fn trace(&self) -> &Trace {
        self.probe.trace()
    }

    /// Attach an extra [`EventSink`] to the instrumentation bus; it
    /// observes every event emitted from now on.
    pub fn add_sink(&mut self, sink: Box<dyn EventSink>) {
        self.probe.add_sink(sink);
    }

    /// Record `cycles` of externally-imposed idle time ending at `at`
    /// (the embedder advances the clock; the kernel attributes it).
    pub fn note_idle(&mut self, at: u64, cycles: u64) {
        if cycles > 0 {
            self.probe.idle_span(at, cycles);
        }
    }

    fn live_count(&self) -> usize {
        self.procs.values().filter(|p| p.is_live()).count()
    }

    fn save_current(&mut self, cpu: &Cpu, rfu: &Rfu) {
        if let Some(pid) = self.current {
            if let Some(p) = self.procs.get_mut(&pid) {
                p.ctx = cpu.save_context();
                p.rfu_regs = rfu.regs().save();
                for i in 0..5u8 {
                    p.operand_block[i as usize] = rfu.read_operand_field(i);
                }
            }
        }
    }

    fn restore(&mut self, pid: Pid, cpu: &mut Cpu, rfu: &mut Rfu) {
        let Some(p) = self.procs.get(&pid) else {
            // The ready queue only ever holds spawned PIDs.
            debug_assert!(false, "restoring unknown process {pid}");
            return;
        };
        cpu.restore_context(&p.ctx);
        rfu.regs_mut().restore(p.rfu_regs);
        for i in 0..5u8 {
            rfu.write_operand_field(i, p.operand_block[i as usize]);
        }
        // The processor's PID register (§4.2), by convention RFU r15.
        rfu.regs_mut().write(15, pid);
        self.current = Some(pid);
        self.quantum_end = cpu.cycles() + self.config.quantum;
    }

    /// Attribute a guest execution span that started at `span_start`,
    /// splitting it into user, custom-execute and software-dispatch
    /// cycles using the CPU's execution mix and the RFU's dispatch
    /// counters (both drained per span) — O(1) work per quantum. Goes
    /// through [`Probe::compute_span`], which only materialises an
    /// [`Event::Compute`] when an observer beyond the built-in folds is
    /// attached.
    fn attribute_span(&mut self, pid: Pid, span_start: u64, cpu: &mut Cpu, rfu: &mut Rfu) {
        let mix = cpu.take_exec_mix();
        let counters = rfu.take_dispatch_counters();
        let span = cpu.cycles() - span_start;
        if span == 0 {
            return;
        }
        debug_assert!(mix.custom + mix.soft_dispatch <= span, "mix exceeds span");
        let user = span.saturating_sub(mix.custom + mix.soft_dispatch);
        self.probe.compute_span(
            cpu.cycles(),
            pid,
            user,
            mix.custom,
            mix.soft_dispatch,
            counters.hw_dispatches,
            counters.sw_dispatches,
        );
    }

    /// Apply every environmental fault due at the current clock: the
    /// stuck-at onset, SEU strikes on configuration SRAM, and periodic
    /// scrub passes. No-op without a fault plan.
    fn service_faults(&mut self, cpu: &mut Cpu, rfu: &mut Rfu) {
        let Some(fu) = self.faults.as_mut() else { return };
        let now = cpu.cycles();
        if let Some(pfu) = fu.take_due_stuck(now) {
            if pfu < rfu.pfus().len() {
                rfu.pfus_mut().health_mut(pfu).stuck_done = true;
            }
        }
        for pfu in fu.take_due_seus(now, rfu.pfus().len()) {
            self.probe.emit(now, Tag::kernel(Callsite::Scrub), Event::SeuStrike { pfu });
            // A strike on an empty slot damages SRAM the next load
            // rewrites anyway; only resident configurations suffer.
            if rfu.pfus().is_loaded(pfu) {
                rfu.pfus_mut().health_mut(pfu).config_corrupt = true;
            }
        }
        if fu.take_due_scrub(now) {
            self.scrub(cpu, rfu);
        }
    }

    /// One scrub pass (DESIGN.md §9): CRC-read every resident
    /// configuration and repair corrupt frames before dispatch hits
    /// them. Detection and repair advance the simulated clock.
    fn scrub(&mut self, cpu: &mut Cpu, rfu: &mut Rfu) {
        let owners: Vec<Option<TupleKey>> = match self.cis.as_ref() {
            Some(cis) => cis.pfu_owners().to_vec(),
            None => return,
        };
        for (pfu, owner) in owners.iter().enumerate() {
            if !rfu.pfus().is_loaded(pfu) {
                continue;
            }
            let corrupt = rfu.pfus().health(pfu).config_corrupt;
            let cost = self.config.costs.crc_check;
            cpu.add_cycles(cost);
            // Scrub work is charged to the slot's owner when it has one.
            let tag = Tag::new(owner.map_or(0, |k| k.pid), Callsite::Scrub);
            self.probe.emit(cpu.cycles(), tag, Event::ScrubCheck { pfu, corrupt, cost });
            if !corrupt {
                continue;
            }
            // Repair by re-driving the configuration; transfer sizes
            // come from the owner's registration record.
            let Some(key) = *owner else { continue };
            // Repairs share the slot's reconfiguration allowance
            // (`retries`, reset on every completion) with the fault
            // handler's rung 0: under upsets denser than the reload
            // time an unconditional scrubber re-repairs at every
            // scheduling boundary and starves execution outright.
            // Beyond the allowance the corruption is left in place for
            // the dispatch-time ladder to escalate on.
            if rfu.pfus().health(pfu).retries > self.config.recovery.max_retries {
                continue;
            }
            let Some(reg) = self.procs.get(&key.pid).and_then(|p| p.circuits.get(&key.cid))
            else {
                continue;
            };
            let (static_bytes, state_words) = (reg.static_bytes, reg.state_words);
            let attempt = rfu.pfus().health(pfu).retries + 1;
            rfu.pfus_mut().health_mut(pfu).retries = attempt;
            if let Some((circuit, _)) = rfu.pfus_mut().unload(pfu) {
                rfu.pfus_mut().load(pfu, circuit);
                let cost = self.config.costs.retry_load_cycles(static_bytes, state_words, attempt);
                let words = (static_bytes as u64).div_ceil(4) + state_words as u64;
                cpu.add_cycles(cost);
                self.probe.emit(
                    cpu.cycles(),
                    Tag::new(key.pid, Callsite::Scrub),
                    Event::RecoveryRetry { key, pfu, attempt, words, cost },
                );
            }
        }
    }

    /// Timer-driven pre-emption: rotate the ready queue.
    fn preempt(&mut self, cpu: &mut Cpu, rfu: &mut Rfu) {
        match self.ready.pop_front() {
            Some(next) => {
                self.save_current(cpu, rfu);
                if let Some(cur) = self.current {
                    self.ready.push_back(cur);
                }
                let cost = self.config.costs.context_switch;
                cpu.add_cycles(cost);
                self.probe.emit(
                    cpu.cycles(),
                    Tag::new(next, Callsite::ContextSwitch),
                    Event::ContextSwitch { from: self.current, to: next, cost },
                );
                self.restore(next, cpu, rfu);
            }
            None => {
                // Sole runnable process: acknowledge the timer and carry on.
                let cost = self.config.costs.timer_tick;
                cpu.add_cycles(cost);
                if let Some(pid) = self.current {
                    self.probe.emit(
                        cpu.cycles(),
                        Tag::new(pid, Callsite::ContextSwitch),
                        Event::TimerTick { pid, cost },
                    );
                }
                self.quantum_end = cpu.cycles() + self.config.quantum;
            }
        }
    }

    /// Terminate the current process with the given state.
    fn terminate(&mut self, state: ProcState, cpu: &mut Cpu, rfu: &mut Rfu) {
        let Some(pid) = self.current.take() else { return };
        if let Some(cis) = self.cis.as_mut() {
            cis.release_process(pid, rfu);
        }
        if let Some(p) = self.procs.get_mut(&pid) {
            p.state = state;
            p.finish_cycle = Some(cpu.cycles());
        }
        let tag = Tag::new(pid, Callsite::ContextSwitch);
        match state {
            ProcState::Killed => {
                self.probe.emit(cpu.cycles(), tag, Event::Kill { pid });
            }
            ProcState::Exited { code } => {
                self.probe.emit(cpu.cycles(), tag, Event::Exit { pid, code });
            }
            ProcState::Ready => {}
        }
    }

    fn syscall(&mut self, imm: u32, cpu: &mut Cpu, rfu: &mut Rfu) {
        let cost = self.config.costs.syscall;
        cpu.add_cycles(cost);
        let Some(pid) = self.current else { return };
        self.probe.emit(
            cpu.cycles(),
            Tag::new(pid, Callsite::Syscall),
            Event::Syscall { pid, number: imm, cost },
        );
        match imm {
            swi::EXIT => {
                let code = cpu.reg(0);
                self.terminate(ProcState::Exited { code }, cpu, rfu);
            }
            swi::YIELD => {
                self.preempt(cpu, rfu);
            }
            swi::PUTC => {
                let byte = (cpu.reg(0) & 0xFF) as u8;
                if let Some(p) = self.procs.get_mut(&pid) {
                    p.console.push(byte);
                }
            }
            swi::REGISTER => {
                let cid = (cpu.reg(0) & 0xFF) as u8;
                let idx = cpu.reg(1) as usize;
                let sw = cpu.reg(2);
                let ok = self.procs.get_mut(&pid).is_some_and(|p| {
                    match p.circuit_table.get_mut(idx).and_then(Option::take) {
                        Some(spec) if !p.circuits.contains_key(&cid) => {
                            let sw_alt = if sw == 0 { spec.software_alt } else { Some(sw) };
                            p.circuits
                                .insert(cid, Registered::with_image(spec.circuit, sw_alt, spec.image));
                            true
                        }
                        _ => false,
                    }
                });
                if !ok {
                    self.terminate(ProcState::Killed, cpu, rfu);
                }
            }
            swi::GETPID => {
                cpu.set_reg(0, pid);
            }
            _ => {
                self.terminate(ProcState::Killed, cpu, rfu);
            }
        }
    }

    /// Run the machine until every process exits or `cycle_limit` is hit.
    ///
    /// # Errors
    ///
    /// [`KernelError::CycleLimit`] if live processes remain at the limit.
    pub fn run(
        &mut self,
        cpu: &mut Cpu,
        rfu: &mut Rfu,
        cycle_limit: u64,
    ) -> Result<RunReport, KernelError> {
        match self.advance_until(cpu, rfu, u64::MAX, cycle_limit)? {
            true => Ok(self.report(cpu)),
            false => unreachable!("advance_until(stop = MAX) only returns on completion"),
        }
    }

    /// Run until every process exits (`Ok(true)`) or the simulated clock
    /// reaches `stop_cycle` (`Ok(false)`, resumable) — the entry point
    /// for dynamic workloads, where new processes arrive over time:
    /// advance, spawn, advance again.
    ///
    /// # Errors
    ///
    /// [`KernelError::CycleLimit`] if live processes remain at the hard
    /// `cycle_limit`.
    pub fn advance_until(
        &mut self,
        cpu: &mut Cpu,
        rfu: &mut Rfu,
        stop_cycle: u64,
        cycle_limit: u64,
    ) -> Result<bool, KernelError> {
        if self.cis.is_none() {
            self.cis = Some(Cis::with_sharing(
                rfu.config().pfus,
                self.config.mode,
                self.config.share_circuits,
            ));
        }
        // Dispatch the first process.
        if self.current.is_none() {
            if let Some(first) = self.ready.pop_front() {
                self.restore(first, cpu, rfu);
            }
        }
        while self.live_count() > 0 {
            if cpu.cycles() >= stop_cycle {
                return Ok(false);
            }
            let Some(pid) = self.current else {
                // Current process died; pick the next runnable one.
                match self.ready.pop_front() {
                    Some(next) => {
                        let cost = self.config.costs.context_switch;
                        cpu.add_cycles(cost);
                        self.probe.emit(
                            cpu.cycles(),
                            Tag::new(next, Callsite::ContextSwitch),
                            Event::ContextSwitch { from: None, to: next, cost },
                        );
                        self.restore(next, cpu, rfu);
                        continue;
                    }
                    None => break,
                }
            };
            if cpu.cycles() >= cycle_limit {
                return Err(KernelError::CycleLimit { cycles: cpu.cycles(), live: self.live_count() });
            }
            self.service_faults(cpu, rfu);
            let natural = self.quantum_end.min(cycle_limit).min(stop_cycle);
            // Injected faults land at their exact cycle: cap the run at
            // the next due event and resume without preempting.
            let until = match self.faults.as_ref().and_then(FaultUnit::next_due) {
                Some(due) => natural.min(due.max(cpu.cycles() + 1)),
                None => natural,
            };
            let span_start = cpu.cycles();
            let stop = match self.procs.get_mut(&pid) {
                Some(p) => cpu.run(&mut p.mem, rfu, until),
                None => {
                    // `current` always names a spawned process.
                    debug_assert!(false, "current process {pid} missing from the table");
                    self.current = None;
                    continue;
                }
            };
            self.attribute_span(pid, span_start, cpu, rfu);
            if matches!(stop, Stop::Quantum) && until < natural && cpu.cycles() < natural {
                // Stopped at a fault-injection boundary, not the
                // quantum's end; the loop top applies what is due.
                continue;
            }
            match stop {
                Stop::Quantum => {
                    if cpu.cycles() >= cycle_limit && self.live_count() > 0 {
                        return Err(KernelError::CycleLimit {
                            cycles: cpu.cycles(),
                            live: self.live_count(),
                        });
                    }
                    self.preempt(cpu, rfu);
                }
                Stop::Swi { imm } => self.syscall(imm, cpu, rfu),
                Stop::CustomFault { cid, .. } => {
                    let key = TupleKey::new(pid, cid);
                    let Some(cis) = self.cis.as_mut() else {
                        // Created at function entry; cannot be absent.
                        debug_assert!(false, "CIS missing during dispatch");
                        self.terminate(ProcState::Killed, cpu, rfu);
                        continue;
                    };
                    let resolution = cis.handle_fault(
                        key,
                        rfu,
                        &mut self.procs,
                        self.policy.as_mut(),
                        &self.config.recovery,
                        self.faults.as_mut(),
                        &self.config.costs,
                        &mut self.probe,
                        cpu.cycles(),
                    );
                    match resolution {
                        FaultResolution::Reissue { cycles } => {
                            cpu.add_cycles(cycles);
                            // Progress guarantee (see KernelConfig).
                            self.quantum_end =
                                self.quantum_end.max(cpu.cycles() + self.config.post_fault_grace);
                        }
                        FaultResolution::Kill { cycles } => {
                            // Charge everything the handler did before
                            // reaching the verdict (entry, diagnosis,
                            // failed retries) so every cost it emitted
                            // stays conserved.
                            cpu.add_cycles(cycles);
                            self.terminate(ProcState::Killed, cpu, rfu);
                        }
                    }
                }
                Stop::Undefined { .. } | Stop::MemFault { .. } => {
                    self.terminate(ProcState::Killed, cpu, rfu);
                }
            }
        }
        Ok(true)
    }

    /// Snapshot the run outcome so far (exited/killed processes, stats).
    pub fn report(&self, cpu: &Cpu) -> RunReport {
        let mut exited: Vec<(Pid, u64, u32)> = self
            .procs
            .values()
            .filter_map(|p| match p.state {
                ProcState::Exited { code } => Some((p.pid, p.finish_cycle.unwrap_or(0), code)),
                _ => None,
            })
            .collect();
        exited.sort_unstable();
        let killed: Vec<Pid> = self
            .procs
            .values()
            .filter(|p| matches!(p.state, ProcState::Killed))
            .map(|p| p.pid)
            .collect();
        let makespan = self
            .procs
            .values()
            .filter_map(|p| p.finish_cycle)
            .max()
            .unwrap_or_else(|| cpu.cycles());
        RunReport {
            exited,
            killed,
            makespan,
            stats: *self.probe.stats(),
            ledger: *self.probe.ledger(),
            attributed: self.probe.attributed().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_isa::assemble;
    use proteus_rfu::behavioral::FixedLatency;
    use proteus_rfu::RfuConfig;

    fn machine() -> (Cpu, Rfu) {
        (Cpu::new(), Rfu::new(RfuConfig::default()))
    }

    #[test]
    fn single_process_exits() {
        let p = assemble("mov r0, #7\n swi #0\n").expect("asm");
        let mut k = Kernel::new(KernelConfig::default());
        let pid = k.spawn(SpawnSpec::new(&p)).expect("spawn");
        let (mut cpu, mut rfu) = machine();
        let report = k.run(&mut cpu, &mut rfu, 1_000_000).expect("run");
        assert_eq!(report.exited, vec![(pid, report.makespan, 7)]);
    }

    #[test]
    fn round_robin_interleaves_processes() {
        // Two CPU-bound processes; with a small quantum both should make
        // progress and finish close together.
        let src = "ldr r1, =20000\nloop: subs r1, r1, #1\n bne loop\n swi #0\n";
        let p = assemble(src).expect("asm");
        let mut k = Kernel::new(KernelConfig { quantum: 5_000, ..KernelConfig::default() });
        let a = k.spawn(SpawnSpec::new(&p)).expect("spawn");
        let b = k.spawn(SpawnSpec::new(&p)).expect("spawn");
        let (mut cpu, mut rfu) = machine();
        let report = k.run(&mut cpu, &mut rfu, 100_000_000).expect("run");
        let fa = report.finish_of(a).expect("a finished");
        let fb = report.finish_of(b).expect("b finished");
        assert!(report.stats.context_switches > 5, "stats: {:?}", report.stats);
        // Interleaved: the first finisher is past ~90% of the second.
        let (lo, hi) = (fa.min(fb), fa.max(fb));
        assert!(lo * 10 > hi * 9, "lo={lo} hi={hi}");
    }

    #[test]
    fn custom_instruction_roundtrip_through_fault_handler() {
        let src = "mov r0, #30\n mov r1, #12\n pfu 0, r2, r0, r1\n mov r0, r2\n swi #0\n";
        let p = assemble(src).expect("asm");
        let spec = SpawnSpec::new(&p).circuit(CircuitSpec {
            cid: 0,
            circuit: Box::new(FixedLatency::new("add", 1, 4, |a, b| a.wrapping_add(b))),
            software_alt: None, image: None });
        let mut k = Kernel::new(KernelConfig::default());
        let pid = k.spawn(spec).expect("spawn");
        let (mut cpu, mut rfu) = machine();
        let report = k.run(&mut cpu, &mut rfu, 10_000_000).expect("run");
        assert_eq!(report.exited[0].0, pid);
        assert_eq!(report.exited[0].2, 42);
        assert_eq!(report.stats.custom_faults, 1);
        assert_eq!(report.stats.config_loads, 1);
    }

    #[test]
    fn unregistered_cid_kills_process() {
        let p = assemble("pfu 9, r0, r0, r0\n swi #0\n").expect("asm");
        let mut k = Kernel::new(KernelConfig::default());
        let pid = k.spawn(SpawnSpec::new(&p)).expect("spawn");
        let (mut cpu, mut rfu) = machine();
        let report = k.run(&mut cpu, &mut rfu, 1_000_000).expect("run");
        assert_eq!(report.killed, vec![pid]);
    }

    #[test]
    fn guest_side_registration_via_swi() {
        let src = "mov r0, #5\n mov r1, #0\n mov r2, #0\n swi #3\n\
                   mov r0, #8\n mov r1, #9\n pfu 5, r3, r0, r1\n mov r0, r3\n swi #0\n";
        let p = assemble(src).expect("asm");
        let (spec, idx) = SpawnSpec::new(&p).table_circuit(CircuitSpec {
            cid: 5,
            circuit: Box::new(FixedLatency::new("mul", 2, 4, |a, b| a.wrapping_mul(b))),
            software_alt: None, image: None });
        assert_eq!(idx, 0);
        let mut k = Kernel::new(KernelConfig::default());
        k.spawn(spec).expect("spawn");
        let (mut cpu, mut rfu) = machine();
        let report = k.run(&mut cpu, &mut rfu, 10_000_000).expect("run");
        assert_eq!(report.exited[0].2, 72);
    }

    #[test]
    fn putc_console_capture() {
        let src = "mov r0, #72\n swi #2\n mov r0, #105\n swi #2\n mov r0, #0\n swi #0\n";
        let p = assemble(src).expect("asm");
        let mut k = Kernel::new(KernelConfig::default());
        let pid = k.spawn(SpawnSpec::new(&p)).expect("spawn");
        let (mut cpu, mut rfu) = machine();
        k.run(&mut cpu, &mut rfu, 1_000_000).expect("run");
        assert_eq!(k.console_of(pid), Some(b"Hi".as_slice()));
    }

    #[test]
    fn cycle_limit_errors_with_live_processes() {
        let p = assemble("loop: b loop\n").expect("asm");
        let mut k = Kernel::new(KernelConfig::default());
        k.spawn(SpawnSpec::new(&p)).expect("spawn");
        let (mut cpu, mut rfu) = machine();
        match k.run(&mut cpu, &mut rfu, 50_000) {
            Err(KernelError::CycleLimit { live: 1, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn yield_rotates_immediately() {
        // Process A yields in a loop; B counts. Both finish despite A
        // never exhausting a quantum.
        let a = assemble("mov r2, #50\nloop: swi #1\n subs r2, r2, #1\n bne loop\n mov r0, #0\n swi #0\n").expect("asm");
        let b = assemble("ldr r1, =5000\nloop: subs r1, r1, #1\n bne loop\n mov r0, #0\n swi #0\n").expect("asm");
        let mut k = Kernel::new(KernelConfig { quantum: 100_000, ..KernelConfig::default() });
        k.spawn(SpawnSpec::new(&a)).expect("spawn");
        k.spawn(SpawnSpec::new(&b)).expect("spawn");
        let (mut cpu, mut rfu) = machine();
        let report = k.run(&mut cpu, &mut rfu, 100_000_000).expect("run");
        assert_eq!(report.exited.len(), 2);
        // While B is alive a yield from A forces a real switch; once B
        // exits the remaining yields become cheap timer ticks.
        assert!(report.stats.context_switches >= 2, "stats: {:?}", report.stats);
        assert!(report.stats.timer_ticks >= 40, "stats: {:?}", report.stats);
    }

    #[test]
    fn getpid_returns_pid() {
        let p = assemble("swi #4\n swi #0\n").expect("asm");
        let mut k = Kernel::new(KernelConfig::default());
        let pid = k.spawn(SpawnSpec::new(&p)).expect("spawn");
        let (mut cpu, mut rfu) = machine();
        let report = k.run(&mut cpu, &mut rfu, 1_000_000).expect("run");
        assert_eq!(report.exited[0], (pid, report.makespan, pid));
    }
}
