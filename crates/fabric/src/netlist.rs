//! Gate-level netlist intermediate representation.
//!
//! A [`Netlist`] is a flat graph of nodes: constants, input-port bits,
//! 4-input LUTs and D flip-flops. It is deliberately close to what the
//! fabric can hold — each CLB provides one LUT4 and one DFF — so placement
//! is a mapping problem, not a synthesis problem.

use std::collections::BTreeSet;

use crate::error::FabricError;

/// Identifier of a node inside one [`Netlist`].
///
/// Ids are dense indices assigned by [`crate::builder::NetlistBuilder`];
/// they are meaningless across netlists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One netlist node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Node {
    /// A constant driver (`0` or `1`). Realised by tying a routing mux to
    /// the fabric's constant rails, not by consuming a CLB.
    Const(bool),
    /// One bit of a named input port (the PFU datapath, *not* an IOB).
    Input {
        /// Index into [`Netlist::inputs`].
        port: u16,
        /// Bit position within the port.
        bit: u16,
    },
    /// A 4-input lookup table. Unused inputs should be tied to a constant.
    Lut {
        /// Source node of each LUT input pin.
        inputs: [NodeId; 4],
        /// Truth table: bit `i` of `truth` is the output for input value
        /// `i` (pin 0 is the least significant address bit).
        truth: u16,
    },
    /// A D flip-flop, clocked by the single PFU clock.
    Dff {
        /// The node sampled on each clock edge.
        d: NodeId,
        /// Power-on / configuration-time value. This is the *state*
        /// portion of the configuration (paper §4.1).
        init: bool,
    },
}

/// A named input port (a bundle of datapath wires entering the circuit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Port name, e.g. `"op_a"`.
    pub name: String,
    /// Number of bits.
    pub width: u16,
}

/// A flat gate-level circuit.
///
/// Construct one with [`crate::builder::NetlistBuilder`]; the fields here
/// are read-only views used by placement, encoding and simulation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Netlist {
    pub(crate) nodes: Vec<Node>,
    pub(crate) inputs: Vec<Port>,
    pub(crate) outputs: Vec<(String, Vec<NodeId>)>,
}

impl Netlist {
    /// All nodes, indexable by [`NodeId::index`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Declared input ports, in declaration order.
    pub fn inputs(&self) -> &[Port] {
        &self.inputs
    }

    /// Declared output buses: name plus the node driving each bit.
    pub fn outputs(&self) -> &[(String, Vec<NodeId>)] {
        &self.outputs
    }

    /// Number of LUT nodes.
    pub fn lut_count(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, Node::Lut { .. })).count()
    }

    /// Number of flip-flop nodes (== number of state bits to save on a
    /// context switch).
    pub fn dff_count(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, Node::Dff { .. })).count()
    }

    /// Lower bound on CLBs needed: each CLB offers one LUT and one DFF, and
    /// a DFF fed directly by a LUT can share that LUT's CLB.
    pub fn clb_estimate(&self) -> usize {
        let luts = self.lut_count();
        let mut unpaired_dffs = 0usize;
        let mut paired_luts: BTreeSet<u32> = BTreeSet::new();
        for node in &self.nodes {
            if let Node::Dff { d, .. } = node {
                let feeds_from_lut = matches!(self.nodes[d.index()], Node::Lut { .. });
                if feeds_from_lut && !paired_luts.contains(&d.0) {
                    paired_luts.insert(d.0);
                } else {
                    unpaired_dffs += 1;
                }
            }
        }
        luts + unpaired_dffs
    }

    /// Validate structural invariants: every referenced node exists, port
    /// references are in range, and the combinational graph is acyclic.
    ///
    /// # Errors
    ///
    /// [`FabricError::DanglingNode`] for out-of-range references and
    /// [`FabricError::CombinationalCycle`] if combinational logic loops
    /// without passing through a flip-flop.
    pub fn check(&self) -> Result<(), FabricError> {
        let n = self.nodes.len() as u32;
        let check_ref = |id: NodeId| -> Result<(), FabricError> {
            if id.0 >= n {
                Err(FabricError::DanglingNode { node: id.0 })
            } else {
                Ok(())
            }
        };
        for node in &self.nodes {
            match node {
                Node::Lut { inputs, .. } => {
                    for &i in inputs {
                        check_ref(i)?;
                    }
                }
                Node::Dff { d, .. } => check_ref(*d)?,
                Node::Input { port, .. } => {
                    if *port as usize >= self.inputs.len() {
                        return Err(FabricError::DanglingNode { node: u32::MAX });
                    }
                }
                Node::Const(_) => {}
            }
        }
        for (_, bits) in &self.outputs {
            for &b in bits {
                check_ref(b)?;
            }
        }
        self.topo_order().map(|_| ())
    }

    /// Topological order of the *combinational* nodes (LUTs). Inputs,
    /// constants and DFF outputs are sources; DFF `d` pins are sinks.
    ///
    /// # Errors
    ///
    /// [`FabricError::CombinationalCycle`] if no such order exists.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, FabricError> {
        // Kahn's algorithm restricted to LUT->LUT edges.
        let n = self.nodes.len();
        let mut indegree = vec![0u32; n];
        let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            if let Node::Lut { inputs, .. } = node {
                for &src in inputs {
                    if matches!(self.nodes[src.index()], Node::Lut { .. }) {
                        indegree[i] += 1;
                        fanout[src.index()].push(i as u32);
                    }
                }
            }
        }
        let mut queue: Vec<u32> = (0..n as u32)
            .filter(|&i| matches!(self.nodes[i as usize], Node::Lut { .. }) && indegree[i as usize] == 0)
            .collect();
        let mut order = Vec::with_capacity(self.lut_count());
        while let Some(i) = queue.pop() {
            order.push(NodeId(i));
            for &next in &fanout[i as usize] {
                indegree[next as usize] -= 1;
                if indegree[next as usize] == 0 {
                    queue.push(next);
                }
            }
        }
        if order.len() != self.lut_count() {
            let stuck = (0..n)
                .find(|&i| matches!(self.nodes[i], Node::Lut { .. }) && indegree[i] > 0)
                .unwrap_or(0);
            return Err(FabricError::CombinationalCycle { node: stuck as u32 });
        }
        Ok(order)
    }

    /// Verify that this netlist exposes the standard PFU interface used by
    /// the Proteus datapath: inputs `op_a[32]`, `op_b[32]`, `init[1]`
    /// (init may be omitted for purely combinational circuits) and outputs
    /// `result[32]`, `done[1]`.
    ///
    /// # Errors
    ///
    /// [`FabricError::BadPort`] naming the first offending port.
    pub fn check_pfu_interface(&self) -> Result<(), FabricError> {
        let need_in = [("op_a", 32u16), ("op_b", 32)];
        for (name, width) in need_in {
            match self.inputs.iter().find(|p| p.name == name) {
                Some(p) if p.width == width => {}
                Some(p) => {
                    return Err(FabricError::BadPort {
                        name: name.to_string(),
                        detail: format!("expected width {width}, found {}", p.width),
                    })
                }
                None => {
                    return Err(FabricError::BadPort {
                        name: name.to_string(),
                        detail: "missing input port".to_string(),
                    })
                }
            }
        }
        if let Some(p) = self.inputs.iter().find(|p| p.name == "init") {
            if p.width != 1 {
                return Err(FabricError::BadPort {
                    name: "init".to_string(),
                    detail: format!("expected width 1, found {}", p.width),
                });
            }
        }
        let need_out = [("result", 32usize), ("done", 1)];
        for (name, width) in need_out {
            match self.outputs.iter().find(|(n, _)| n == name) {
                Some((_, bits)) if bits.len() == width => {}
                Some((_, bits)) => {
                    return Err(FabricError::BadPort {
                        name: name.to_string(),
                        detail: format!("expected width {width}, found {}", bits.len()),
                    })
                }
                None => {
                    return Err(FabricError::BadPort {
                        name: name.to_string(),
                        detail: "missing output port".to_string(),
                    })
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    #[test]
    fn empty_netlist_checks() {
        let n = Netlist::default();
        assert!(n.check().is_ok());
        assert_eq!(n.lut_count(), 0);
        assert_eq!(n.dff_count(), 0);
    }

    #[test]
    fn cycle_is_detected() {
        // Hand-build a 2-LUT combinational loop.
        let n = Netlist {
            nodes: vec![
                Node::Lut { inputs: [NodeId(1); 4], truth: 0xAAAA },
                Node::Lut { inputs: [NodeId(0); 4], truth: 0xAAAA },
            ],
            inputs: vec![],
            outputs: vec![],
        };
        assert!(matches!(n.check(), Err(FabricError::CombinationalCycle { .. })));
    }

    #[test]
    fn dff_breaks_cycle() {
        // LUT -> DFF -> LUT is legal.
        let n = Netlist {
            nodes: vec![
                Node::Const(false),
                Node::Lut { inputs: [NodeId(2), NodeId(0), NodeId(0), NodeId(0)], truth: 0x5555 },
                Node::Dff { d: NodeId(1), init: false },
            ],
            inputs: vec![],
            outputs: vec![],
        };
        assert!(n.check().is_ok());
    }

    #[test]
    fn dangling_reference_is_detected() {
        let n = Netlist {
            nodes: vec![Node::Dff { d: NodeId(7), init: false }],
            inputs: vec![],
            outputs: vec![],
        };
        assert!(matches!(n.check(), Err(FabricError::DanglingNode { node: 7 })));
    }

    #[test]
    fn clb_estimate_pairs_dff_with_driving_lut() {
        let mut b = NetlistBuilder::new();
        let a = b.input_bus("op_a", 2);
        let x = b.and2(a[0], a[1]);
        let q = b.dff(x, false);
        b.output_bit("result", q);
        let n = b.finish_unchecked();
        // One LUT + one DFF fed by it = one CLB.
        assert_eq!(n.clb_estimate(), 1);
    }

    #[test]
    fn pfu_interface_check_flags_missing_done() {
        let mut b = NetlistBuilder::new();
        let a = b.input_bus("op_a", 32);
        let c = b.input_bus("op_b", 32);
        let s = b.add(&a, &c);
        b.output_bus("result", &s);
        let n = b.finish_unchecked();
        assert!(matches!(
            n.check_pfu_interface(),
            Err(FabricError::BadPort { ref name, .. }) if name == "done"
        ));
    }
}
