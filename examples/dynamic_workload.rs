//! Dynamic scheduling loads — the paper's §6 future work, implemented:
//! jobs from all three applications arrive over time, and we compare how
//! the three management strategies cope as the offered load rises.
//!
//! Run with `cargo run --release --example dynamic_workload`.

use porsche::cis::DispatchMode;
use proteus::dynamic::DynamicLoad;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("18 mixed jobs (alpha / twofish / echo), 4 PFUs, 1 ms quantum");
    println!("mean turnaround in cycles, lower is better\n");
    println!(
        "{:>22} {:>18} {:>18} {:>18}",
        "mean arrival gap", "circuit switching", "software dispatch", "circuit sharing"
    );
    for gap in [2_000_000u64, 500_000, 125_000, 30_000] {
        let mut row = format!("{gap:>22}");
        for (mode, sharing) in [
            (DispatchMode::HardwareOnly, false),
            (DispatchMode::SoftwareFallback, false),
            (DispatchMode::HardwareOnly, true),
        ] {
            let result = DynamicLoad {
                jobs: 18,
                mean_interarrival: gap,
                job_size: (512, 30),
                mode,
                sharing,
                ..DynamicLoad::default()
            }
            .run()?;
            assert!(result.valid, "all jobs must compute correct results");
            row.push_str(&format!(" {:>18.0}", result.mean_turnaround));
        }
        println!("{row}");
    }
    println!();
    println!("as arrivals densify, the PFU population churns: sharing wins when");
    println!("jobs reuse configurations, software dispatch degrades gracefully,");
    println!("and plain circuit switching pays a 54 KB reconfiguration per swap.");
    Ok(())
}
