//! Pinned encode/decode regressions.
//!
//! Each test fixes one instruction that the `props_isa` property tests
//! once caught violating `encode ∘ decode = identity` (the seeds live
//! in `crates/integration/tests/props_isa.proptest-regressions`). All
//! four are redundant encodings the ISA now canonicalises — see the
//! "Canonical forms" section of the `encode` module docs. Pinning them
//! as plain `#[test]`s keeps the fixes from regressing even if the
//! proptest seeds are pruned or the property-test runner changes.

use proteus_isa::instr::MemOffset;
use proteus_isa::{
    assemble, decode, encode, Cond, DpOp, Instr, MemOp, Operand2, Reg, Shift, ShiftKind,
};

/// Decode `word`, assert it yields exactly `canonical`, and assert the
/// canonical instruction round-trips through its own word and its
/// disassembly text.
fn assert_canonical(word: u32, canonical: Instr, canonical_word: u32) {
    let decoded = decode(word).unwrap_or_else(|e| panic!("{word:#010x} must decode: {e}"));
    assert_eq!(decoded, canonical, "decode of {word:#010x}");
    assert_eq!(encode(decoded), canonical_word, "re-encode of {word:#010x}");
    let again = decode(canonical_word).expect("canonical word decodes");
    assert_eq!(again, canonical, "decode of canonical {canonical_word:#010x}");
    // The text form is part of the canonicalisation contract: the
    // disassembly of any decoded instruction re-assembles to the
    // canonical word.
    let text = canonical.to_string();
    let program = assemble(&text).unwrap_or_else(|e| panic!("`{text}` must assemble: {e}"));
    assert_eq!(program.words(), &[canonical_word], "assembly of `{text}`");
}

fn mem_str_zero_offset(up: bool, writeback: bool) -> Instr {
    Instr::Mem {
        op: MemOp::Str,
        cond: Cond::Eq,
        byte: false,
        rd: Reg::new(0),
        rn: Reg::new(0),
        offset: MemOffset::Imm(0),
        up,
        pre: false,
        writeback,
    }
}

fn dataproc_eq(op: DpOp, s: bool, rd: Reg, op2: Operand2) -> Instr {
    Instr::DataProc { op, cond: Cond::Eq, s, rd, rn: Reg::new(0), op2 }
}

/// `str r0, [r0], #-0`: a zero immediate offset with the up bit clear.
/// Subtracting zero is adding zero, so the canonical form sets `up`
/// (and, being post-indexed, `writeback`).
#[test]
fn zero_offset_store_has_no_negative_zero() {
    assert_canonical(0x0500_0000, mem_str_zero_offset(true, true), 0x0510_0800);
    // Constructing the non-canonical variant directly still encodes to
    // the canonical word.
    assert_eq!(encode(mem_str_zero_offset(false, false)), 0x0510_0800);
}

/// `tsteq r0, #0` with a stray destination register: TST ignores `rd`,
/// so the canonical encoding zeroes the field.
#[test]
fn tst_ignores_destination_register() {
    let imm0 = Operand2::Imm { value: 0, rot: 0 };
    assert_canonical(
        0x0381_0000,
        dataproc_eq(DpOp::Tst, true, Reg::new(0), imm0),
        0x0380_0000,
    );
    assert_eq!(encode(dataproc_eq(DpOp::Tst, true, Reg::new(1), imm0)), 0x0380_0000);
}

/// `andeq r0, r0, #0` denoted with rotation 1: zero encodes under every
/// rotation, and the canonical immediate uses the lowest.
#[test]
fn rotated_zero_immediate_uses_lowest_rotation() {
    assert_canonical(
        0x0200_0100,
        dataproc_eq(DpOp::And, false, Reg::new(0), Operand2::Imm { value: 0, rot: 0 }),
        0x0200_0000,
    );
    let noncanonical =
        dataproc_eq(DpOp::And, false, Reg::new(0), Operand2::Imm { value: 0, rot: 1 });
    assert_eq!(encode(noncanonical), 0x0200_0000);
}

/// `andeq r0, r0, r0` with shift kind LSR at amount 0: every kind
/// passes the value through at amount 0, so the canonical kind is LSL.
#[test]
fn zero_amount_shift_is_canonically_lsl() {
    let shifted = |kind| Operand2::Reg { reg: Reg::new(0), shift: Shift { kind, amount: 0 } };
    assert_canonical(
        0x0000_0040,
        dataproc_eq(DpOp::And, false, Reg::new(0), shifted(ShiftKind::Lsl)),
        0x0000_0000,
    );
    assert_eq!(
        encode(dataproc_eq(DpOp::And, false, Reg::new(0), shifted(ShiftKind::Lsr))),
        0x0000_0000
    );
}
