//! Regenerate every figure and claim of the paper's evaluation.
//!
//! ```text
//! repro [--quick] [--jobs N] [--out DIR] [--trace SCENARIO]
//!       [--flame SCENARIO] [--chrome-trace SCENARIO] [--bench]
//!       [fig2] [fig3] [speedup] [policies] [quanta] [pfus]
//!       [config-split] [tlb] [longinstr] [soft-crossover] [sharing]
//!       [dynamic] [faults] [all]
//! ```
//!
//! With no experiment names, runs `all`. Each experiment is a
//! declarative [`proteus::runner::ExperimentPlan`] executed on a worker
//! pool of `--jobs` threads (default: the host's available
//! parallelism). Result assembly is deterministic, so the CSVs are
//! **byte-identical at any `--jobs` value** — only wall time changes.
//!
//! Results are printed as tables and written as long-format CSVs into
//! `--out` (default `results/`): `<figure>.csv` with the plotted points
//! and `breakdown_<figure>.csv` attributing every simulated cycle of
//! every job to a [`proteus::CycleLedger`] category. `summary.json`
//! records per-figure and total wall time, job counts,
//! simulated-cycles-per-host-second throughput, a `cycle_breakdown`
//! section (per-experiment and aggregate category totals), the top
//! per-process × per-callsite cycle sinks, and per-trace ring-buffer
//! drop counts.
//!
//! Profiling flags (scenario names resolve through
//! [`proteus::experiment::resolve_target`] — experiment figures from
//! the registry, demo apps by name):
//!
//! * `--trace <app>` runs a small contended demo of the named
//!   application with tracing on and dumps its event timeline as JSON
//!   lines into `trace_<app>.jsonl` (one object per event, oldest
//!   first, each carrying its `(pid, callsite)` attribution tag);
//! * `--flame <experiment|app>` writes a Brendan-Gregg folded-stack
//!   profile `flamegraph_<name>.folded` — for an experiment, the merged
//!   attribution of every job in the plan (byte-identical at any
//!   `--jobs`); for an app, the demo scenario's attribution;
//! * `--chrome-trace <app>` renders the demo's trace ring plus per-PFU
//!   residency/quarantine timelines as `chrome_trace_<app>.json` for
//!   `chrome://tracing` / Perfetto.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use porsche::chrome::chrome_trace_json;
use porsche::probe::AttributedLedger;
use proteus::experiment::{demo_scenario, plan_for, resolve_target, RunTarget, Scale, EXPERIMENTS};
use proteus::runner::{default_workers, PlanMetrics};
use proteus::scenario::ScenarioResult;
use proteus::series::SeriesSet;
use proteus_apps::AppKind;

fn emit(set: &SeriesSet, outdir: &Path) {
    println!("== {} ==", set.figure);
    println!("{}", set.to_table());
    let path = outdir.join(format!("{}.csv", set.figure));
    match set.write_csv(&path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    println!();
}

fn emit_breakdown(m: &PlanMetrics, outdir: &Path) {
    let path = outdir.join(format!("breakdown_{}.csv", m.breakdown.figure));
    match m.breakdown.write_csv(&path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// What one traced demo run contributed, for `summary.json`'s `traces`
/// section: truncated timelines must be visible, not silent.
struct TraceInfo {
    scenario: &'static str,
    output: String,
    events: usize,
    dropped: u64,
    total_cycles: u64,
}

impl TraceInfo {
    fn to_json(&self) -> String {
        format!(
            "{{\"scenario\": \"{}\", \"output\": \"{}\", \"events\": {}, \
             \"dropped_events\": {}, \"total_cycles\": {}}}",
            json_escape(self.scenario),
            json_escape(&self.output),
            self.events,
            self.dropped,
            self.total_cycles,
        )
    }
}

/// Run the contended demo scenario of `app` with tracing enabled,
/// panicking on simulation/checksum failure and warning when the trace
/// ring overflowed (the dump is then the *tail* of the timeline).
fn run_demo(app: AppKind, quick: bool) -> ScenarioResult {
    let name = app.name();
    let result = demo_scenario(app, quick)
        .run()
        .unwrap_or_else(|e| panic!("demo scenario {name}: {e}"));
    assert!(result.all_valid(), "demo scenario {name}: checksum mismatch");
    result
}

fn warn_on_drops(name: &str, dropped: u64) {
    if dropped > 0 {
        eprintln!(
            "warning: trace ring dropped {dropped} events for {name}; \
             the dump holds only the timeline tail"
        );
    }
}

/// `--trace <app>`: dump the demo's event timeline as JSON lines.
fn dump_trace(app: AppKind, quick: bool, outdir: &Path) -> TraceInfo {
    let name = app.name();
    let result = run_demo(app, quick);
    let dropped = result.trace_dropped;
    let mut out = String::new();
    for &(at, tag, ref event) in &result.trace {
        out.push_str(&event.to_json(at, tag));
        out.push('\n');
    }
    let file = format!("trace_{name}.jsonl");
    let path = outdir.join(&file);
    match std::fs::write(&path, &out) {
        Ok(()) => println!(
            "wrote {} ({} events over {} cycles)",
            path.display(),
            result.trace.len(),
            result.total_cycles,
        ),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    warn_on_drops(name, dropped);
    TraceInfo {
        scenario: name,
        output: file,
        events: result.trace.len(),
        dropped,
        total_cycles: result.total_cycles,
    }
}

/// `--chrome-trace <app>`: render the demo's trace ring plus per-PFU
/// residency timelines as Chrome trace-event JSON.
fn dump_chrome_trace(app: AppKind, quick: bool, outdir: &Path) -> TraceInfo {
    let name = app.name();
    let result = run_demo(app, quick);
    let dropped = result.trace_dropped;
    let json = chrome_trace_json(name, &result.trace, dropped, result.total_cycles);
    let file = format!("chrome_trace_{name}.json");
    let path = outdir.join(&file);
    match std::fs::write(&path, &json) {
        Ok(()) => println!(
            "wrote {} ({} events over {} cycles)",
            path.display(),
            result.trace.len(),
            result.total_cycles,
        ),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    warn_on_drops(name, dropped);
    TraceInfo {
        scenario: name,
        output: file,
        events: result.trace.len(),
        dropped,
        total_cycles: result.total_cycles,
    }
}

/// `--flame <target>`: write a folded-stack profile. Experiment targets
/// run the whole plan on `jobs` workers and merge every job's
/// attribution (cell-wise sums commute, so the output is byte-identical
/// at any worker count); demo targets profile the single contended
/// scenario.
fn dump_flame(target: RunTarget, scale: &Scale, quick: bool, jobs: usize, outdir: &Path) {
    let name = target.name();
    let attributed = match target {
        RunTarget::Experiment(exp) => {
            let plan = plan_for(exp, scale).expect("resolver only yields registered experiments");
            let (_, m) = plan.execute(jobs);
            println!(
                "[flame {exp}] {} jobs on {} workers in {:.2}s",
                m.jobs,
                m.workers,
                m.wall.as_secs_f64(),
            );
            m.attributed
        }
        RunTarget::Demo(app) => run_demo(app, quick).attributed,
    };
    let folded = attributed.to_folded(name);
    let path = outdir.join(format!("flamegraph_{name}.folded"));
    match std::fs::write(&path, &folded) {
        Ok(()) => println!(
            "wrote {} ({} stacks, {} cycles)",
            path.display(),
            folded.lines().count(),
            attributed.total(),
        ),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Escape a string for inclusion in a JSON document (the summary has no
/// exotic characters, but stay correct anyway).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn metrics_json(m: &PlanMetrics, indent: &str) -> String {
    format!(
        "{indent}{{\n\
         {indent}  \"figure\": \"{}\",\n\
         {indent}  \"jobs\": {},\n\
         {indent}  \"workers\": {},\n\
         {indent}  \"wall_seconds\": {:.6},\n\
         {indent}  \"job_wall_seconds\": {:.6},\n\
         {indent}  \"sim_cycles\": {},\n\
         {indent}  \"sim_cycles_per_host_second\": {:.1}\n\
         {indent}}}",
        json_escape(&m.figure),
        m.jobs,
        m.workers,
        m.wall.as_secs_f64(),
        m.job_wall.as_secs_f64(),
        m.sim_cycles,
        m.sim_cycles_per_host_second(),
    )
}

/// Host metadata as a JSON object: the context that makes throughput
/// numbers comparable across machines and PRs.
fn host_json(jobs: usize) -> String {
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(0);
    format!(
        "{{\"rustc\": \"{}\", \"os\": \"{}\", \"arch\": \"{}\", \"logical_cpus\": {cpus}, \"jobs\": {jobs}}}",
        json_escape(env!("PROTEUS_RUSTC_VERSION")),
        std::env::consts::OS,
        std::env::consts::ARCH,
    )
}

/// Hand-rolled `summary.json` (the workspace carries no JSON
/// dependency; the schema is small and fixed).
/// Largest per-process × per-callsite sinks surfaced in `summary.json`.
const TOP_SINKS: usize = 5;

fn summary_json(
    metrics: &[PlanMetrics],
    traces: &[TraceInfo],
    workers: usize,
    quick: bool,
    total_wall_seconds: f64,
) -> String {
    let total_jobs: usize = metrics.iter().map(|m| m.jobs).sum();
    let total_job_wall: f64 = metrics.iter().map(|m| m.job_wall.as_secs_f64()).sum();
    let total_cycles: u64 = metrics.iter().map(|m| m.sim_cycles).sum();
    let throughput =
        if total_wall_seconds > 0.0 { total_cycles as f64 / total_wall_seconds } else { 0.0 };
    let per_figure: Vec<String> = metrics.iter().map(|m| metrics_json(m, "    ")).collect();
    // Per-experiment and aggregate cycle attribution, folded from the
    // same event stream that produced the breakdown CSVs.
    let mut aggregate = proteus::CycleLedger::default();
    let mut attributed = AttributedLedger::default();
    let per_figure_breakdown: Vec<String> = metrics
        .iter()
        .map(|m| {
            let ledger = m.breakdown.aggregate();
            aggregate.absorb(&ledger);
            attributed.absorb(&m.attributed);
            format!("    \"{}\": {}", json_escape(&m.figure), ledger.to_json())
        })
        .collect();
    let trace_entries: Vec<String> =
        traces.iter().map(|t| format!("    {}", t.to_json())).collect();
    format!(
        "{{\n\
         \x20 \"workers\": {workers},\n\
         \x20 \"quick\": {quick},\n\
         \x20 \"host\": {},\n\
         \x20 \"experiments\": [\n{}\n  ],\n\
         \x20 \"cycle_breakdown\": {{\n{}{}\
         \x20   \"aggregate\": {}\n\
         \x20 }},\n\
         \x20 \"top_sinks\": {},\n\
         \x20 \"traces\": [{}],\n\
         \x20 \"total\": {{\n\
         \x20   \"jobs\": {total_jobs},\n\
         \x20   \"wall_seconds\": {total_wall_seconds:.6},\n\
         \x20   \"job_wall_seconds\": {total_job_wall:.6},\n\
         \x20   \"sim_cycles\": {total_cycles},\n\
         \x20   \"sim_cycles_per_host_second\": {throughput:.1}\n\
         \x20 }}\n\
         }}\n",
        host_json(workers),
        per_figure.join(",\n"),
        per_figure_breakdown.join(",\n"),
        if per_figure_breakdown.is_empty() { "" } else { ",\n" },
        aggregate.to_json(),
        attributed.top_sinks_json(TOP_SINKS),
        if trace_entries.is_empty() {
            String::new()
        } else {
            format!("\n{}\n  ", trace_entries.join(",\n"))
        },
    )
}

/// Extract the raw token following `"key":` in one of our own
/// hand-rolled JSON documents (no nesting-aware parsing needed: every
/// key we look up maps to a scalar on the same line).
fn json_field<'a>(doc: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = doc.find(&pat)? + pat.len();
    let rest = doc[start..].trim_start();
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// The figure the pinned benchmark runs: fig3 is the most
/// interpreter-bound experiment (≈ 90 % of its cycles are interpreted
/// instructions), so it tracks hot-loop throughput most directly.
const BENCH_FIGURE: &str = "fig3";
/// Benchmarks always run on one worker so records measure single-thread
/// interpreter throughput, not host parallelism.
const BENCH_JOBS: usize = 1;

/// A prior benchmark record: `BENCH_<n>.json` parsed just enough to
/// compare against.
struct PriorBench {
    file: String,
    number: u32,
    figure: String,
    quick: bool,
    jobs: usize,
    throughput: f64,
}

/// Scan `outdir` for `BENCH_<n>.json` records, newest (highest `n`)
/// first.
fn prior_benches(outdir: &Path) -> Vec<PriorBench> {
    let mut found: Vec<PriorBench> = Vec::new();
    let Ok(entries) = std::fs::read_dir(outdir) else {
        return found;
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(number) =
            name.strip_prefix("BENCH_").and_then(|s| s.strip_suffix(".json")).and_then(|s| s.parse().ok())
        else {
            continue;
        };
        let Ok(doc) = std::fs::read_to_string(entry.path()) else {
            continue;
        };
        let figure = json_field(&doc, "figure").map(|v| v.trim_matches('"').to_string());
        let quick = json_field(&doc, "quick").map(|v| v == "true");
        let jobs = json_field(&doc, "jobs").and_then(|v| v.parse().ok());
        let throughput =
            json_field(&doc, "sim_cycles_per_host_second").and_then(|v| v.parse().ok());
        if let (Some(figure), Some(quick), Some(jobs), Some(throughput)) =
            (figure, quick, jobs, throughput)
        {
            found.push(PriorBench { file: name, number, figure, quick, jobs, throughput });
        }
    }
    found.sort_by_key(|b| std::cmp::Reverse(b.number));
    found
}

/// `repro --bench`: run the pinned benchmark subset on one worker,
/// append a numbered `BENCH_<n>.json` record, and compare against the
/// latest comparable record (same figure, scale and worker count). The
/// figure CSVs are *not* rewritten — bench mode measures, it does not
/// regenerate results.
fn run_bench(quick: bool, outdir: &Path) {
    let scale = if quick { Scale::quick() } else { Scale::full() };
    let plan = plan_for(BENCH_FIGURE, &scale).expect("registry covers the bench figure");
    println!(
        "bench: {BENCH_FIGURE} at --jobs {BENCH_JOBS}{} ...",
        if quick { " (quick scale)" } else { "" }
    );
    let (_, m) = plan.execute(BENCH_JOBS);
    let throughput = m.sim_cycles_per_host_second();
    println!(
        "bench: {} jobs, {} sim cycles in {:.2}s -> {:.3e} sim cycles/s",
        m.jobs,
        m.sim_cycles,
        m.wall.as_secs_f64(),
        throughput,
    );

    let prior = prior_benches(outdir);
    let number = prior.first().map_or(0, |b| b.number + 1);
    let baseline = prior
        .iter()
        .find(|b| b.figure == BENCH_FIGURE && b.quick == quick && b.jobs == BENCH_JOBS);
    let baseline_json = match baseline {
        Some(b) => {
            let speedup = if b.throughput > 0.0 { throughput / b.throughput } else { 0.0 };
            let regression = speedup < 0.8;
            println!(
                "bench: vs {} ({:.3e} sim cycles/s): {speedup:.2}x{}",
                b.file,
                b.throughput,
                if regression { "  ** REGRESSION > 20% **" } else { "" },
            );
            format!(
                "{{\n    \"file\": \"{}\",\n    \"sim_cycles_per_host_second\": {:.1},\n    \
                 \"speedup\": {speedup:.4},\n    \"regression\": {regression}\n  }}",
                json_escape(&b.file),
                b.throughput,
            )
        }
        None => {
            println!("bench: no comparable baseline record in {}", outdir.display());
            "null".to_string()
        }
    };
    let record = format!(
        "{{\n\
         \x20 \"bench\": {number},\n\
         \x20 \"figure\": \"{BENCH_FIGURE}\",\n\
         \x20 \"quick\": {quick},\n\
         \x20 \"jobs\": {BENCH_JOBS},\n\
         \x20 \"sim_cycles\": {},\n\
         \x20 \"wall_seconds\": {:.6},\n\
         \x20 \"sim_cycles_per_host_second\": {throughput:.1},\n\
         \x20 \"host\": {},\n\
         \x20 \"baseline\": {baseline_json}\n\
         }}\n",
        m.sim_cycles,
        m.wall.as_secs_f64(),
        host_json(BENCH_JOBS),
    );
    let path = outdir.join(format!("BENCH_{number}.json"));
    match std::fs::write(&path, &record) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

fn usage() -> ! {
    let apps: Vec<&str> = AppKind::ALL.iter().map(|a| a.name()).collect();
    eprintln!(
        "usage: repro [--quick] [--jobs N] [--out DIR] [--trace SCENARIO] [--flame SCENARIO]\n\
         \x20            [--chrome-trace SCENARIO] [--bench] [experiment...|all]\n\
         experiments: {}\n\
         demo apps (for --trace/--chrome-trace, also valid for --flame): {}\n\
         --flame: write results/flamegraph_<name>.folded (experiment figure or demo app)\n\
         --chrome-trace: write results/chrome_trace_<app>.json for chrome://tracing\n\
         --bench: run the pinned perf benchmark ({BENCH_FIGURE}, 1 worker) and append results/BENCH_<n>.json",
        EXPERIMENTS.join(" "),
        apps.join(" "),
    );
    std::process::exit(2);
}

/// Resolve a `--trace`/`--flame`/`--chrome-trace` argument or exit with
/// the resolver's full list of valid names.
fn resolve_or_usage(flag: &str, name: Option<String>) -> RunTarget {
    let Some(name) = name else {
        eprintln!("{flag} needs a scenario name");
        usage();
    };
    match resolve_target(&name) {
        Ok(target) => target,
        Err(e) => {
            eprintln!("{flag}: {e}");
            usage();
        }
    }
}

/// Demo-only flags reject experiment targets with a pointer to the flag
/// that handles them.
fn demo_or_usage(flag: &str, target: RunTarget) -> AppKind {
    match target {
        RunTarget::Demo(app) => app,
        RunTarget::Experiment(name) => {
            eprintln!(
                "{flag} profiles a single demo scenario; '{name}' is an experiment figure \
                 (use --flame {name} for its merged folded-stack profile)"
            );
            usage();
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut bench = false;
    let mut jobs = default_workers();
    let mut outdir = String::from("results");
    let mut traces: Vec<AppKind> = Vec::new();
    let mut chrome_traces: Vec<AppKind> = Vec::new();
    let mut flames: Vec<RunTarget> = Vec::new();
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--bench" => bench = true,
            "--trace" => {
                traces.push(demo_or_usage("--trace", resolve_or_usage("--trace", it.next())));
            }
            "--chrome-trace" => {
                chrome_traces.push(demo_or_usage(
                    "--chrome-trace",
                    resolve_or_usage("--chrome-trace", it.next()),
                ));
            }
            "--flame" => {
                flames.push(resolve_or_usage("--flame", it.next()));
            }
            "--jobs" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok().filter(|n| *n > 0))
                else {
                    eprintln!("--jobs needs a positive integer");
                    usage();
                };
                jobs = n;
            }
            "--out" => {
                let Some(dir) = it.next() else {
                    eprintln!("--out needs a directory");
                    usage();
                };
                outdir = dir;
            }
            "--help" | "-h" => usage(),
            name if name.starts_with("--") => {
                eprintln!("unknown flag {name}");
                usage();
            }
            name => wanted.push(name.to_string()),
        }
    }
    if bench {
        if !wanted.is_empty() || !traces.is_empty() || !chrome_traces.is_empty() || !flames.is_empty()
        {
            eprintln!("--bench runs the pinned subset only; drop experiment/trace arguments");
            usage();
        }
        let outdir = Path::new(&outdir);
        if let Err(e) = std::fs::create_dir_all(outdir) {
            eprintln!("could not create {}: {e}", outdir.display());
        }
        run_bench(quick, outdir);
        return;
    }
    // Profiling flags alone run without rerunning every figure; with
    // explicit experiment names they do both.
    if wanted.is_empty() && traces.is_empty() && chrome_traces.is_empty() && flames.is_empty() {
        wanted.push("all".into());
    }
    let all = wanted.contains(&"all".to_string());
    for name in &wanted {
        if name != "all" && !EXPERIMENTS.contains(&name.as_str()) {
            eprintln!("unknown experiment {name}");
            usage();
        }
    }

    let scale = if quick { Scale::quick() } else { Scale::full() };
    let outdir = Path::new(&outdir);
    if let Err(e) = std::fs::create_dir_all(outdir) {
        eprintln!("could not create {}: {e}", outdir.display());
    }

    let t0 = Instant::now();
    let mut trace_infos: Vec<TraceInfo> = Vec::new();
    for app in &traces {
        trace_infos.push(dump_trace(*app, quick, outdir));
    }
    for app in &chrome_traces {
        trace_infos.push(dump_chrome_trace(*app, quick, outdir));
    }
    for target in &flames {
        dump_flame(*target, &scale, quick, jobs, outdir);
    }
    let mut metrics: Vec<PlanMetrics> = Vec::new();
    for name in EXPERIMENTS {
        if !(all || wanted.iter().any(|w| w == name)) {
            continue;
        }
        let plan = plan_for(name, &scale).expect("registry covers EXPERIMENTS");
        let (set, m) = plan.execute(jobs);
        println!(
            "[{name}] {} jobs on {} workers in {:.2}s ({:.2e} sim cycles/s)",
            m.jobs,
            m.workers,
            m.wall.as_secs_f64(),
            m.sim_cycles_per_host_second(),
        );
        emit(&set, outdir);
        emit_breakdown(&m, outdir);
        metrics.push(m);
    }
    let total_wall = t0.elapsed().as_secs_f64();

    if !metrics.is_empty() || !trace_infos.is_empty() {
        // Report the effective worker count (the runner clamps to each
        // plan's job count), not the raw `--jobs` request.
        let effective_workers = metrics.iter().map(|m| m.workers).max().unwrap_or(1);
        let summary = summary_json(&metrics, &trace_infos, effective_workers, quick, total_wall);
        let summary_path = outdir.join("summary.json");
        match std::fs::write(&summary_path, &summary) {
            Ok(()) => println!("wrote {}", summary_path.display()),
            Err(e) => eprintln!("could not write {}: {e}", summary_path.display()),
        }
    }
    println!("done in {total_wall:.1}s with {jobs} worker(s) (scale: {scale:?})");
}
