//! Benchmark harness for the Proteus reproduction.
//!
//! Two entry points:
//!
//! * the `repro` binary (`cargo run -p proteus-bench --bin repro
//!   --release`) regenerates every figure of the paper's evaluation and
//!   every DESIGN.md ablation as tables + CSVs under `results/`
//!   (override with `--out`). Experiments run as declarative
//!   [`proteus::runner::ExperimentPlan`]s on a `--jobs N` worker pool
//!   (default: host parallelism); assembly is deterministic, so output
//!   is byte-identical at any job count. `results/summary.json` records
//!   per-figure and total wall time plus
//!   simulated-cycles-per-host-second throughput;
//! * Criterion benches (`cargo bench`) time the figure plans at several
//!   worker counts plus the substrate microbenchmarks.
