//! Generators for every figure of the paper's evaluation plus the
//! DESIGN.md ablations.
//!
//! | ID   | Paper artifact | Plan |
//! |------|----------------|------|
//! | Fig2 | Basic Scheduling Test (12 series) | [`fig2_plan`] |
//! | Fig3 | Software Dispatch Test (8 plotted + twofish) | [`fig3_plan`] |
//! | T-acc| "order of magnitude faster than unaccelerated" | [`speedup_plan`] |
//! | A1   | replacement policy comparison | [`ablation_policies_plan`] |
//! | A2   | quantum sweep incl. the 100 ms NT/BSD point | [`ablation_quanta_plan`] |
//! | A3   | PFU count sweep | [`ablation_pfus_plan`] |
//! | A4   | split vs. full configuration save | [`ablation_config_split_plan`] |
//! | A5   | dispatch-TLB capacity | [`ablation_tlb_plan`] |
//! | A6   | interruptible long instructions | [`ablation_long_instructions_plan`] |
//! | A7   | software-dispatch crossover vs. quantum | [`ablation_soft_crossover_plan`] |
//! | A8   | circuit sharing on/off | [`ablation_sharing_plan`] |
//! | D1   | dynamic arrival loads (§6 future work) | [`dynamic_load_plan`] |
//! | F1   | fault-injection campaign (DESIGN.md §9) | [`fault_campaign_plan`] |
//!
//! Each generator *describes* its figure as an
//! [`ExperimentPlan`](crate::runner::ExperimentPlan): one
//! [`ScenarioJob`](crate::runner::ScenarioJob) per independent
//! simulation. The plan is executed — serially or on a worker pool —
//! by [`crate::runner`], which guarantees the assembled
//! [`SeriesSet`] is identical at any worker count. The historical
//! eager functions ([`fig2`], [`fig3`], …) remain as thin serial
//! wrappers (`plan.execute(1)`).
//!
//! Workload sizes are scaled (see DESIGN.md §3): completion times are
//! smaller than the paper's absolute numbers by a constant factor, but
//! quanta, configuration-transfer costs and instruction latencies keep
//! the paper's values, so contention points and series ordering are
//! preserved.

use porsche::cis::DispatchMode;
use porsche::costs::CostModel;
use porsche::fault::{FaultPlan, RecoveryPolicy};
use porsche::kernel::{KernelConfig, SpawnSpec};
use porsche::policy::PolicyKind;
use porsche::process::CircuitSpec;
use proteus_apps::AppKind;
use proteus_rfu::behavioral::FixedLatency;
use proteus_rfu::RfuConfig;

use crate::machine::{Machine, MachineConfig};
use crate::runner::{ExperimentPlan, JobOutput};
use crate::scenario::Scenario;
use crate::series::{Series, SeriesSet};

/// The quantum the paper calls batch scheduling: 10 ms at the DESIGN.md
/// 100 MHz clock.
pub const QUANTUM_10MS: u64 = 1_000_000;

/// The interactive quantum: 1 ms.
pub const QUANTUM_1MS: u64 = 100_000;

/// The Windows NT / BSD batch quantum the discussion mentions: 100 ms.
pub const QUANTUM_100MS: u64 = 10_000_000;

/// Experiment sizing. The paper's single-instance runs take ~1.2×10⁸
/// cycles; `target_cycles` scales that down for tractable simulation
/// (the completion-time *shape* is preserved — see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Approximate single-instance completion target in cycles.
    pub target_cycles: u64,
    /// Largest concurrent-instance count (paper: 8).
    pub max_instances: usize,
    /// Seed for the random replacement policy.
    pub seed: u64,
}

impl Scale {
    /// Full-figure scale used by the `repro` binary (~1.5×10⁷ cycles per
    /// instance, ≈15 batch quanta).
    pub fn full() -> Self {
        Self { target_cycles: 15_000_000, max_instances: 8, seed: 2003 }
    }

    /// Reduced scale for CI and Criterion benches.
    pub fn quick() -> Self {
        Self { target_cycles: 1_500_000, max_instances: 4, seed: 2003 }
    }

    /// Per-app `(size, passes)` hitting roughly `target_cycles`.
    pub fn sizing(&self, app: AppKind) -> (usize, u32) {
        // Estimated accelerated cost per work unit (see guest.rs loops).
        let (size, unit_cycles) = match app {
            AppKind::Alpha => (1024, 19u64),
            AppKind::Echo => (2048, 18),
            AppKind::Twofish => (64, 54),
        };
        let per_pass = size as u64 * unit_cycles;
        let passes = (self.target_cycles / per_pass).max(1) as u32;
        (size, passes)
    }
}

/// Every experiment name the `repro` binary accepts, in emission order.
pub const EXPERIMENTS: &[&str] = &[
    "fig2",
    "fig3",
    "speedup",
    "policies",
    "quanta",
    "pfus",
    "config-split",
    "tlb",
    "longinstr",
    "soft-crossover",
    "sharing",
    "dynamic",
    "faults",
];

/// Look up an experiment plan by its `repro` name.
pub fn plan_for(name: &str, scale: &Scale) -> Option<ExperimentPlan> {
    Some(match name {
        "fig2" => fig2_plan(scale),
        "fig3" => fig3_plan(scale),
        "speedup" => speedup_plan(scale),
        "policies" => ablation_policies_plan(scale),
        "quanta" => ablation_quanta_plan(scale),
        "pfus" => ablation_pfus_plan(scale),
        "config-split" => ablation_config_split_plan(scale),
        "tlb" => ablation_tlb_plan(scale),
        "longinstr" => ablation_long_instructions_plan(),
        "soft-crossover" => ablation_soft_crossover_plan(scale),
        "sharing" => ablation_sharing_plan(scale),
        "dynamic" => dynamic_load_plan(scale),
        "faults" => fault_campaign_plan(scale),
        _ => return None,
    })
}

/// What a profiling/tracing flag's name argument resolved to: a figure
/// from the [`EXPERIMENTS`] registry, or a single demo scenario of one
/// application (the `--trace` workloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunTarget {
    /// A registered experiment plan (use [`plan_for`]).
    Experiment(&'static str),
    /// A one-application demo scenario (use [`demo_scenario`]).
    Demo(AppKind),
}

impl RunTarget {
    /// The canonical name (registry spelling or app name).
    pub fn name(&self) -> &'static str {
        match self {
            RunTarget::Experiment(name) => name,
            RunTarget::Demo(app) => app.name(),
        }
    }
}

/// Resolve a user-supplied scenario name for `--trace` / `--flame` /
/// `--chrome-trace`: experiment names come from the [`EXPERIMENTS`]
/// registry (never a hardcoded subset), app names from
/// [`AppKind::ALL`].
///
/// # Errors
///
/// An unknown name returns the full list of valid spellings, so the
/// error message stays in sync with the registry by construction.
pub fn resolve_target(name: &str) -> Result<RunTarget, String> {
    if let Some(&canonical) = EXPERIMENTS.iter().find(|&&e| e == name) {
        return Ok(RunTarget::Experiment(canonical));
    }
    if let Some(&app) = AppKind::ALL.iter().find(|a| a.name() == name) {
        return Ok(RunTarget::Demo(app));
    }
    let apps: Vec<&str> = AppKind::ALL.iter().map(|a| a.name()).collect();
    Err(format!(
        "unknown scenario '{name}'; valid experiments: {}; valid demo apps: {}",
        EXPERIMENTS.join(", "),
        apps.join(", ")
    ))
}

/// The contended single-application demo used by `repro --trace` (and
/// as the `--flame`/`--chrome-trace` demo target): enough instances to
/// overlap on four PFUs, with a trace ring large enough to usually keep
/// the whole timeline.
pub fn demo_scenario(app: AppKind, quick: bool) -> Scenario {
    let (instances, passes) = if quick { (3, 4) } else { (5, 12) };
    Scenario::new(app)
        .instances(instances)
        .passes(passes)
        .quantum(QUANTUM_1MS)
        .trace_capacity(1 << 20)
}

fn quantum_label(q: u64) -> &'static str {
    match q {
        QUANTUM_10MS => "10ms",
        QUANTUM_1MS => "1ms",
        QUANTUM_100MS => "100ms",
        _ => "q",
    }
}

fn app_label(app: AppKind) -> &'static str {
    match app {
        AppKind::Alpha => "Alpha",
        AppKind::Echo => "Echo",
        AppKind::Twofish => "Twofish",
    }
}

/// **Figure 2 — Basic Scheduling Test.** Completion time vs. 1–8
/// concurrent instances for {Echo, Alpha, Twofish} × {Round Robin,
/// Random} replacement × {10 ms, 1 ms} quanta. Hardware-only dispatch,
/// no sharing.
pub fn fig2_plan(scale: &Scale) -> ExperimentPlan {
    let mut plan = ExperimentPlan::new("fig2");
    for app in [AppKind::Echo, AppKind::Alpha, AppKind::Twofish] {
        let (size, passes) = scale.sizing(app);
        for (policy, pname) in [
            (PolicyKind::RoundRobin, "Round Robin"),
            (PolicyKind::Random { seed: scale.seed }, "Random"),
        ] {
            for quantum in [QUANTUM_10MS, QUANTUM_1MS] {
                plan.instance_sweep(
                    format!("{}, {}, {}", app_label(app), pname, quantum_label(quantum)),
                    scale.max_instances,
                    |n| {
                        Scenario::new(app)
                            .instances(n)
                            .size(size)
                            .passes(passes)
                            .quantum(quantum)
                            .policy(policy)
                    },
                );
            }
        }
    }
    plan
}

/// Serial wrapper over [`fig2_plan`].
pub fn fig2(scale: &Scale) -> SeriesSet {
    fig2_plan(scale).execute(1).0
}

/// **Figure 3 — Software Dispatch Test.** The same axes, comparing
/// round-robin circuit switching against deferring to the software
/// alternative once the array is full. The paper plots Echo and Alpha
/// (noting Twofish tracks Alpha); we emit all three.
pub fn fig3_plan(scale: &Scale) -> ExperimentPlan {
    let mut plan = ExperimentPlan::new("fig3");
    for app in [AppKind::Echo, AppKind::Alpha, AppKind::Twofish] {
        let (size, passes) = scale.sizing(app);
        for quantum in [QUANTUM_10MS, QUANTUM_1MS] {
            plan.instance_sweep(
                format!("{}, Round Robin, {}", app_label(app), quantum_label(quantum)),
                scale.max_instances,
                |n| {
                    Scenario::new(app)
                        .instances(n)
                        .size(size)
                        .passes(passes)
                        .quantum(quantum)
                        .policy(PolicyKind::RoundRobin)
                },
            );
            plan.instance_sweep(
                format!("{}, Soft, {}", app_label(app), quantum_label(quantum)),
                scale.max_instances,
                |n| {
                    Scenario::new(app)
                        .instances(n)
                        .size(size)
                        .passes(passes)
                        .quantum(quantum)
                        .policy(PolicyKind::RoundRobin)
                        .mode(DispatchMode::SoftwareFallback)
                },
            );
        }
    }
    plan
}

/// Serial wrapper over [`fig3_plan`].
pub fn fig3(scale: &Scale) -> SeriesSet {
    fig3_plan(scale).execute(1).0
}

/// **T-acc — the speedup claim.** Single-instance accelerated vs.
/// pure-software completion per application; the paper states "all runs
/// performed an order of magnitude faster than the unaccelerated
/// applications". Series: per app, `x=0` accelerated cycles, `x=1`
/// software cycles, plus a `speedup_factor` series with the ratios
/// (derived in the plan's finish pass once both runs are in).
pub fn speedup_plan(scale: &Scale) -> ExperimentPlan {
    let mut plan = ExperimentPlan::new("speedup");
    for app in AppKind::ALL {
        let (size, passes) = scale.sizing(app);
        let series = format!("{}_cycles", app.name());
        plan.scenario_point(
            series.clone(),
            0.0,
            Scenario::new(app).size(size).passes(passes).quantum(QUANTUM_10MS),
        );
        plan.scenario_point(
            series,
            1.0,
            Scenario::new(app).software_only().size(size).passes(passes).quantum(QUANTUM_10MS),
        );
    }
    plan.with_finish(|set| {
        let mut ratios = Series::new("speedup_factor");
        for (i, app) in AppKind::ALL.iter().enumerate() {
            let s = set
                .series_named(&format!("{}_cycles", app.name()))
                .expect("per-app cycle series");
            let accelerated = s.y_at(0.0).expect("accelerated point");
            let software = s.y_at(1.0).expect("software point");
            ratios.push(i as f64, software / accelerated);
        }
        set.push(ratios);
    })
}

/// Serial wrapper over [`speedup_plan`].
pub fn speedup(scale: &Scale) -> SeriesSet {
    speedup_plan(scale).execute(1).0
}

/// **A1 — replacement policies.** Alpha at the 1 ms quantum (heavy
/// swapping) under all five victim-selection policies.
pub fn ablation_policies_plan(scale: &Scale) -> ExperimentPlan {
    let mut plan = ExperimentPlan::new("ablation_policies");
    let (size, passes) = scale.sizing(AppKind::Alpha);
    for policy in [
        PolicyKind::RoundRobin,
        PolicyKind::Random { seed: scale.seed },
        PolicyKind::Lru,
        PolicyKind::SecondChance,
        PolicyKind::Fifo,
    ] {
        plan.instance_sweep(policy.name().to_string(), scale.max_instances, |n| {
            Scenario::new(AppKind::Alpha)
                .instances(n)
                .size(size)
                .passes(passes)
                .quantum(QUANTUM_1MS)
                .policy(policy)
        });
    }
    plan
}

/// Serial wrapper over [`ablation_policies_plan`].
pub fn ablation_policies(scale: &Scale) -> SeriesSet {
    ablation_policies_plan(scale).execute(1).0
}

/// **A2 — quantum sweep**, including the 100 ms NT/BSD point the
/// discussion predicts would help further.
pub fn ablation_quanta_plan(scale: &Scale) -> ExperimentPlan {
    let mut plan = ExperimentPlan::new("ablation_quanta");
    let (size, passes) = scale.sizing(AppKind::Alpha);
    for quantum in [QUANTUM_100MS, QUANTUM_10MS, QUANTUM_1MS] {
        plan.instance_sweep(
            format!("Alpha, RR, {}", quantum_label(quantum)),
            scale.max_instances,
            |n| {
                Scenario::new(AppKind::Alpha)
                    .instances(n)
                    .size(size)
                    .passes(passes)
                    .quantum(quantum)
                    .policy(PolicyKind::RoundRobin)
            },
        );
    }
    plan
}

/// Serial wrapper over [`ablation_quanta_plan`].
pub fn ablation_quanta(scale: &Scale) -> SeriesSet {
    ablation_quanta_plan(scale).execute(1).0
}

/// **A3 — PFU count.** The paper limited the chip to 4 PFUs "to
/// demonstrate the system behaviour under contention" and estimates it
/// could hold twice that.
pub fn ablation_pfus_plan(scale: &Scale) -> ExperimentPlan {
    let mut plan = ExperimentPlan::new("ablation_pfus");
    let (size, passes) = scale.sizing(AppKind::Alpha);
    for pfus in [2usize, 4, 6, 8] {
        plan.instance_sweep(
            format!("Alpha, RR, 10ms, {pfus} PFUs"),
            scale.max_instances,
            |n| {
                Scenario::new(AppKind::Alpha)
                    .instances(n)
                    .size(size)
                    .passes(passes)
                    .quantum(QUANTUM_10MS)
                    .pfus(pfus)
            },
        );
    }
    plan
}

/// Serial wrapper over [`ablation_pfus_plan`].
pub fn ablation_pfus(scale: &Scale) -> SeriesSet {
    ablation_pfus_plan(scale).execute(1).0
}

/// **A4 — split configuration.** The §4.1 design saves only state
/// frames on unload; the ablation also writes back the full static
/// configuration, doubling bus traffic per swap.
pub fn ablation_config_split_plan(scale: &Scale) -> ExperimentPlan {
    let mut plan = ExperimentPlan::new("ablation_config_split");
    let (size, passes) = scale.sizing(AppKind::Alpha);
    for (save_full, name) in [(false, "state frames only"), (true, "full config writeback")] {
        let costs = CostModel { save_full_config_on_unload: save_full, ..CostModel::default() };
        plan.instance_sweep(name.to_string(), scale.max_instances, |n| {
            Scenario::new(AppKind::Alpha)
                .instances(n)
                .size(size)
                .passes(passes)
                .quantum(QUANTUM_1MS)
                .costs(costs)
        });
    }
    plan
}

/// Serial wrapper over [`ablation_config_split_plan`].
pub fn ablation_config_split(scale: &Scale) -> SeriesSet {
    ablation_config_split_plan(scale).execute(1).0
}

/// **A5 — dispatch-TLB capacity.** With fewer TLB slots than live
/// tuples, resident circuits take mapping faults (§4.2's cheap path) —
/// visible but far milder than reconfiguration.
pub fn ablation_tlb_plan(scale: &Scale) -> ExperimentPlan {
    let mut plan = ExperimentPlan::new("ablation_tlb");
    let (size, passes) = scale.sizing(AppKind::Alpha);
    for slots in [2usize, 4, 16] {
        plan.instance_sweep(format!("{slots} TLB slots"), scale.max_instances, |n| {
            Scenario::new(AppKind::Alpha)
                .instances(n)
                .size(size)
                .passes(passes)
                .quantum(QUANTUM_10MS)
                .tlb_capacity(slots)
        });
    }
    plan
}

/// Serial wrapper over [`ablation_tlb_plan`].
pub fn ablation_tlb(scale: &Scale) -> SeriesSet {
    ablation_tlb_plan(scale).execute(1).0
}

/// **A7 — the software-dispatch crossover.** §5.1.3 concludes software
/// dispatch "proved useful only during periods when applications just
/// get short quanta". Sweep the quantum at 8 concurrent echo instances:
/// as quanta shrink, per-quantum reconfiguration overhead explodes and
/// deferring to the software alternative wins.
pub fn ablation_soft_crossover_plan(scale: &Scale) -> ExperimentPlan {
    let mut plan = ExperimentPlan::new("ablation_soft_crossover");
    let (size, passes) = scale.sizing(AppKind::Echo);
    let n = scale.max_instances;
    for (mode, name) in [
        (DispatchMode::HardwareOnly, "circuit switching"),
        (DispatchMode::SoftwareFallback, "software dispatch"),
    ] {
        for quantum in [QUANTUM_10MS, QUANTUM_1MS, 30_000, 10_000] {
            plan.scenario_point(
                name,
                quantum as f64,
                Scenario::new(AppKind::Echo)
                    .instances(n)
                    .size(size)
                    .passes(passes)
                    .quantum(quantum)
                    .policy(PolicyKind::RoundRobin)
                    .mode(mode),
            );
        }
    }
    plan
}

/// Serial wrapper over [`ablation_soft_crossover_plan`].
pub fn ablation_soft_crossover(scale: &Scale) -> SeriesSet {
    ablation_soft_crossover_plan(scale).execute(1).0
}

/// **A8 — circuit sharing (§4.2).** The paper disables sharing "since we
/// are interested in the effect of overloading", noting that "in the
/// final system applications using the same circuits would attempt to
/// share instances, just changing the state in a single PFU". With
/// sharing on, N instances of one application stop contending: handovers
/// move ~tens of state words instead of 54 KB.
pub fn ablation_sharing_plan(scale: &Scale) -> ExperimentPlan {
    let mut plan = ExperimentPlan::new("ablation_sharing");
    let (size, passes) = scale.sizing(AppKind::Alpha);
    for (sharing, name) in [(false, "sharing off (paper setup)"), (true, "sharing on")] {
        plan.instance_sweep(name.to_string(), scale.max_instances, |n| {
            Scenario::new(AppKind::Alpha)
                .instances(n)
                .size(size)
                .passes(passes)
                .quantum(QUANTUM_1MS)
                .policy(PolicyKind::RoundRobin)
                .sharing(sharing)
        });
    }
    plan
}

/// Serial wrapper over [`ablation_sharing_plan`].
pub fn ablation_sharing(scale: &Scale) -> SeriesSet {
    ablation_sharing_plan(scale).execute(1).0
}

/// **D1 — dynamic scheduling loads** (the paper's §6 future work): mean
/// job turnaround vs. offered load (mean inter-arrival gap), for the
/// three management strategies. Series x = mean inter-arrival cycles.
pub fn dynamic_load_plan(scale: &Scale) -> ExperimentPlan {
    use crate::dynamic::DynamicLoad;
    let mut plan = ExperimentPlan::new("dynamic_load");
    let (size, passes) = {
        let (s, p) = scale.sizing(AppKind::Alpha);
        (s, (p / 4).max(1))
    };
    let gaps = [2_000_000u64, 500_000, 125_000, 30_000];
    for (name, mode, sharing) in [
        ("circuit switching", DispatchMode::HardwareOnly, false),
        ("software dispatch", DispatchMode::SoftwareFallback, false),
        ("circuit sharing", DispatchMode::HardwareOnly, true),
    ] {
        for gap in gaps {
            let load = DynamicLoad {
                jobs: 2 * scale.max_instances,
                mean_interarrival: gap,
                job_size: (size, passes),
                quantum: QUANTUM_1MS,
                mode,
                sharing,
                seed: scale.seed,
                ..DynamicLoad::default()
            };
            plan.push_job(name, move || {
                let result = load.run().unwrap_or_else(|e| panic!("{name} gap={gap}: {e}"));
                assert!(result.valid, "{name} gap={gap}: checksum mismatch");
                JobOutput::point(gap as f64, result.mean_turnaround, result.makespan)
                    .with_breakdown(gap as f64, result.total_cycles, result.ledger)
                    .with_attribution(result.attributed)
            });
        }
    }
    plan
}

/// Serial wrapper over [`dynamic_load_plan`].
pub fn dynamic_load(scale: &Scale) -> SeriesSet {
    dynamic_load_plan(scale).execute(1).0
}

/// Outcome codes for one fault-campaign cell (the y values of the
/// `outcome:` series and the x values of `outcome_counts`).
pub mod outcome {
    /// No fault ever reached the run.
    pub const CLEAN: f64 = 0.0;
    /// Faults occurred; retries/scrub repaired everything and all
    /// checksums match at full hardware throughput.
    pub const RECOVERED: f64 = 1.0;
    /// All checksums match, but the run finished degraded — software
    /// failover or a quarantined slot.
    pub const DEGRADED: f64 = 2.0;
    /// At least one process was killed or produced a wrong checksum.
    pub const FAILED: f64 = 3.0;
}

/// **F1 — fault-injection campaign (DESIGN.md §9).** Five Alpha
/// instances contend on four PFUs (so configuration traffic is
/// sustained, giving every fault kind a surface) while the fault unit
/// injects one kind at three severities under three recovery policies:
///
/// * kinds — `seu` (configuration-SRAM upsets, mean inter-arrival
///   shrinking 4× per severity step), `transit` (per-transfer
///   corruption probability 0.1/0.3/0.6), `stuck` (slot 0's `done`
///   line sticks at cycle `target >> (severity-1)` — earlier is worse);
/// * policies — `retry` ([`RecoveryPolicy::retry_only`]; hard faults
///   eventually kill), `failover` (one retry then software dispatch,
///   never quarantine), `full` (the default ladder plus periodic
///   scrubbing).
///
/// Each cell emits its makespan on `"{kind}, {policy}"`, an
/// [`outcome`] code on `"outcome: {kind}, {policy}"`, the
/// fault-attributed cycles on `"recovery_cycles: {kind}, {policy}"`,
/// and a cycle-attribution row (the `fault_detection` /
/// `fault_recovery` ledger columns). A fault-free `baseline` cell
/// (watchdog armed, injector off) pins the zero-overhead point, and a
/// finish pass folds every outcome code into `outcome_counts`
/// (x = code, y = cells).
pub fn fault_campaign_plan(scale: &Scale) -> ExperimentPlan {
    let mut plan = ExperimentPlan::new("fault_campaign");
    let (size, passes) = scale.sizing(AppKind::Alpha);
    let target = scale.target_cycles;
    let base = move || {
        Scenario::new(AppKind::Alpha)
            .instances(5)
            .size(size)
            .passes(passes)
            .quantum(QUANTUM_1MS)
            .policy(PolicyKind::RoundRobin)
            .pfus(4)
            .software_alts()
            .watchdog(5_000)
    };

    fault_campaign_cell(&mut plan, "baseline".into(), 0.0, base());

    let policies: [(&str, RecoveryPolicy, bool); 3] = [
        ("retry", RecoveryPolicy::retry_only(2), false),
        (
            "failover",
            RecoveryPolicy { max_retries: 1, software_failover: true, quarantine_threshold: None },
            false,
        ),
        ("full", RecoveryPolicy::default(), true),
    ];
    for (pname, policy, scrub) in policies {
        for kind in ["seu", "transit", "stuck"] {
            for severity in 1u32..=3 {
                let mut fp = FaultPlan {
                    seed: scale.seed + u64::from(severity),
                    ..FaultPlan::default()
                };
                match kind {
                    "seu" => fp.seu_mean_cycles = (target >> (2 * (severity - 1))).max(1),
                    "transit" => fp.transit_error_rate = [0.1, 0.3, 0.6][severity as usize - 1],
                    _ => fp.stuck_pfu = Some((0, target >> (severity - 1))),
                }
                if scrub {
                    fp.scrub_interval = Some((target / 8).max(1));
                }
                fault_campaign_cell(
                    &mut plan,
                    format!("{kind}, {pname}"),
                    f64::from(severity),
                    base().faults(fp).recovery(policy),
                );
            }
        }
    }

    plan.with_finish(|set| {
        let mut counts = [0u64; 4];
        for s in set.series.iter().filter(|s| s.name.starts_with("outcome: ")) {
            for p in &s.points {
                counts[(p.y as usize).min(3)] += 1;
            }
        }
        let mut summary = Series::new("outcome_counts");
        for (code, &n) in counts.iter().enumerate() {
            summary.push(code as f64, n as f64);
        }
        set.push(summary);
    })
}

/// One campaign simulation: makespan on `series`, outcome and
/// fault-cycle overhead on sibling series. Unlike the figure jobs a
/// cell does *not* assert validity — failures are data here (the
/// [`outcome::FAILED`] row), only simulation errors panic.
fn fault_campaign_cell(plan: &mut ExperimentPlan, series: String, x: f64, scenario: Scenario) {
    let label = series.clone();
    let outcome_series = format!("outcome: {label}");
    let overhead_series = format!("recovery_cycles: {label}");
    plan.push_job(series, move || {
        let result = scenario.run().unwrap_or_else(|e| panic!("{label} x={x}: {e}"));
        let s = &result.stats;
        let code = if !result.valid {
            outcome::FAILED
        } else if s.fault_failovers > 0 || s.quarantines > 0 {
            outcome::DEGRADED
        } else if s.pfu_faults > 0 || s.crc_errors > 0 || s.recovery_retries > 0 {
            outcome::RECOVERED
        } else {
            outcome::CLEAN
        };
        let overhead = result.ledger.fault_detection + result.ledger.fault_recovery;
        JobOutput::point(x, result.makespan as f64, result.makespan)
            .with_breakdown(x, result.total_cycles, result.ledger)
            .with_attribution(result.attributed)
            .with_extra(outcome_series, x, code)
            .with_extra(overhead_series, x, overhead as f64)
    });
}

/// Serial wrapper over [`fault_campaign_plan`].
pub fn fault_campaign(scale: &Scale) -> SeriesSet {
    fault_campaign_plan(scale).execute(1).0
}

/// **A6 — interruptible long instructions (§4.4).** A synthetic process
/// loops on a 50 000-cycle custom instruction. With the status-register
/// mechanism the scheduler preempts on time; with uninterruptible
/// instructions every quantum stretches by up to the instruction
/// latency. Series report the *worst observed scheduling overshoot* in
/// cycles for each mode. (Fixed synthetic workload — takes no
/// [`Scale`].)
pub fn ablation_long_instructions_plan() -> ExperimentPlan {
    const LATENCY: u32 = 70_000;
    let mut plan = ExperimentPlan::new("ablation_longinstr");
    for (interruptible, name) in
        [(true, "interruptible (status register)"), (false, "run to completion")]
    {
        plan.push_job(name, move || {
            let program = proteus_isa::assemble(
                "start:\n\
                 \x20   ldr r2, =100\n\
                 loop:\n\
                 \x20   pfu 0, r1, r0, r0\n\
                 \x20   subs r2, r2, #1\n\
                 \x20   bne loop\n\
                 \x20   mov r0, #0\n\
                 \x20   swi #0\n",
            )
            .expect("long-instruction program assembles");
            let quantum = QUANTUM_1MS;
            let mut machine = Machine::new(MachineConfig {
                kernel: KernelConfig { quantum, ..KernelConfig::default() },
                rfu: RfuConfig { interruptible, ..RfuConfig::default() },
            });
            // Two competitors so quanta actually matter.
            for _ in 0..2 {
                let entry = program.symbol("start").expect("start");
                let spec = SpawnSpec::new(&program).entry(entry).circuit(CircuitSpec {
                    cid: 0,
                    circuit: Box::new(FixedLatency::new("long", LATENCY, 4, |a, _| a)),
                    software_alt: None,
                    image: None,
                });
                machine.spawn(spec).expect("spawn");
            }
            let report = machine.run(50_000_000_000).expect("run");
            assert!(report.killed.is_empty());
            // Overshoot proxy: with N quanta of Q cycles and S switches, a
            // perfectly timely scheduler switches every ~Q cycles. We report
            // observed mean inter-switch distance minus Q.
            let switches = report.stats.context_switches.max(1);
            let mean_gap = report.makespan / switches;
            let overshoot = mean_gap.saturating_sub(quantum);
            JobOutput {
                points: vec![(0.0, overshoot as f64), (1.0, report.makespan as f64)],
                sim_cycles: report.makespan,
                breakdown: vec![(0.0, machine.cycles(), report.ledger)],
                attributed: report.attributed,
                extra: Vec::new(),
            }
        });
    }
    plan
}

/// Serial wrapper over [`ablation_long_instructions_plan`].
pub fn ablation_long_instructions() -> SeriesSet {
    ablation_long_instructions_plan().execute(1).0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale { target_cycles: 400_000, max_instances: 3, seed: 7 }
    }

    #[test]
    fn fig2_produces_twelve_series() {
        let set = fig2(&tiny());
        assert_eq!(set.series.len(), 12);
        for s in &set.series {
            assert_eq!(s.points.len(), 3, "{}", s.name);
            // Completion time grows with instances.
            assert!(s.points[2].y > s.points[0].y, "{}", s.name);
        }
    }

    #[test]
    fn fig3_soft_series_exist() {
        let set = fig3(&tiny());
        assert_eq!(set.series.len(), 12);
        assert!(set.series.iter().any(|s| s.name.contains("Soft")));
    }

    #[test]
    fn speedup_is_substantial() {
        let set = speedup(&tiny());
        let ratios = set.series_named("speedup_factor").expect("ratios");
        for p in &ratios.points {
            assert!(p.y > 1.5, "speedup {} too small", p.y);
        }
    }

    #[test]
    fn long_instruction_ablation_shows_latency_gap() {
        let set = ablation_long_instructions();
        let good = set.series_named("interruptible (status register)").expect("series").points[0].y;
        let bad = set.series_named("run to completion").expect("series").points[0].y;
        assert!(bad > good, "uninterruptible overshoot {bad} should exceed {good}");
    }

    #[test]
    fn registry_covers_every_experiment() {
        let scale = tiny();
        for name in EXPERIMENTS {
            let plan = plan_for(name, &scale).unwrap_or_else(|| panic!("{name} missing"));
            assert!(plan.job_count() > 0, "{name} has no jobs");
        }
        assert!(plan_for("nonsense", &scale).is_none());
    }

    #[test]
    fn fig2_plan_is_parallel_deterministic() {
        // The core --jobs guarantee: identical SeriesSet (hence
        // byte-identical CSV) at any worker count.
        let scale = Scale { target_cycles: 200_000, max_instances: 2, seed: 7 };
        let (serial, m1) = fig2_plan(&scale).execute(1);
        let (parallel, m4) = fig2_plan(&scale).execute(4);
        assert_eq!(serial, parallel);
        assert_eq!(serial.to_csv(), parallel.to_csv());
        // The attribution table carries the same guarantee.
        assert_eq!(m1.breakdown, m4.breakdown);
        assert_eq!(m1.breakdown.to_csv(), m4.breakdown.to_csv());
        assert_eq!(m1.breakdown.rows.len(), m1.jobs, "one row per scenario job");
    }

    #[test]
    fn fault_campaign_emits_every_cell_with_outcomes() {
        let set = fault_campaign(&tiny());
        // 1 baseline + 9 grid series, each with outcome + overhead
        // siblings, plus the outcome_counts summary.
        assert_eq!(set.series.len(), 31, "{:?}", series_names(&set));
        let counts = set.series_named("outcome_counts").expect("summary");
        assert_eq!(counts.points.len(), 4);
        let cells: f64 = counts.points.iter().map(|p| p.y).sum();
        assert!((cells - 28.0).abs() < 1e-9, "28 cells counted, got {cells}");
        // The baseline saw no faults at all.
        let baseline = set.series_named("outcome: baseline").expect("baseline outcome");
        assert_eq!(baseline.points[0].y, outcome::CLEAN);
        let overhead = set.series_named("recovery_cycles: baseline").expect("baseline overhead");
        assert_eq!(overhead.points[0].y, 0.0);
    }

    fn series_names(set: &SeriesSet) -> Vec<&str> {
        set.series.iter().map(|s| s.name.as_str()).collect()
    }

    #[test]
    fn speedup_finish_hook_matches_serial_ratio() {
        let scale = tiny();
        let (set, metrics) = speedup_plan(&scale).execute(3);
        let ratios = set.series_named("speedup_factor").expect("ratios");
        assert_eq!(ratios.points.len(), AppKind::ALL.len());
        // Ratio series is appended last, as the eager generator did.
        assert_eq!(set.series.last().expect("last").name, "speedup_factor");
        assert!(metrics.sim_cycles > 0);
    }
}
