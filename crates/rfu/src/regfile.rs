//! The RFU's 16 × 32-bit coprocessor register file (paper §5).

/// Coprocessor register file.
///
/// By kernel convention register 15 holds the current PID (the
/// workstation-class processor's PID register of §4.2); the kernel writes
/// it on every context switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegFile {
    regs: [u32; 16],
}

impl RegFile {
    /// A zeroed register file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read register `index` (wraps at 16, like the 4-bit field).
    pub fn read(&self, index: u8) -> u32 {
        self.regs[(index & 0xF) as usize]
    }

    /// Write register `index`.
    pub fn write(&mut self, index: u8, value: u32) {
        self.regs[(index & 0xF) as usize] = value;
    }

    /// Snapshot for a context switch.
    pub fn save(&self) -> [u32; 16] {
        self.regs
    }

    /// Restore a snapshot.
    pub fn restore(&mut self, regs: [u32; 16]) {
        self.regs = regs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut rf = RegFile::new();
        rf.write(3, 0xABCD);
        assert_eq!(rf.read(3), 0xABCD);
        assert_eq!(rf.read(4), 0);
    }

    #[test]
    fn save_restore() {
        let mut rf = RegFile::new();
        rf.write(0, 1);
        rf.write(15, 42);
        let snap = rf.save();
        rf.write(0, 99);
        rf.restore(snap);
        assert_eq!(rf.read(0), 1);
        assert_eq!(rf.read(15), 42);
    }
}
