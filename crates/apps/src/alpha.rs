//! Alpha-blending workload: reference implementation and circuits.
//!
//! Pixels are RGBA8888 words (R in bits 7:0 … A in bits 31:24). The
//! custom instruction blends one whole pixel: `op_a` is the source pixel
//! (its A channel is the blend factor), `op_b` the destination pixel; the
//! result keeps the destination's alpha. The 6-cycle latency models three
//! sequential channel blends on the shared-multiplier datapath of the
//! gate-level channel circuit
//! ([`proteus_fabric::library::alpha_blend_channel`], 2 cycles per
//! channel), which tests prove arithmetic-equivalent per channel.

use proteus_fabric::library::alpha_blend_ref;
use proteus_rfu::behavioral::FixedLatency;
use proteus_rfu::PfuCircuit;

/// Cycles per pixel-blend custom instruction (3 channels × 2 cycles).
pub const BLEND_LATENCY: u32 = 6;

/// Blend a whole RGBA pixel: each colour channel of `src` over `dst`
/// using `src`'s alpha; the result's alpha is `dst`'s.
pub fn blend_pixel(src: u32, dst: u32) -> u32 {
    let alpha = (src >> 24 & 0xFF) as u8;
    let mut out = dst & 0xFF00_0000;
    for shift in [0u32, 8, 16] {
        let s = (src >> shift & 0xFF) as u8;
        let d = (dst >> shift & 0xFF) as u8;
        out |= u32::from(alpha_blend_ref(s, d, alpha)) << shift;
    }
    out
}

/// Blend `src` over `dst` in place.
///
/// # Panics
///
/// Panics if the buffers differ in length.
pub fn blend_image(src: &[u32], dst: &mut [u32]) {
    assert_eq!(src.len(), dst.len(), "image size mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = blend_pixel(s, *d);
    }
}

/// The hardware implementation of the pixel-blend custom instruction.
pub fn blend_circuit() -> Box<dyn PfuCircuit> {
    Box::new(FixedLatency::new("alpha_pixel", BLEND_LATENCY, 16, blend_pixel))
}

/// Deterministic pseudo-random pixel data (xorshift32), shared between
/// the host reference and the guest program generator.
pub fn test_pixels(n: usize, mut seed: u32) -> Vec<u32> {
    (0..n)
        .map(|_| {
            seed ^= seed << 13;
            seed ^= seed >> 17;
            seed ^= seed << 5;
            seed
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints() {
        let src_opaque = 0xFF00_00FF; // alpha 255, red 255
        let dst = 0x8800_FF00; // green
        let out = blend_pixel(src_opaque, dst);
        assert_eq!(out & 0xFF, 0xFF, "opaque source wins on red");
        assert_eq!(out >> 8 & 0xFF, 0, "opaque source wins on green");
        assert_eq!(out >> 24, 0x88, "destination alpha preserved");

        let src_clear = 0x0000_00FF;
        let out = blend_pixel(src_clear, dst);
        assert_eq!(out, dst, "transparent source leaves destination");
    }

    #[test]
    fn circuit_matches_reference() {
        let mut c = blend_circuit();
        for (&s, &d) in test_pixels(16, 1).iter().zip(&test_pixels(16, 2)) {
            let mut init = true;
            let out = loop {
                let o = c.clock(s, d, init);
                init = false;
                if o.done {
                    break o.result;
                }
            };
            assert_eq!(out, blend_pixel(s, d));
        }
    }

    #[test]
    fn blend_image_in_place() {
        let src = test_pixels(64, 7);
        let mut dst = test_pixels(64, 9);
        let expect: Vec<u32> = src.iter().zip(&dst).map(|(&s, &d)| blend_pixel(s, d)).collect();
        blend_image(&src, &mut dst);
        assert_eq!(dst, expect);
    }

    #[test]
    fn test_pixels_deterministic() {
        assert_eq!(test_pixels(10, 42), test_pixels(10, 42));
        assert_ne!(test_pixels(10, 42), test_pixels(10, 43));
    }
}
