//! Determinism of the fault-injection campaign (DESIGN.md §9): a
//! [`FaultPlan`] is driven by one seeded RNG per run, so the campaign's
//! CSV artefacts must be byte-identical at ANY worker count — fault
//! timing may never leak host scheduling into the results. This is the
//! same contract `repro --jobs N` relies on for the golden-file diff in
//! CI, checked here across random scales and seeds.

use proptest::prelude::*;
use proteus::experiment::{fault_campaign_plan, Scale};

proptest! {
    // Each case runs the 28-cell campaign twice; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn campaign_artifacts_are_byte_identical_across_worker_counts(
        seed in 0u64..1_000,
        target_kcycles in 300u64..600,
    ) {
        let scale = Scale { target_cycles: target_kcycles * 1_000, max_instances: 3, seed };
        let (serial_set, serial_metrics) = fault_campaign_plan(&scale).execute(1);
        let (parallel_set, parallel_metrics) = fault_campaign_plan(&scale).execute(8);
        prop_assert_eq!(
            serial_set.to_csv(),
            parallel_set.to_csv(),
            "campaign CSV must not depend on worker count"
        );
        prop_assert_eq!(
            serial_metrics.breakdown.to_csv(),
            parallel_metrics.breakdown.to_csv(),
            "cycle-attribution CSV must not depend on worker count"
        );
        prop_assert_eq!(serial_metrics.sim_cycles, parallel_metrics.sim_cycles);
    }
}
