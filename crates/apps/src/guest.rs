//! Guest assembly programs for the three workloads.
//!
//! Each builder emits a complete ProteanARM assembly program (data
//! first, code after, so the literal pool stays in range of the code)
//! plus the *expected checksum* computed by the pure-Rust reference —
//! the guest exits with its own checksum in `r0`, so every scheduling
//! experiment doubles as an end-to-end correctness check of the CPU,
//! RFU, kernel and circuits.
//!
//! Accelerated programs also carry the registered **software
//! alternative** for each custom instruction, written against the
//! `ldop`/`stres`/`retsd` ABI of §4.3 (operands read from the RFU's
//! latched operand registers; the hardware writes the staged result into
//! the faulting instruction's destination on `retsd`). The routines
//! preserve every register they touch, because they are entered from
//! arbitrary points in the application.

use std::fmt::Write as _;

use proteus_isa::{assemble, Program};

use crate::alpha;
use crate::echo;
use crate::twofish::Twofish;

/// A built guest program plus ground truth.
#[derive(Debug, Clone)]
pub struct BuiltProgram {
    /// The assembled binary.
    pub program: Program,
    /// Checksum the process must exit with.
    pub expected_checksum: u32,
}

fn words_directive(out: &mut String, label: &str, data: &[u32]) {
    let _ = writeln!(out, "{label}:");
    for chunk in data.chunks(8) {
        let line: Vec<String> = chunk.iter().map(|w| format!("0x{w:08X}")).collect();
        let _ = writeln!(out, "    .word {}", line.join(", "));
    }
}

fn checksum(words: &[u32]) -> u32 {
    words.iter().fold(0u32, |acc, &w| acc.wrapping_add(w))
}

/// The shared checksum epilogue: sums `count` words at `label` into
/// `r0` and exits.
fn checksum_epilogue(label: &str, count: usize) -> String {
    format!(
        "    ldr r0, ={label}\n\
         \x20   ldr r2, ={count}\n\
         \x20   mov r1, #0\n\
         sum_loop:\n\
         \x20   ldr r3, [r0], #4\n\
         \x20   add r1, r1, r3\n\
         \x20   subs r2, r2, #1\n\
         \x20   bne sum_loop\n\
         \x20   mov r0, r1\n\
         \x20   swi #0\n"
    )
}

/// One software alpha-blend channel: `(s·α + d·(255−α) + …) >> 8` with
/// the same divide-by-255 approximation as the circuit. Reads channel
/// `shift` of `src`/`dst`, ORs into `out`.
#[allow(clippy::too_many_arguments)]
fn sw_blend_channel(
    src: &str,
    dst: &str,
    alpha: &str,
    nalpha: &str,
    out: &str,
    t0: &str,
    t1: &str,
    t2: &str,
    shift: u32,
) -> String {
    let mut s = String::new();
    if shift == 0 {
        let _ = writeln!(s, "    and {t0}, {src}, #255");
        let _ = writeln!(s, "    and {t1}, {dst}, #255");
    } else {
        let _ = writeln!(s, "    mov {t0}, {src}, lsr #{shift}");
        let _ = writeln!(s, "    and {t0}, {t0}, #255");
        let _ = writeln!(s, "    mov {t1}, {dst}, lsr #{shift}");
        let _ = writeln!(s, "    and {t1}, {t1}, #255");
    }
    let _ = writeln!(s, "    mul {t2}, {t0}, {alpha}");
    let _ = writeln!(s, "    mla {t2}, {t1}, {nalpha}, {t2}");
    let _ = writeln!(s, "    add {t2}, {t2}, {t2}, lsr #8");
    let _ = writeln!(s, "    add {t2}, {t2}, #1");
    let _ = writeln!(s, "    mov {t2}, {t2}, lsr #8");
    let _ = writeln!(s, "    and {t2}, {t2}, #255");
    if shift == 0 {
        let _ = writeln!(s, "    orr {out}, {out}, {t2}");
    } else {
        let _ = writeln!(s, "    orr {out}, {out}, {t2}, lsl #{shift}");
    }
    s
}

/// Build the accelerated alpha-blending program (one custom
/// instruction, CID 0). `src` is blended over `dst` in place for
/// `passes` passes.
pub fn alpha_accelerated(npix: usize, passes: u32, seed: u32) -> BuiltProgram {
    let src = alpha::test_pixels(npix, seed);
    let dst0 = alpha::test_pixels(npix, seed.wrapping_add(1));
    let mut source = String::from(".org 0\n");
    words_directive(&mut source, "src", &src);
    words_directive(&mut source, "dst", &dst0);
    let _ = write!(
        source,
        "start:\n\
         \x20   ldr r9, ={passes}\n\
         pass_loop:\n\
         \x20   ldr r0, =src\n\
         \x20   ldr r1, =dst\n\
         \x20   ldr r2, ={npix}\n\
         pix_loop:\n\
         \x20   ldr r3, [r0], #4\n\
         \x20   ldr r4, [r1]\n\
         \x20   pfu 0, r5, r3, r4\n\
         \x20   str r5, [r1], #4\n\
         \x20   subs r2, r2, #1\n\
         \x20   bne pix_loop\n\
         \x20   subs r9, r9, #1\n\
         \x20   bne pass_loop\n"
    );
    source.push_str(&checksum_epilogue("dst", npix));
    // Software alternative: whole-pixel blend under the §4.3 ABI.
    source.push_str("sw_blend:\n    push {r0-r11}\n    ldop r0, a\n    ldop r1, b\n");
    source.push_str("    mov r2, r0, lsr #24\n    rsb r3, r2, #255\n    and r6, r1, #0xFF000000\n");
    for shift in [0u32, 8, 16] {
        source.push_str(&sw_blend_channel("r0", "r1", "r2", "r3", "r6", "r7", "r8", "r9", shift));
    }
    source.push_str("    stres r6\n    pop {r0-r11}\n    retsd\n");

    // Ground truth.
    let mut dst = dst0;
    for _ in 0..passes {
        alpha::blend_image(&src, &mut dst);
    }
    BuiltProgram {
        program: assemble(&source).expect("alpha_accelerated assembles"),
        expected_checksum: checksum(&dst),
    }
}

/// Build the pure-software alpha program (no custom instructions): the
/// unaccelerated baseline for the speedup claim.
pub fn alpha_software(npix: usize, passes: u32, seed: u32) -> BuiltProgram {
    let src = alpha::test_pixels(npix, seed);
    let dst0 = alpha::test_pixels(npix, seed.wrapping_add(1));
    let mut source = String::from(".org 0\n");
    words_directive(&mut source, "src", &src);
    words_directive(&mut source, "dst", &dst0);
    let _ = write!(
        source,
        "start:\n\
         \x20   ldr r9, ={passes}\n\
         pass_loop:\n\
         \x20   ldr r0, =src\n\
         \x20   ldr r1, =dst\n\
         \x20   ldr r2, ={npix}\n\
         pix_loop:\n\
         \x20   ldr r3, [r0], #4\n\
         \x20   ldr r4, [r1]\n\
         \x20   mov r6, r3, lsr #24\n\
         \x20   rsb r7, r6, #255\n\
         \x20   and r5, r4, #0xFF000000\n"
    );
    for shift in [0u32, 8, 16] {
        source.push_str(&sw_blend_channel("r3", "r4", "r6", "r7", "r5", "r8", "r10", "r11", shift));
    }
    let _ = write!(
        source,
        "    str r5, [r1], #4\n\
         \x20   subs r2, r2, #1\n\
         \x20   bne pix_loop\n\
         \x20   subs r9, r9, #1\n\
         \x20   bne pass_loop\n"
    );
    source.push_str(&checksum_epilogue("dst", npix));

    let mut dst = dst0;
    for _ in 0..passes {
        alpha::blend_image(&src, &mut dst);
    }
    BuiltProgram {
        program: assemble(&source).expect("alpha_software assembles"),
        expected_checksum: checksum(&dst),
    }
}

/// Build the accelerated echo program: **two** custom instructions in a
/// tight loop (CID 0 = scale, CID 1 = saturating add).
pub fn echo_accelerated(
    nsamples: usize,
    passes: u32,
    delay: usize,
    gain: u32,
    seed: u32,
) -> BuiltProgram {
    assert!(delay > 0 && delay < nsamples, "delay must be within the buffer");
    let input = echo::test_samples(nsamples, seed);
    let mut source = String::from(".org 0\n");
    words_directive(&mut source, "input", &input);
    // A zero prefix directly before the output buffer stands in for the
    // y[n-D] history of the first D samples.
    let _ = writeln!(source, "zeros:\n    .space {}", delay * 4);
    let _ = writeln!(source, "output:\n    .space {}", nsamples * 4);
    let _ = write!(
        source,
        "start:\n\
         \x20   ldr r9, ={passes}\n\
         \x20   ldr r12, ={gain}\n\
         pass_loop:\n\
         \x20   ldr r0, =input\n\
         \x20   ldr r1, =output\n\
         \x20   ldr r4, =zeros\n\
         \x20   ldr r2, ={nsamples}\n\
         sample_loop:\n\
         \x20   ldr r3, [r0], #4\n\
         \x20   ldr r5, [r4], #4\n\
         \x20   pfu 0, r6, r5, r12\n\
         \x20   pfu 1, r7, r3, r6\n\
         \x20   str r7, [r1], #4\n\
         \x20   subs r2, r2, #1\n\
         \x20   bne sample_loop\n\
         \x20   subs r9, r9, #1\n\
         \x20   bne pass_loop\n"
    );
    source.push_str(&checksum_epilogue("output", nsamples));
    // Software alternatives.
    source.push_str(
        "sw_scale:\n\
         \x20   push {r0-r3}\n\
         \x20   ldop r0, a\n\
         \x20   ldop r1, b\n\
         \x20   mov r0, r0, lsl #16\n\
         \x20   mov r0, r0, asr #16\n\
         \x20   mul r2, r0, r1\n\
         \x20   mov r2, r2, asr #8\n\
         \x20   ldr r3, =0xFFFF\n\
         \x20   and r2, r2, r3\n\
         \x20   stres r2\n\
         \x20   pop {r0-r3}\n\
         \x20   retsd\n\
         sw_satadd:\n\
         \x20   push {r0-r4}\n\
         \x20   ldop r0, a\n\
         \x20   ldop r1, b\n\
         \x20   mov r0, r0, lsl #16\n\
         \x20   mov r0, r0, asr #16\n\
         \x20   mov r1, r1, lsl #16\n\
         \x20   mov r1, r1, asr #16\n\
         \x20   add r2, r0, r1\n\
         \x20   ldr r3, =32767\n\
         \x20   cmp r2, r3\n\
         \x20   movgt r2, r3\n\
         \x20   ldr r4, =0xFFFF8000\n\
         \x20   cmp r2, r4\n\
         \x20   movlt r2, r4\n\
         \x20   ldr r3, =0xFFFF\n\
         \x20   and r2, r2, r3\n\
         \x20   stres r2\n\
         \x20   pop {r0-r4}\n\
         \x20   retsd\n",
    );

    let out = echo::echo_ref(&input, delay, gain);
    BuiltProgram {
        program: assemble(&source).expect("echo_accelerated assembles"),
        expected_checksum: checksum(&out),
    }
}

/// Build the pure-software echo program.
pub fn echo_software(
    nsamples: usize,
    passes: u32,
    delay: usize,
    gain: u32,
    seed: u32,
) -> BuiltProgram {
    assert!(delay > 0 && delay < nsamples, "delay must be within the buffer");
    let input = echo::test_samples(nsamples, seed);
    let mut source = String::from(".org 0\n");
    words_directive(&mut source, "input", &input);
    let _ = writeln!(source, "zeros:\n    .space {}", delay * 4);
    let _ = writeln!(source, "output:\n    .space {}", nsamples * 4);
    let _ = write!(
        source,
        "start:\n\
         \x20   ldr r9, ={passes}\n\
         \x20   ldr r12, ={gain}\n\
         pass_loop:\n\
         \x20   ldr r0, =input\n\
         \x20   ldr r1, =output\n\
         \x20   ldr r4, =zeros\n\
         \x20   ldr r2, ={nsamples}\n\
         sample_loop:\n\
         \x20   ldr r3, [r0], #4\n\
         \x20   ldr r5, [r4], #4\n\
         \x20   mov r6, r5, lsl #16\n\
         \x20   mov r6, r6, asr #16\n\
         \x20   mul r6, r6, r12\n\
         \x20   mov r6, r6, asr #8\n\
         \x20   mov r6, r6, lsl #16\n\
         \x20   mov r6, r6, asr #16\n\
         \x20   mov r7, r3, lsl #16\n\
         \x20   mov r7, r7, asr #16\n\
         \x20   add r6, r7, r6\n\
         \x20   ldr r7, =32767\n\
         \x20   cmp r6, r7\n\
         \x20   movgt r6, r7\n\
         \x20   ldr r7, =0xFFFF8000\n\
         \x20   cmp r6, r7\n\
         \x20   movlt r6, r7\n\
         \x20   ldr r7, =0xFFFF\n\
         \x20   and r6, r6, r7\n\
         \x20   str r6, [r1], #4\n\
         \x20   subs r2, r2, #1\n\
         \x20   bne sample_loop\n\
         \x20   subs r9, r9, #1\n\
         \x20   bne pass_loop\n"
    );
    source.push_str(&checksum_epilogue("output", nsamples));

    let out = echo::echo_ref(&input, delay, gain);
    BuiltProgram {
        program: assemble(&source).expect("echo_software assembles"),
        expected_checksum: checksum(&out),
    }
}

/// Test plaintext blocks as little-endian words.
pub fn twofish_test_blocks(nblocks: usize, seed: u32) -> Vec<u32> {
    alpha::test_pixels(nblocks * 4, seed ^ 0x7F4A_7C15)
}

fn twofish_data_sections(key: &[u8; 16], input: &[u32]) -> (String, Twofish) {
    let tf = Twofish::new(key);
    let ks = tf.key_schedule();
    let mut source = String::from(".org 0\n");
    words_directive(&mut source, "input", input);
    let _ = writeln!(source, "output:\n    .space {}", input.len() * 4);
    words_directive(&mut source, "keys", &ks.k);
    // Layout [byte][lane] so a single `add t, base, b, lsl #4` plus
    // small immediate offsets reaches all four lanes.
    let t = ks.g_tables();
    let mut inter = Vec::with_capacity(256 * 4);
    for b in 0..256 {
        for lane in 0..4 {
            inter.push(t[lane][b]);
        }
    }
    words_directive(&mut source, "gtab", &inter);
    (source, tf)
}

/// Emit an inline g-function lookup: 17 instructions using `lr` as the
/// (interleaved) table base, one temp register.
fn g_inline(input: &str, out: &str, tmp: &str) -> String {
    format!(
        "    and {tmp}, {input}, #255\n\
         \x20   add {tmp}, lr, {tmp}, lsl #4\n\
         \x20   ldr {out}, [{tmp}]\n\
         \x20   mov {tmp}, {input}, lsr #8\n\
         \x20   and {tmp}, {tmp}, #255\n\
         \x20   add {tmp}, lr, {tmp}, lsl #4\n\
         \x20   ldr {tmp}, [{tmp}, #4]\n\
         \x20   eor {out}, {out}, {tmp}\n\
         \x20   mov {tmp}, {input}, lsr #16\n\
         \x20   and {tmp}, {tmp}, #255\n\
         \x20   add {tmp}, lr, {tmp}, lsl #4\n\
         \x20   ldr {tmp}, [{tmp}, #8]\n\
         \x20   eor {out}, {out}, {tmp}\n\
         \x20   mov {tmp}, {input}, lsr #24\n\
         \x20   add {tmp}, lr, {tmp}, lsl #4\n\
         \x20   ldr {tmp}, [{tmp}, #12]\n\
         \x20   eor {out}, {out}, {tmp}\n"
    )
}

/// The software Feistel round body: two inline g lookups (table base in
/// `lr`), PHT, subkey adds, rotate/XOR and the word swap.
fn twofish_round_body(loop_label: &str) -> String {
    let mut s = String::new();
    s.push_str(&g_inline("r0", "r5", "r12"));
    s.push_str("    mov r7, r1, ror #24\n");
    s.push_str(&g_inline("r7", "r6", "r12"));
    s.push_str(&format!(
        "    add r7, r5, r6\n\
         \x20   add r6, r5, r6, lsl #1\n\
         \x20   ldr r12, [r4], #4\n\
         \x20   add r7, r7, r12\n\
         \x20   ldr r12, [r4], #4\n\
         \x20   add r6, r6, r12\n\
         \x20   eor r2, r2, r7\n\
         \x20   mov r2, r2, ror #1\n\
         \x20   mov r3, r3, ror #31\n\
         \x20   eor r3, r3, r6\n\
         \x20   mov r7, r0\n\
         \x20   mov r0, r2\n\
         \x20   mov r2, r7\n\
         \x20   mov r7, r1\n\
         \x20   mov r1, r3\n\
         \x20   mov r3, r7\n\
         \x20   subs r11, r11, #1\n\
         \x20   bne {loop_label}\n",
    ));
    s
}

/// The software whitening + 16-round + output-whitening block body:
/// encrypts `r0`–`r3` in place (clobbers `r4`–`r7`, `r11`, `r12`;
/// expects the interleaved table base in `lr`). Ends with the output
/// words in `r2, r3, r0, r1` order.
fn twofish_sw_encrypt_body(loop_label: &str) -> String {
    format!(
        "    ldr r4, =keys\n\
         \x20   ldr r12, [r4], #4\n\
         \x20   eor r0, r0, r12\n\
         \x20   ldr r12, [r4], #4\n\
         \x20   eor r1, r1, r12\n\
         \x20   ldr r12, [r4], #4\n\
         \x20   eor r2, r2, r12\n\
         \x20   ldr r12, [r4], #4\n\
         \x20   eor r3, r3, r12\n\
         \x20   add r4, r4, #16\n\
         \x20   mov r11, #16\n\
         {loop_label}:\n\
         {round}\
         \x20   ldr r7, =keys\n\
         \x20   ldr r12, [r7, #16]\n\
         \x20   eor r2, r2, r12\n\
         \x20   ldr r12, [r7, #20]\n\
         \x20   eor r3, r3, r12\n\
         \x20   ldr r12, [r7, #24]\n\
         \x20   eor r0, r0, r12\n\
         \x20   ldr r12, [r7, #28]\n\
         \x20   eor r1, r1, r12\n",
        round = twofish_round_body(loop_label),
    )
}

/// The accelerated main loop: five `pfu` invocations per block (the
/// phase-machine protocol of
/// [`crate::twofish::BlockCircuit`]).
fn twofish_accelerated_loop(nblocks: usize, passes: u32) -> String {
    // NOTE: software dispatch writes `lr` (it is a hardware
    // branch-and-link), so the pass counter lives in memory — a register
    // would be clobbered whenever the OS defers CID 0 to `sw_tf`.
    format!(
        "start:\n\
         \x20   ldr r7, ={passes}\n\
         \x20   ldr r6, =passctr\n\
         \x20   str r7, [r6]\n\
         pass_loop:\n\
         \x20   ldr r8, =input\n\
         \x20   ldr r9, =output\n\
         \x20   ldr r10, ={nblocks}\n\
         block_loop:\n\
         \x20   ldr r0, [r8], #4\n\
         \x20   ldr r1, [r8], #4\n\
         \x20   ldr r2, [r8], #4\n\
         \x20   ldr r3, [r8], #4\n\
         \x20   pfu 0, r5, r0, r1\n\
         \x20   pfu 0, r5, r2, r3\n\
         \x20   str r5, [r9], #4\n\
         \x20   pfu 0, r5, r0, r0\n\
         \x20   str r5, [r9], #4\n\
         \x20   pfu 0, r5, r0, r0\n\
         \x20   str r5, [r9], #4\n\
         \x20   pfu 0, r5, r0, r0\n\
         \x20   str r5, [r9], #4\n\
         \x20   subs r10, r10, #1\n\
         \x20   bne block_loop\n\
         \x20   ldr r6, =passctr\n\
         \x20   ldr r7, [r6]\n\
         \x20   subs r7, r7, #1\n\
         \x20   str r7, [r6]\n\
         \x20   bne pass_loop\n"
    )
}

/// The pure-software main loop: full table-driven encryption inline.
fn twofish_software_loop(nblocks: usize, passes: u32) -> String {
    format!(
        "start:\n\
         \x20   ldr r7, ={passes}\n\
         \x20   ldr r6, =passctr\n\
         \x20   str r7, [r6]\n\
         \x20   ldr lr, =gtab\n\
         pass_loop:\n\
         \x20   ldr r8, =input\n\
         \x20   ldr r9, =output\n\
         \x20   ldr r10, ={nblocks}\n\
         block_loop:\n\
         \x20   ldr r0, [r8], #4\n\
         \x20   ldr r1, [r8], #4\n\
         \x20   ldr r2, [r8], #4\n\
         \x20   ldr r3, [r8], #4\n\
         {encrypt}\
         \x20   str r2, [r9], #4\n\
         \x20   str r3, [r9], #4\n\
         \x20   str r0, [r9], #4\n\
         \x20   str r1, [r9], #4\n\
         \x20   subs r10, r10, #1\n\
         \x20   bne block_loop\n\
         \x20   ldr r6, =passctr\n\
         \x20   ldr r7, [r6]\n\
         \x20   subs r7, r7, #1\n\
         \x20   str r7, [r6]\n\
         \x20   bne pass_loop\n",
        encrypt = twofish_sw_encrypt_body("round_loop"),
    )
}

/// The registered software alternative for the block circuit: the same
/// phase machine, with state in process memory (`tfphase`/`tfw`/`tfct`)
/// and the encryption done by the table-driven software path.
fn twofish_sw_alternative() -> String {
    format!(
        "sw_tf:\n\
         \x20   push {{r0-r12, lr}}\n\
         \x20   ldop r0, a\n\
         \x20   ldop r1, b\n\
         \x20   ldr r2, =tfphase\n\
         \x20   ldr r3, [r2]\n\
         \x20   cmp r3, #0\n\
         \x20   bne sw_tf_p1\n\
         \x20   ldr r4, =tfw\n\
         \x20   str r0, [r4]\n\
         \x20   str r1, [r4, #4]\n\
         \x20   mov r3, #1\n\
         \x20   str r3, [r2]\n\
         \x20   mov r0, #0\n\
         \x20   stres r0\n\
         \x20   pop {{r0-r12, lr}}\n\
         \x20   retsd\n\
         sw_tf_p1:\n\
         \x20   cmp r3, #1\n\
         \x20   bne sw_tf_out\n\
         \x20   ldr r4, =tfw\n\
         \x20   str r0, [r4, #8]\n\
         \x20   str r1, [r4, #12]\n\
         \x20   ldr r0, [r4]\n\
         \x20   ldr r1, [r4, #4]\n\
         \x20   ldr r2, [r4, #8]\n\
         \x20   ldr r3, [r4, #12]\n\
         \x20   ldr lr, =gtab\n\
         {encrypt}\
         \x20   ldr r4, =tfct\n\
         \x20   str r2, [r4]\n\
         \x20   str r3, [r4, #4]\n\
         \x20   str r0, [r4, #8]\n\
         \x20   str r1, [r4, #12]\n\
         \x20   ldr r4, =tfphase\n\
         \x20   mov r5, #2\n\
         \x20   str r5, [r4]\n\
         \x20   stres r2\n\
         \x20   pop {{r0-r12, lr}}\n\
         \x20   retsd\n\
         sw_tf_out:\n\
         \x20   ldr r4, =tfct\n\
         \x20   sub r5, r3, #1\n\
         \x20   add r4, r4, r5, lsl #2\n\
         \x20   ldr r0, [r4]\n\
         \x20   add r3, r3, #1\n\
         \x20   cmp r3, #5\n\
         \x20   moveq r3, #0\n\
         \x20   str r3, [r2]\n\
         \x20   stres r0\n\
         \x20   pop {{r0-r12, lr}}\n\
         \x20   retsd\n",
        encrypt = twofish_sw_encrypt_body("sw_round"),
    )
}

fn twofish_expected(tf: &Twofish, input: &[u32]) -> u32 {
    let mut bytes = Vec::with_capacity(input.len() * 4);
    for w in input {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    let ct = tf.encrypt_ecb(&bytes);
    let words: Vec<u32> = ct
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    checksum(&words)
}

/// Build the accelerated Twofish program: the whole block path runs as
/// custom instruction CID 0 (key baked into the configuration), driven
/// through the five-invocation phase protocol. The interleaved g tables
/// are embedded for the registered software alternative (`sw_tf`),
/// which replicates the phase machine with its state in process memory.
pub fn twofish_accelerated(nblocks: usize, passes: u32, key: &[u8; 16], seed: u32) -> BuiltProgram {
    let input = twofish_test_blocks(nblocks, seed);
    let (mut source, tf) = twofish_data_sections(key, &input);
    source.push_str("passctr:\n    .word 0\ntfphase:\n    .word 0\ntfw:\n    .space 16\ntfct:\n    .space 16\n");
    source.push_str(&twofish_accelerated_loop(nblocks, passes));
    source.push_str(&checksum_epilogue("output", nblocks * 4));
    source.push_str(&twofish_sw_alternative());
    BuiltProgram {
        program: assemble(&source).expect("twofish_accelerated assembles"),
        expected_checksum: twofish_expected(&tf, &input),
    }
}

/// Build the pure-software Twofish program (table-driven rounds inline).
pub fn twofish_software(nblocks: usize, passes: u32, key: &[u8; 16], seed: u32) -> BuiltProgram {
    let input = twofish_test_blocks(nblocks, seed);
    let (mut source, tf) = twofish_data_sections(key, &input);
    source.push_str("passctr:\n    .word 0\n");
    source.push_str(&twofish_software_loop(nblocks, passes));
    source.push_str(&checksum_epilogue("output", nblocks * 4));
    BuiltProgram {
        program: assemble(&source).expect("twofish_software assembles"),
        expected_checksum: twofish_expected(&tf, &input),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use porsche::kernel::{Kernel, KernelConfig, SpawnSpec};
    use porsche::process::CircuitSpec;
    use proteus_cpu::Cpu;
    use proteus_rfu::{Rfu, RfuConfig};

    fn run_one(built: &BuiltProgram, circuits: Vec<CircuitSpec>) -> (u32, u64) {
        let entry = built.program.symbol("start").expect("start label");
        let mut spec = SpawnSpec::new(&built.program).entry(entry).mem_size(1 << 20);
        for c in circuits {
            spec = spec.circuit(c);
        }
        let mut kernel = Kernel::new(KernelConfig::default());
        kernel.spawn(spec).expect("spawn");
        let mut cpu = Cpu::new();
        let mut rfu = Rfu::new(RfuConfig::default());
        let report = kernel.run(&mut cpu, &mut rfu, 2_000_000_000).expect("run");
        assert!(report.killed.is_empty(), "process killed: {report:?}");
        (report.exited[0].2, report.makespan)
    }

    #[test]
    fn alpha_accelerated_checksum_matches() {
        let built = alpha_accelerated(32, 2, 11);
        let sw = built.program.symbol("sw_blend");
        let (code, _) = run_one(
            &built,
            vec![CircuitSpec { cid: 0, circuit: alpha::blend_circuit(), software_alt: sw, image: None }],
        );
        assert_eq!(code, built.expected_checksum);
    }

    #[test]
    fn alpha_software_checksum_matches() {
        let built = alpha_software(32, 2, 11);
        let (code, _) = run_one(&built, vec![]);
        assert_eq!(code, built.expected_checksum);
    }

    #[test]
    fn alpha_accelerated_beats_software() {
        // Needs a non-trivial workload: the one-time 54 KB configuration
        // load (~13.6k cycles) must amortise, exactly as in the paper.
        let acc = alpha_accelerated(256, 8, 3);
        let sw = alpha_software(256, 8, 3);
        let (ca, ta) = run_one(
            &acc,
            vec![CircuitSpec { cid: 0, circuit: alpha::blend_circuit(), software_alt: None, image: None }],
        );
        let (cs, ts) = run_one(&sw, vec![]);
        assert_eq!(ca, cs, "both variants compute the same image");
        assert!(ta < ts, "accelerated {ta} should beat software {ts}");
    }

    #[test]
    fn echo_accelerated_checksum_matches() {
        let built = echo_accelerated(64, 2, 8, 0x80, 5);
        let (code, _) = run_one(
            &built,
            vec![
                CircuitSpec {
                    cid: 0,
                    circuit: echo::scale_circuit(),
                    software_alt: built.program.symbol("sw_scale"), image: None },
                CircuitSpec {
                    cid: 1,
                    circuit: echo::sat_add_circuit(),
                    software_alt: built.program.symbol("sw_satadd"), image: None },
            ],
        );
        assert_eq!(code, built.expected_checksum);
    }

    #[test]
    fn echo_software_checksum_matches() {
        let built = echo_software(64, 2, 8, 0x80, 5);
        let (code, _) = run_one(&built, vec![]);
        assert_eq!(code, built.expected_checksum);
    }

    #[test]
    fn twofish_accelerated_checksum_matches() {
        let key = *b"proteus-arm-key!";
        let built = twofish_accelerated(4, 2, &key, 77);
        let circuit = Box::new(crate::twofish::BlockCircuit::new(&key));
        let (code, _) = run_one(
            &built,
            vec![CircuitSpec { cid: 0, circuit, software_alt: built.program.symbol("sw_tf"), image: None }],
        );
        assert_eq!(code, built.expected_checksum);
    }

    #[test]
    fn twofish_software_alternative_path_matches() {
        // Run the accelerated program but with a 1-PFU RFU occupied by a
        // decoy, SoftwareFallback mode: every invocation goes through
        // sw_tf's in-memory phase machine.
        use porsche::cis::DispatchMode;
        let key = *b"proteus-arm-key!";
        let built = twofish_accelerated(3, 2, &key, 42);
        let entry = built.program.symbol("start").expect("start");
        let mut kernel = Kernel::new(KernelConfig {
            mode: DispatchMode::SoftwareFallback,
            quantum: 20_000, // interleave so the decoy still owns the PFU
            ..KernelConfig::default()
        });
        // Decoy process that grabs the single PFU and spins.
        let decoy_prog = proteus_isa::assemble(
            "start:\n ldr r2, =5000\nloop: pfu 0, r1, r0, r0\n subs r2, r2, #1\n bne loop\n mov r0, #0\n swi #0\n",
        )
        .expect("decoy");
        let decoy_entry = decoy_prog.symbol("start").expect("start");
        kernel
            .spawn(SpawnSpec::new(&decoy_prog).entry(decoy_entry).circuit(CircuitSpec {
                cid: 0,
                circuit: Box::new(proteus_rfu::behavioral::FixedLatency::new("spin", 40, 4, |a, _| a)),
                software_alt: None, image: None }))
            .expect("spawn decoy");
        kernel
            .spawn(
                SpawnSpec::new(&built.program)
                    .entry(entry)
                    .mem_size(1 << 20)
                    .circuit(CircuitSpec {
                        cid: 0,
                        circuit: Box::new(crate::twofish::BlockCircuit::new(&key)),
                        software_alt: built.program.symbol("sw_tf"), image: None }),
            )
            .expect("spawn twofish");
        let mut cpu = Cpu::new();
        let mut rfu = Rfu::new(RfuConfig { pfus: 1, ..RfuConfig::default() });
        let report = kernel.run(&mut cpu, &mut rfu, 5_000_000_000).expect("run");
        assert!(report.killed.is_empty(), "{report:?}");
        let tf_exit = report.exited.iter().find(|(p, _, _)| *p == 2).expect("twofish exited");
        assert_eq!(tf_exit.2, built.expected_checksum);
        assert!(report.stats.software_installs >= 1);
    }

    #[test]
    fn twofish_software_checksum_matches() {
        let key = *b"proteus-arm-key!";
        let built = twofish_software(4, 1, &key, 77);
        let (code, _) = run_one(&built, vec![]);
        assert_eq!(code, built.expected_checksum);
    }

    #[test]
    fn software_dispatch_computes_the_same_result() {
        // With a single PFU and SoftwareFallback, echo's second circuit
        // lands on its software alternative and must still be correct.
        use porsche::cis::DispatchMode;
        let built = echo_accelerated(48, 1, 6, 0x90, 9);
        let entry = built.program.symbol("start").expect("start");
        let mut kernel = Kernel::new(KernelConfig {
            mode: DispatchMode::SoftwareFallback,
            ..KernelConfig::default()
        });
        let spec = SpawnSpec::new(&built.program)
            .entry(entry)
            .mem_size(1 << 20)
            .circuit(CircuitSpec {
                cid: 0,
                circuit: echo::scale_circuit(),
                software_alt: built.program.symbol("sw_scale"), image: None })
            .circuit(CircuitSpec {
                cid: 1,
                circuit: echo::sat_add_circuit(),
                software_alt: built.program.symbol("sw_satadd"), image: None });
        kernel.spawn(spec).expect("spawn");
        let mut cpu = Cpu::new();
        let mut rfu = Rfu::new(RfuConfig { pfus: 1, ..RfuConfig::default() });
        let report = kernel.run(&mut cpu, &mut rfu, 2_000_000_000).expect("run");
        assert!(report.killed.is_empty());
        assert_eq!(report.exited[0].2, built.expected_checksum);
        assert!(report.stats.software_installs >= 1, "stats: {:?}", report.stats);
    }
}
