//! The DESIGN.md §9 acceptance demos: each rung of the recovery ladder
//! carries a run to a *correct* result, with the recovery work visibly
//! attributed in the cycle ledger.
//!
//! Three scenarios, one per rung:
//! 1. transient SEUs — detected by the watchdog + CRC readback,
//!    repaired by retry reconfiguration, full hardware throughput;
//! 2. a hung PFU — retries cannot help, the kernel fails over to the
//!    registered software alternative (TLB2 dispatch);
//! 3. a persistently faulty PFU — quarantined, the circuit relocated,
//!    the run completing correctly at reduced throughput.

use porsche::fault::{FaultPlan, RecoveryPolicy};
use proteus::scenario::{Scenario, ScenarioResult};
use proteus_apps::AppKind;

/// A small but multi-quantum Alpha run; `pfus` narrows the array so the
/// injected fault is guaranteed to land under the workload.
fn scenario(pfus: usize, instances: usize) -> Scenario {
    Scenario::new(AppKind::Alpha)
        .instances(instances)
        .size(256)
        .passes(20)
        .quantum(10_000)
        .pfus(pfus)
        .software_alts()
        .watchdog(2_000)
}

/// Every demo must keep the conservation law: the two fault categories
/// are real attributed work, and all eleven categories still sum to the
/// simulated total.
fn assert_fault_work_attributed(r: &ScenarioResult) {
    assert!(r.ledger.fault_detection > 0, "no detection cycles: {:?}", r.ledger);
    assert!(r.ledger.fault_recovery > 0, "no recovery cycles: {:?}", r.ledger);
    assert_eq!(r.ledger.total(), r.total_cycles, "conservation broken: {:?}", r.ledger);
}

#[test]
fn transient_seus_recover_by_retry_reconfiguration() {
    // One PFU so every strike hits the resident configuration.
    let faulty = scenario(1, 1)
        .faults(FaultPlan { seed: 7, seu_mean_cycles: 30_000, ..FaultPlan::default() })
        .recovery(RecoveryPolicy::retry_only(2))
        .run()
        .expect("run");
    assert!(faulty.all_valid(), "SEU recovery must preserve results: {:?}", faulty.stats);
    assert!(faulty.stats.seu_strikes > 0, "{:?}", faulty.stats);
    assert!(faulty.stats.crc_errors > 0, "strikes must surface as CRC mismatches");
    assert!(faulty.stats.recovery_retries > 0, "repairs go through retry reloads");
    assert_eq!(faulty.stats.fault_failovers, 0, "retry suffices for soft errors");
    assert_eq!(faulty.stats.quarantines, 0, "soft errors must not condemn the slot");
    assert_fault_work_attributed(&faulty);

    // Recovery costs cycles: slower than the fault-free twin, but the
    // slowdown is exactly the attributed fault work (same schedule
    // otherwise on a single-PFU machine).
    let clean = scenario(1, 1).run().expect("clean run");
    assert!(clean.all_valid());
    assert!(faulty.makespan > clean.makespan, "burned + repair cycles must show up");
}

#[test]
fn hung_pfu_fails_over_to_software_dispatch() {
    // Slot 0's done line sticks almost immediately; with one PFU there
    // is nowhere to relocate, so the ladder's failover rung is the only
    // way to finish.
    let faulty = scenario(1, 1)
        .faults(FaultPlan { stuck_pfu: Some((0, 5_000)), ..FaultPlan::default() })
        .recovery(RecoveryPolicy {
            max_retries: 1,
            software_failover: true,
            quarantine_threshold: None,
        })
        .run()
        .expect("run");
    assert!(faulty.all_valid(), "software path must produce identical results");
    assert!(faulty.stats.pfu_faults > 0, "{:?}", faulty.stats);
    assert_eq!(faulty.stats.fault_failovers, 1, "{:?}", faulty.stats);
    assert_eq!(faulty.stats.quarantines, 0, "quarantine was disabled");
    assert!(faulty.ledger.soft_dispatch > 0, "the tail of the run dispatches to software");
    assert_fault_work_attributed(&faulty);

    let clean = scenario(1, 1).run().expect("clean run");
    assert!(
        faulty.makespan > clean.makespan,
        "software dispatch degrades throughput: {} vs {}",
        faulty.makespan,
        clean.makespan
    );
}

#[test]
fn persistent_fault_quarantines_the_slot_and_relocates() {
    // Two instances on four PFUs; slot 0 sticks early. The default
    // ladder retries, strikes out, quarantines the slot and relocates
    // the circuit to a healthy one — correct results, fewer usable PFUs.
    let faulty = scenario(4, 2)
        .faults(FaultPlan { stuck_pfu: Some((0, 5_000)), ..FaultPlan::default() })
        .recovery(RecoveryPolicy::default())
        .run()
        .expect("run");
    assert!(faulty.all_valid(), "relocation must preserve results: {:?}", faulty.stats);
    assert!(faulty.stats.pfu_faults >= 3, "three strikes before quarantine");
    assert_eq!(faulty.stats.quarantines, 1, "{:?}", faulty.stats);
    assert_eq!(faulty.stats.fault_failovers, 0, "hardware kept working via relocation");
    assert_fault_work_attributed(&faulty);

    let clean = scenario(4, 2).run().expect("clean run");
    assert!(clean.all_valid());
    assert!(
        faulty.makespan > clean.makespan,
        "burned budgets + relocation cost throughput: {} vs {}",
        faulty.makespan,
        clean.makespan
    );
}

#[test]
fn retry_only_policy_cannot_survive_a_hard_fault() {
    // The negative control for the ladder: with failover and quarantine
    // disabled a stuck slot exhausts the retry budget and the §4.2 rule
    // applies — the process is terminated, not given wrong results.
    let r = scenario(1, 1)
        .faults(FaultPlan { stuck_pfu: Some((0, 5_000)), ..FaultPlan::default() })
        .recovery(RecoveryPolicy::retry_only(2))
        .run()
        .expect("run");
    assert!(!r.all_valid(), "nothing can finish on the only, dead, PFU");
    assert!(r.stats.kills > 0, "{:?}", r.stats);
    assert_eq!(r.ledger.total(), r.total_cycles, "conservation holds even for kills");
}

#[test]
fn scrubbing_repairs_corruption_before_dispatch_hits_it() {
    // With a scrub pass far shorter than the SEU inter-arrival time,
    // most corruption is caught by the scrubber (ScrubCheck + repair at
    // the scheduling boundary), not by a watchdog trip mid-dispatch.
    let r = scenario(1, 1)
        .faults(FaultPlan {
            seed: 11,
            seu_mean_cycles: 60_000,
            scrub_interval: Some(4_000),
            ..FaultPlan::default()
        })
        .recovery(RecoveryPolicy::default())
        .run()
        .expect("run");
    assert!(r.all_valid());
    assert!(r.stats.seu_strikes > 0, "{:?}", r.stats);
    assert!(r.stats.recovery_retries > 0, "scrub repairs are retry reloads");
    assert!(
        r.stats.pfu_faults < r.stats.recovery_retries,
        "the scrubber should beat the watchdog to most strikes: {:?}",
        r.stats
    );
    assert_fault_work_attributed(&r);
}
