//! Reference netlist simulator.
//!
//! [`NetlistSim`] evaluates a [`Netlist`] directly: combinational settling
//! via a precomputed topological order, then an explicit clock edge that
//! latches every flip-flop. The [`crate::device::Device`] simulator runs
//! from a *decoded bitstream* instead; tests assert the two agree, which
//! exercises the whole place → encode → decode path.

use std::collections::HashMap;

use crate::error::FabricError;
use crate::netlist::{Netlist, Node, NodeId};

/// Event-free two-phase simulator for a netlist.
#[derive(Debug, Clone)]
pub struct NetlistSim {
    netlist: Netlist,
    order: Vec<NodeId>,
    values: Vec<bool>,
    dff_state: Vec<bool>,
    input_index: HashMap<String, u16>,
}

impl NetlistSim {
    /// Build a simulator. Computes the combinational evaluation order once.
    ///
    /// # Errors
    ///
    /// Propagates [`Netlist::check`] failures (dangling nodes,
    /// combinational cycles).
    pub fn new(netlist: &Netlist) -> Result<Self, FabricError> {
        netlist.check()?;
        let order = netlist.topo_order()?;
        let values = vec![false; netlist.nodes().len()];
        let dff_state = netlist
            .nodes()
            .iter()
            .filter_map(|n| match n {
                Node::Dff { init, .. } => Some(*init),
                _ => None,
            })
            .collect();
        let input_index = netlist
            .inputs()
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.clone(), i as u16))
            .collect();
        Ok(Self { netlist: netlist.clone(), order, values, dff_state, input_index })
    }

    /// Set a named input port from the low bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn set_input(&mut self, name: &str, value: u64) {
        let port = *self
            .input_index
            .get(name)
            .unwrap_or_else(|| panic!("no input port named `{name}`"));
        for (i, node) in self.netlist.nodes().iter().enumerate() {
            if let Node::Input { port: p, bit } = node {
                if *p == port {
                    self.values[i] = (value >> bit) & 1 == 1;
                }
            }
        }
    }

    /// Propagate combinational logic until stable (one pass over the
    /// topological order suffices).
    pub fn settle(&mut self) {
        // Sources first: constants and DFF outputs.
        let mut dff_i = 0usize;
        for (i, node) in self.netlist.nodes().iter().enumerate() {
            match node {
                Node::Const(v) => self.values[i] = *v,
                Node::Dff { .. } => {
                    self.values[i] = self.dff_state[dff_i];
                    dff_i += 1;
                }
                _ => {}
            }
        }
        for &id in &self.order {
            if let Node::Lut { inputs, truth } = self.netlist.nodes()[id.index()] {
                let mut addr = 0usize;
                for (pin, src) in inputs.iter().enumerate() {
                    if self.values[src.index()] {
                        addr |= 1 << pin;
                    }
                }
                self.values[id.index()] = (truth >> addr) & 1 == 1;
            }
        }
    }

    /// Latch every flip-flop from its (settled) `d` input.
    ///
    /// Call [`Self::settle`] first so combinational values are current.
    pub fn clock_edge(&mut self) {
        let mut dff_i = 0usize;
        for node in self.netlist.nodes() {
            if let Node::Dff { d, .. } = node {
                self.dff_state[dff_i] = self.values[d.index()];
                dff_i += 1;
            }
        }
    }

    /// Read a named output bus as an integer (bit 0 = element 0).
    ///
    /// # Panics
    ///
    /// Panics if the output does not exist.
    pub fn output(&self, name: &str) -> u64 {
        let (_, bits) = self
            .netlist
            .outputs()
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("no output port named `{name}`"));
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, b)| acc | (u64::from(self.values[b.index()]) << i))
    }

    /// Current flip-flop state, in netlist DFF order. This is exactly what
    /// the *state frames* of a bitstream capture.
    pub fn dff_state(&self) -> &[bool] {
        &self.dff_state
    }

    /// Overwrite the flip-flop state (restoring a context).
    ///
    /// # Errors
    ///
    /// [`FabricError::StateMismatch`] if the length differs from the
    /// number of flip-flops.
    pub fn set_dff_state(&mut self, state: &[bool]) -> Result<(), FabricError> {
        if state.len() != self.dff_state.len() {
            return Err(FabricError::StateMismatch {
                detail: format!("have {} DFFs, got {} bits", self.dff_state.len(), state.len()),
            });
        }
        self.dff_state.copy_from_slice(state);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    #[test]
    fn xor_network_settles() {
        let mut b = NetlistBuilder::new();
        let a = b.input_bus("op_a", 4);
        let c = b.input_bus("op_b", 4);
        let x = b.xor_bus(&a, &c);
        b.output_bus("result", &x);
        let n = b.finish().expect("netlist");
        let mut sim = NetlistSim::new(&n).expect("sim");
        sim.set_input("op_a", 0b1100);
        sim.set_input("op_b", 0b1010);
        sim.settle();
        assert_eq!(sim.output("result"), 0b0110);
    }

    #[test]
    fn dff_state_save_restore_roundtrips() {
        let mut b = NetlistBuilder::new();
        let en = b.input_bit("op_a");
        let cnt = b.counter(4, en);
        b.output_bus("result", &cnt);
        let n = b.finish().expect("netlist");
        let mut sim = NetlistSim::new(&n).expect("sim");
        sim.set_input("op_a", 1);
        for _ in 0..5 {
            sim.settle();
            sim.clock_edge();
        }
        let saved = sim.dff_state().to_vec();
        for _ in 0..3 {
            sim.settle();
            sim.clock_edge();
        }
        sim.settle();
        assert_eq!(sim.output("result"), 8);
        sim.set_dff_state(&saved).expect("restore");
        sim.settle();
        assert_eq!(sim.output("result"), 5);
    }

    #[test]
    fn set_dff_state_rejects_wrong_length() {
        let mut b = NetlistBuilder::new();
        let a = b.input_bit("op_a");
        let q = b.dff(a, false);
        b.output_bit("result", q);
        let n = b.finish().expect("netlist");
        let mut sim = NetlistSim::new(&n).expect("sim");
        assert!(sim.set_dff_state(&[true, false]).is_err());
    }
}
