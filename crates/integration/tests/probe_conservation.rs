//! The instrumentation-bus consistency contract: statistics, the cycle
//! ledger, the attributed ledger and the trace are all pure folds over
//! ONE event stream, so (a) re-folding the recorded stream through
//! fresh sinks must reproduce the kernel's own `KernelStats` and
//! `CycleLedger` exactly, (b) the ledger's categories must sum to the
//! total simulated cycles — every cycle is attributed to exactly one
//! category, none invented, none lost — and (c) the per-process ×
//! per-callsite `AttributedLedger` must refold to the global ledger,
//! so its folded-stack export conserves every category.

use std::collections::BTreeMap;

use porsche::cis::DispatchMode;
use porsche::fault::{FaultPlan, RecoveryPolicy};
use porsche::policy::PolicyKind;
use porsche::probe::{AttributedLedger, CycleLedger, Event, EventSink};
use porsche::stats::KernelStats;
use proptest::prelude::*;
use proteus::scenario::{Scenario, ScenarioResult};
use proteus_apps::AppKind;

/// Per-category cycle sums parsed back out of a folded-stack export
/// (`scenario;pid<N>;<callsite>;<category> <cycles>` lines).
fn folded_category_sums(folded: &str) -> BTreeMap<&str, u64> {
    let mut sums: BTreeMap<&str, u64> = BTreeMap::new();
    for line in folded.lines() {
        let (stack, cycles) = line.rsplit_once(' ').expect("folded line has a cycle count");
        let category = stack.rsplit(';').next().expect("folded stack has frames");
        *sums.entry(category).or_default() += cycles.parse::<u64>().expect("numeric cycles");
    }
    sums
}

/// The tentpole's conservation law, checked three ways: the attributed
/// ledger refolds to the global ledger, its total matches the simulated
/// cycle count, and the folded-stack export's per-category sums equal
/// the global ledger's values exactly.
fn assert_attribution_conserves(result: &ScenarioResult) {
    assert_eq!(result.attributed.refold(), result.ledger, "attributed refold diverged");
    assert_eq!(result.attributed.total(), result.total_cycles, "attributed total diverged");
    let folded = result.attributed.to_folded("t");
    let sums = folded_category_sums(&folded);
    for (name, value) in CycleLedger::CATEGORIES.iter().zip(result.ledger.values()) {
        assert_eq!(
            sums.get(name).copied().unwrap_or(0),
            value,
            "folded-stack sum for {name} diverged from the global ledger"
        );
    }
}

fn arb_app() -> impl Strategy<Value = AppKind> {
    prop_oneof![Just(AppKind::Alpha), Just(AppKind::Twofish), Just(AppKind::Echo)]
}

fn arb_policy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::RoundRobin),
        any::<u64>().prop_map(|seed| PolicyKind::Random { seed }),
        Just(PolicyKind::Lru),
        Just(PolicyKind::SecondChance),
        Just(PolicyKind::Fifo),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn event_stream_reproduces_stats_and_conserves_cycles(
        app in arb_app(),
        instances in 1usize..5,
        policy in arb_policy(),
        quantum in 5_000u64..100_000,
        pfus in 1usize..5,
        tlb_capacity in 1usize..8,
        soft in any::<bool>(),
    ) {
        let mode = if soft { DispatchMode::SoftwareFallback } else { DispatchMode::HardwareOnly };
        let result = Scenario::new(app)
            .instances(instances)
            .size(16)
            .passes(2)
            .quantum(quantum)
            .policy(policy)
            .pfus(pfus)
            .tlb_capacity(tlb_capacity)
            .mode(mode)
            .trace_capacity(1 << 22)
            .run()
            .expect("run completes");
        prop_assert!(result.all_valid(), "{result:?}");

        // Re-fold the recorded stream through fresh sinks.
        let mut stats = KernelStats::default();
        let mut ledger = CycleLedger::default();
        let mut attributed = AttributedLedger::default();
        for &(at, tag, ref event) in &result.trace {
            stats.on_event(at, tag, event);
            ledger.on_event(at, tag, event);
            attributed.on_event(at, tag, event);
        }
        prop_assert_eq!(stats, result.stats, "stats fold diverged");
        prop_assert_eq!(ledger, result.ledger, "ledger fold diverged");
        prop_assert_eq!(&attributed, &result.attributed, "attributed fold diverged");
        assert_attribution_conserves(&result);

        // Conservation: every simulated cycle lands in exactly one
        // category.
        prop_assert_eq!(
            result.ledger.total(),
            result.total_cycles,
            "ledger categories must sum to the simulated cycle count: {:?}",
            result.ledger
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The contract must survive active fault injection: whatever the
    /// ladder does — burned budgets, CRC readbacks, retry reloads,
    /// failover, quarantine, even killing the process — the stream
    /// refolds to the kernel's own sinks and the two fault categories
    /// join the conservation sum. Validity is NOT asserted (a hostile
    /// enough plan under a weak enough policy legitimately kills).
    #[test]
    fn fault_injection_preserves_the_instrumentation_contract(
        instances in 1usize..4,
        pfus in 1usize..4,
        quantum in 5_000u64..50_000,
        seed in any::<u64>(),
        seu_mean in prop_oneof![Just(0u64), 2_000u64..40_000],
        transit_pct in prop_oneof![Just(0u32), 5u32..50],
        stuck in proptest::option::of((0usize..4, 0u64..60_000)),
        scrub in proptest::option::of(1_000u64..10_000),
        (max_retries, software_failover, quarantine_threshold)
            in (0u32..3, any::<bool>(), proptest::option::of(1u32..4)),
    ) {
        let plan = FaultPlan {
            seed,
            seu_mean_cycles: seu_mean,
            transit_error_rate: f64::from(transit_pct) / 100.0,
            // Fold the drawn slot onto the machine's actual array.
            stuck_pfu: stuck.map(|(slot, at)| (slot % pfus, at)),
            scrub_interval: scrub,
        };
        let recovery = RecoveryPolicy { max_retries, software_failover, quarantine_threshold };
        let result = Scenario::new(AppKind::Alpha)
            .instances(instances)
            .size(16)
            .passes(3)
            .quantum(quantum)
            .pfus(pfus)
            .software_alts()
            .watchdog(1_500)
            .faults(plan)
            .recovery(recovery)
            .trace_capacity(1 << 22)
            .run()
            .expect("run completes");

        let mut stats = KernelStats::default();
        let mut ledger = CycleLedger::default();
        for &(at, tag, ref event) in &result.trace {
            stats.on_event(at, tag, event);
            ledger.on_event(at, tag, event);
        }
        prop_assert_eq!(stats, result.stats, "stats fold diverged under faults");
        prop_assert_eq!(ledger, result.ledger, "ledger fold diverged under faults");
        assert_attribution_conserves(&result);
        prop_assert_eq!(
            result.ledger.total(),
            result.total_cycles,
            "conservation must hold with fault categories: {:?}",
            result.ledger
        );

        // A process that did not finish must have been killed by the
        // ladder, never silently wedged or given wrong results.
        if !result.all_valid() {
            prop_assert!(result.stats.kills > 0, "invalid without a kill: {:?}", result.stats);
        }
    }
}

/// Pin the case the old stats-snapshot diffing could drop: ONE fault
/// whose repair evicts a resident circuit, loads a configuration AND
/// displaces a dispatch-TLB entry. All three must appear in the event
/// stream at the fault's cycle stamp, and all three counters must
/// advance.
#[test]
fn single_repair_emits_eviction_load_and_tlb_displacement_together() {
    use proteus::machine::{Machine, MachineConfig};
    use porsche::kernel::KernelConfig;
    use proteus_apps::workload::{WorkloadConfig, WorkloadSpec};
    use proteus_rfu::RfuConfig;

    // Four alpha instances on three PFUs with a two-slot TLB: a reload
    // evicts one of three resident circuits while the TLB holds entries
    // for only two of them, so the insert after the load regularly
    // displaces a *live* entry belonging to a circuit that stayed
    // resident — eviction, config load and TLB displacement in one
    // repair. (Unloading the victim scrubs its own TLB entries, which is
    // why a 1-slot TLB can never show all three at once.)
    let spec = WorkloadSpec::build(WorkloadConfig::new(AppKind::Alpha, 64, 8));
    let mut machine = Machine::new(MachineConfig {
        kernel: KernelConfig {
            quantum: 10_000,
            trace_capacity: 1 << 20,
            ..KernelConfig::default()
        },
        rfu: RfuConfig { pfus: 3, tlb_capacity: 2, ..RfuConfig::default() },
    });
    for _ in 0..4 {
        machine.spawn(spec.spawn_spec(false)).expect("spawn");
    }
    let report = machine.run(2_000_000_000).expect("run");
    assert!(report.killed.is_empty(), "{report:?}");

    let events = machine.kernel().trace().snapshot();
    let mut pinned = false;
    for (i, &(at, _, event)) in events.iter().enumerate() {
        if !matches!(event, Event::Fault { .. }) {
            continue;
        }
        // All events of one repair carry the fault's cycle stamp (the
        // clock does not advance inside the handler).
        let repair: Vec<Event> = events[i + 1..]
            .iter()
            .take_while(|&&(a, _, _)| a == at)
            .map(|&(_, _, e)| e)
            .collect();
        let evicted = repair.iter().any(|e| matches!(e, Event::Eviction { .. }));
        let loaded = repair.iter().any(|e| matches!(e, Event::ConfigLoad { .. }));
        let displaced =
            repair.iter().any(|e| matches!(e, Event::TlbProgram { evicted: true, .. }));
        if evicted && loaded && displaced {
            pinned = true;
            break;
        }
    }
    assert!(pinned, "no repair combined eviction + config load + TLB displacement");

    // And the fold sees all three — the snapshot-diffing bug dropped one.
    assert!(report.stats.evictions > 0, "{:?}", report.stats);
    assert!(report.stats.config_loads > 0, "{:?}", report.stats);
    assert!(report.stats.tlb_evictions > 0, "{:?}", report.stats);
    assert_eq!(report.ledger.total(), machine.cycles(), "{:?}", report.ledger);
}

/// The ledger distinguishes execution modes: a software-only run books
/// no custom-execute cycles, an accelerated run books many, and a
/// software-dispatch run under contention books soft-dispatch cycles.
#[test]
fn ledger_attributes_execution_modes() {
    let accel = Scenario::new(AppKind::Alpha).size(32).passes(2).run().expect("accel");
    assert!(accel.ledger.custom_execute > 0, "{:?}", accel.ledger);
    assert_eq!(accel.ledger.total(), accel.total_cycles);

    let soft = Scenario::new(AppKind::Alpha)
        .software_only()
        .size(32)
        .passes(2)
        .run()
        .expect("software");
    assert_eq!(soft.ledger.custom_execute, 0, "{:?}", soft.ledger);
    assert_eq!(soft.ledger.soft_dispatch, 0, "{:?}", soft.ledger);
    assert_eq!(soft.ledger.total(), soft.total_cycles);

    let fallback = Scenario::new(AppKind::Alpha)
        .instances(6)
        .size(64)
        .passes(20)
        .quantum(5_000)
        .mode(DispatchMode::SoftwareFallback)
        .run()
        .expect("fallback");
    assert!(fallback.ledger.soft_dispatch > 0, "{:?}", fallback.ledger);
    assert_eq!(fallback.ledger.total(), fallback.total_cycles);
}
