//! Regenerate every figure and claim of the paper's evaluation.
//!
//! ```text
//! repro [--quick] [fig2] [fig3] [speedup] [policies] [quanta] [pfus]
//!       [config-split] [tlb] [longinstr] [soft-crossover] [sharing] [dynamic] [all]
//! ```
//!
//! With no experiment names, runs `all`. Results are printed as tables
//! and written as long-format CSVs into `results/`.

use std::path::Path;
use std::time::Instant;

use proteus::experiment::{
    ablation_config_split, ablation_long_instructions, ablation_pfus, ablation_policies,
    ablation_quanta, ablation_sharing, ablation_soft_crossover, ablation_tlb, dynamic_load,
    fig2, fig3, speedup, Scale,
};
use proteus::series::SeriesSet;

fn emit(set: &SeriesSet, outdir: &Path) {
    println!("== {} ==", set.figure);
    println!("{}", set.to_table());
    let path = outdir.join(format!("{}.csv", set.figure));
    match set.write_csv(&path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::quick() } else { Scale::full() };
    let mut wanted: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();
    if wanted.is_empty() {
        wanted.push("all");
    }
    let all = wanted.contains(&"all");
    let want = |name: &str| all || wanted.contains(&name);

    let outdir = Path::new("results");
    if let Err(e) = std::fs::create_dir_all(outdir) {
        eprintln!("could not create {}: {e}", outdir.display());
    }

    let t0 = Instant::now();
    if want("fig2") {
        emit(&fig2(&scale), outdir);
    }
    if want("fig3") {
        emit(&fig3(&scale), outdir);
    }
    if want("speedup") {
        emit(&speedup(&scale), outdir);
    }
    if want("policies") {
        emit(&ablation_policies(&scale), outdir);
    }
    if want("quanta") {
        emit(&ablation_quanta(&scale), outdir);
    }
    if want("pfus") {
        emit(&ablation_pfus(&scale), outdir);
    }
    if want("config-split") {
        emit(&ablation_config_split(&scale), outdir);
    }
    if want("tlb") {
        emit(&ablation_tlb(&scale), outdir);
    }
    if want("longinstr") {
        emit(&ablation_long_instructions(), outdir);
    }
    if want("soft-crossover") {
        emit(&ablation_soft_crossover(&scale), outdir);
    }
    if want("sharing") {
        emit(&ablation_sharing(&scale), outdir);
    }
    if want("dynamic") {
        emit(&dynamic_load(&scale), outdir);
    }
    println!("done in {:.1}s (scale: {scale:?})", t0.elapsed().as_secs_f64());
}
