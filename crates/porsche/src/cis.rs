//! The Custom Instruction Scheduler (CIS).
//!
//! "POrSCHE implements a Custom Instruction Scheduler as part of the
//! kernel, which manages the circuits registered with the OS by different
//! applications. The CIS is responsible for loading and unloading
//! circuits and for managing the dispatch hardware." (§5)
//!
//! The fault handler implements §4.2's required behaviour: "When the
//! operating system sees a custom instruction fault it must first check
//! if it is just a mapping fault before attempting to load the hardware."

use std::collections::BTreeMap;

use proteus_rfu::{FaultInfo, PfuIndex, Rfu, TupleKey};

use crate::costs::CostModel;
use crate::fault::{FaultUnit, RecoveryPolicy};
use crate::policy::{PolicyView, ReplacementPolicy};
use crate::probe::{Callsite, Event, PfuFaultKind, Probe, Tag};
use crate::process::{Pid, Process};

/// How the CIS resolves contention (the paper's two experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Always swap circuits: pick a victim and reconfigure
    /// (§5.1.1, the Circuit Switching Test).
    #[default]
    HardwareOnly,
    /// "The operating system can defer execution to the software
    /// alternative rather than swapping circuits on and off the processor
    /// if the FPL is full" (§2; §5.1.2, the Software Dispatch Test).
    /// Falls back to swapping when no software alternative is registered.
    SoftwareFallback,
}

/// Outcome of the custom-instruction fault handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultResolution {
    /// Mapping repaired or circuit loaded; reissue the faulting
    /// instruction. `cycles` is the management cost to charge.
    Reissue {
        /// Kernel cycles consumed resolving the fault.
        cycles: u64,
    },
    /// The mapping request was illegal (unregistered CID), the circuit
    /// ran away, or every recovery rung was exhausted — terminate the
    /// process (§4.2). `cycles` is the handler work spent reaching the
    /// verdict (entry, diagnosis, failed retries); the kernel must
    /// charge it so every cost the handler emitted stays conserved.
    Kill {
        /// Kernel cycles consumed before deciding to kill.
        cycles: u64,
    },
}

/// CIS bookkeeping: who owns each PFU, load/use recency, TLB cursor.
#[derive(Debug)]
pub struct Cis {
    mode: DispatchMode,
    share_circuits: bool,
    pfu_owner: Vec<Option<TupleKey>>,
    pfu_image: Vec<Option<u64>>,
    load_seq: Vec<u64>,
    last_use_seq: Vec<u64>,
    seq: u64,
    tlb_hand: usize,
}

impl Cis {
    /// CIS for an RFU with `pfus` units.
    pub fn new(pfus: usize, mode: DispatchMode) -> Self {
        Self::with_sharing(pfus, mode, false)
    }

    /// CIS with circuit sharing (§4.2) enabled or disabled. The paper's
    /// experiments disable sharing to study overload; "in the final
    /// system applications using the same circuits would attempt to
    /// share instances, just changing the state in a single PFU".
    pub fn with_sharing(pfus: usize, mode: DispatchMode, share_circuits: bool) -> Self {
        Self {
            mode,
            share_circuits,
            pfu_owner: vec![None; pfus],
            pfu_image: vec![None; pfus],
            load_seq: vec![0; pfus],
            last_use_seq: vec![0; pfus],
            seq: 1,
            tlb_hand: 0,
        }
    }

    /// The contention-resolution mode.
    pub fn mode(&self) -> DispatchMode {
        self.mode
    }

    /// Which tuple owns each PFU.
    pub fn pfu_owners(&self) -> &[Option<TupleKey>] {
        &self.pfu_owner
    }

    /// Pull fresh completion counts out of the hardware and update the
    /// recency sequence (feeds LRU/Second Chance).
    fn refresh_usage(&mut self, rfu: &mut Rfu) -> Vec<u64> {
        let n = self.pfu_owner.len();
        let mut counts = Vec::with_capacity(n);
        for i in 0..n {
            let c = rfu.pfus_mut().counters_mut().read_and_clear(i);
            if c > 0 {
                self.seq += 1;
                self.last_use_seq[i] = self.seq;
            }
            counts.push(c);
        }
        counts
    }

    /// Program a TLB entry, evicting (round-robin over slots) if full.
    /// Emits the [`Event::TlbProgram`] — attributed to `tag`'s callsite,
    /// since TLB programming happens on behalf of whichever path asked
    /// for it — and returns its cycle cost so the caller's charge and
    /// the event stay structurally paired.
    #[allow(clippy::too_many_arguments)]
    fn tlb_insert(
        cam_hand: &mut usize,
        cam: &mut proteus_rfu::Cam,
        key: TupleKey,
        value: u32,
        soft: bool,
        costs: &CostModel,
        probe: &mut Probe,
        at: u64,
        tag: Tag,
    ) -> u64 {
        let (slot, evicted) = match cam.free_slot() {
            Some(s) => (s, false),
            None => {
                let s = *cam_hand % cam.capacity();
                *cam_hand = (s + 1) % cam.capacity();
                (s, true)
            }
        };
        cam.insert(slot, key, value);
        let cost = costs.tlb_program;
        probe.emit(at, tag, Event::TlbProgram { key, soft, evicted, cost });
        cost
    }

    /// Unload the circuit in `pfu`, saving its state frames (and, under
    /// the A4 ablation, the full configuration) back to the owner's
    /// registration record. Returns the cycle cost. `tag` attributes the
    /// work to whoever forced the unload (the placement requester or the
    /// recovery ladder), not the evicted owner.
    #[allow(clippy::too_many_arguments)]
    fn unload(
        &mut self,
        pfu: PfuIndex,
        rfu: &mut Rfu,
        procs: &mut BTreeMap<Pid, Process>,
        costs: &CostModel,
        probe: &mut Probe,
        at: u64,
        tag: Tag,
    ) -> u64 {
        let Some(owner) = self.pfu_owner[pfu].take() else {
            return 0;
        };
        self.pfu_image[pfu] = None;
        let dropped = rfu.tlb_hw_mut().invalidate_value(pfu as u32);
        debug_assert!(dropped <= rfu.tlb_hw().capacity());
        // A faulty slot's status bit is untrustworthy: burned issues
        // drive it low without ever latching operands into the circuit,
        // so saving the 0 would make the next home "resume" an
        // instruction that never started — with stale operands. Saving
        // 1 restarts it instead, which is always sound: circuit state
        // only mutates on completion (DESIGN.md §9).
        let faulty = rfu.pfus().health(pfu).is_faulty();
        let Some((circuit, status)) = rfu.pfus_mut().unload(pfu) else {
            return 0;
        };
        let status = status || faulty;
        probe.emit(at, tag, Event::Eviction { key: owner, pfu });
        let mut cycles = 0u64;
        if let Some(reg) = procs.get_mut(&owner.pid).and_then(|p| p.circuits.get_mut(&owner.cid)) {
            cycles = costs.unload_cycles(reg.static_bytes, reg.state_words);
            let words = reg.state_words as u64
                + if costs.save_full_config_on_unload {
                    (reg.static_bytes as u64).div_ceil(4)
                } else {
                    0
                };
            probe.emit(at, tag, Event::BusTransfer { words, cost: cycles });
            reg.instance = Some(circuit);
            reg.status = status;
            reg.loaded_at = None;
        }
        cycles
    }

    /// The custom-instruction fault handler (Figure 1's "Fault" leg).
    ///
    /// Every action emits its [`Event`] on `probe` at cycle `at` (the
    /// simulated clock does not advance while the handler runs; the
    /// kernel charges the returned `cycles` afterwards). The event
    /// costs along any path sum exactly to the returned charge — the
    /// conservation law the ledger is built on.
    #[allow(clippy::too_many_arguments)]
    pub fn handle_fault(
        &mut self,
        key: TupleKey,
        rfu: &mut Rfu,
        procs: &mut BTreeMap<Pid, Process>,
        policy: &mut dyn ReplacementPolicy,
        recovery: &RecoveryPolicy,
        faults: Option<&mut FaultUnit>,
        costs: &CostModel,
        probe: &mut Probe,
        at: u64,
    ) -> FaultResolution {
        let mut cycles = costs.fault_entry;
        let miss = Tag::new(key.pid, Callsite::TlbMiss);
        probe.emit(at, miss, Event::Fault { key, cost: cycles });

        match rfu.take_fault() {
            // Runaway circuits are fatal (the OS's timeliness
            // guarantee, §2).
            Some(FaultInfo::Runaway { .. }) => return FaultResolution::Kill { cycles },
            // The per-PFU watchdog tripped: enter the recovery ladder
            // (DESIGN.md §9) instead of the placement path.
            Some(FaultInfo::Watchdog { pfu, burned, .. }) => {
                return self.recover_pfu_fault(
                    key, pfu, burned, rfu, procs, policy, recovery, faults, costs, probe, at,
                    cycles,
                );
            }
            _ => {}
        }

        let Some(proc) = procs.get_mut(&key.pid) else {
            return FaultResolution::Kill { cycles };
        };
        let Some(reg) = proc.circuits.get_mut(&key.cid) else {
            // "terminate the process if the mapping request was illegal".
            return FaultResolution::Kill { cycles };
        };

        // §4.2: check for a plain mapping fault first — the circuit is
        // resident but its TLB entry was pushed out.
        if let Some(pfu) = reg.loaded_at {
            probe.emit(at, miss, Event::MappingRepair { key });
            cycles += Self::tlb_insert(
                &mut self.tlb_hand, rfu.tlb_hw_mut(), key, pfu as u32, false, costs, probe, at,
                miss,
            );
            return FaultResolution::Reissue { cycles };
        }

        // A tuple already dispatched to software stays on the software
        // path (its instruction may hold mid-protocol shadow state in
        // process memory); this fault just means the TLB2 entry was
        // pushed out.
        if reg.soft_active {
            // soft_active is only ever set alongside a registered
            // alternative; a missing one is an illegal mapping request.
            debug_assert!(reg.software_alt.is_some(), "soft_active without an alternative");
            let Some(addr) = reg.software_alt else {
                return FaultResolution::Kill { cycles };
            };
            probe.emit(at, miss, Event::MappingRepair { key });
            cycles += Self::tlb_insert(
                &mut self.tlb_hand, rfu.tlb_sw_mut(), key, addr, true, costs, probe, at, miss,
            );
            return FaultResolution::Reissue { cycles };
        }

        let state_words = reg.state_words;
        let image = reg.image;

        // Sharing fast path (§4.2): another process's instance of the
        // same configuration image is resident — hand the PFU over by
        // swapping state frames only, no reconfiguration. (Allocatable
        // = free and not quarantined; identical to the free list when
        // no fault plan is active.)
        if self.share_circuits && rfu.pfus().available_pfus().is_empty() {
            if let Some(pfu) = image.and_then(|img| {
                (0..self.pfu_image.len()).find(|&p| self.pfu_image[p] == Some(img))
            }) {
                // Return the resident instance (with its state) to its
                // owner's registry...
                let prev_owner = self.pfu_owner[pfu].take();
                rfu.tlb_hw_mut().invalidate_value(pfu as u32);
                // Same status-bit trust rule as `unload`: a faulty
                // slot's low bit is a burn artefact, not real progress.
                let faulty = rfu.pfus().health(pfu).is_faulty();
                if let Some((circuit, status)) = rfu.pfus_mut().unload(pfu) {
                    if let Some(prev) = prev_owner {
                        if let Some(prev_reg) =
                            procs.get_mut(&prev.pid).and_then(|p| p.circuits.get_mut(&prev.cid))
                        {
                            prev_reg.instance = Some(circuit);
                            prev_reg.status = status || faulty;
                            prev_reg.loaded_at = None;
                        }
                    }
                }
                // ...and install the faulting process's instance: the
                // static configuration is identical, so only the state
                // frames move over the bus. Both lookups succeeded at
                // handler entry; a miss here would be a registry bug.
                let Some(reg) =
                    procs.get_mut(&key.pid).and_then(|p| p.circuits.get_mut(&key.cid))
                else {
                    debug_assert!(false, "registration vanished mid-handler");
                    return FaultResolution::Kill { cycles };
                };
                let Some(circuit) = reg.instance.take() else {
                    debug_assert!(false, "unloaded tuple without a home instance");
                    return FaultResolution::Kill { cycles };
                };
                rfu.pfus_mut().load(pfu, circuit);
                rfu.pfus_mut().set_status(pfu, reg.status);
                reg.loaded_at = Some(pfu);
                self.seq += 1;
                self.last_use_seq[pfu] = self.seq;
                self.pfu_owner[pfu] = Some(key);
                self.pfu_image[pfu] = image;
                let reconf = Tag::new(key.pid, Callsite::Reconfiguration);
                probe.emit(at, reconf, Event::StateSwap { key, pfu });
                let swap_cost = costs.state_swap_cycles(state_words);
                probe.emit(
                    at,
                    reconf,
                    Event::BusTransfer { words: 2 * state_words as u64, cost: swap_cost },
                );
                cycles += swap_cost;
                cycles += Self::tlb_insert(
                    &mut self.tlb_hand, rfu.tlb_hw_mut(), key, pfu as u32, false, costs, probe, at,
                    reconf,
                );
                return FaultResolution::Reissue { cycles };
            }
        }

        self.place_and_load(key, rfu, procs, policy, recovery, faults, costs, probe, at, cycles)
    }

    /// Find a home for `key`'s circuit — an allocatable PFU, the
    /// software alternative, or a victim's slot — and drive the full
    /// configuration across the bus, verifying the transfer when the
    /// fault plan models transit corruption. `cycles` carries the
    /// caller's charge so far; the returned resolution folds in every
    /// cost emitted here.
    #[allow(clippy::too_many_arguments)]
    fn place_and_load(
        &mut self,
        key: TupleKey,
        rfu: &mut Rfu,
        procs: &mut BTreeMap<Pid, Process>,
        policy: &mut dyn ReplacementPolicy,
        recovery: &RecoveryPolicy,
        faults: Option<&mut FaultUnit>,
        costs: &CostModel,
        probe: &mut Probe,
        at: u64,
        mut cycles: u64,
    ) -> FaultResolution {
        let Some(reg) = procs.get(&key.pid).and_then(|p| p.circuits.get(&key.cid)) else {
            debug_assert!(false, "placement for an unregistered tuple");
            return FaultResolution::Kill { cycles };
        };
        let software_alt = reg.software_alt;
        let static_bytes = reg.static_bytes;
        let state_words = reg.state_words;
        let image = reg.image;
        let reconf = Tag::new(key.pid, Callsite::Reconfiguration);

        // Find a home: an allocatable PFU, the software alternative, or
        // a victim.
        let target = match rfu.pfus().available_pfus().first().copied() {
            Some(free) => free,
            None => {
                // With every slot quarantined there is nothing to
                // evict; software dispatch is the only way forward.
                let no_victims = self.pfu_owner.iter().all(Option::is_none);
                if self.mode == DispatchMode::SoftwareFallback || no_victims {
                    if let Some(addr) = software_alt {
                        let sw = Tag::new(key.pid, Callsite::SwDispatch);
                        probe.emit(at, sw, Event::SoftwareInstall { key });
                        cycles += Self::tlb_insert(
                            &mut self.tlb_hand, rfu.tlb_sw_mut(), key, addr, true, costs, probe,
                            at, sw,
                        );
                        if let Some(reg) =
                            procs.get_mut(&key.pid).and_then(|p| p.circuits.get_mut(&key.cid))
                        {
                            reg.soft_active = true;
                        }
                        return FaultResolution::Reissue { cycles };
                    }
                }
                if no_victims {
                    return FaultResolution::Kill { cycles };
                }
                let counts = self.refresh_usage(rfu);
                let victim = policy.select_victim(&PolicyView {
                    occupied: &self.pfu_owner,
                    completions: &counts,
                    last_use_seq: &self.last_use_seq,
                    load_seq: &self.load_seq,
                    current_pid: key.pid,
                });
                assert!(victim < self.pfu_owner.len(), "policy returned bad PFU {victim}");
                cycles += self.unload(victim, rfu, procs, costs, probe, at, reconf);
                victim
            }
        };

        // Full configuration load: static frames + state frames (§4.1).
        let Some(reg) = procs.get_mut(&key.pid).and_then(|p| p.circuits.get_mut(&key.cid)) else {
            debug_assert!(false, "registration vanished mid-handler");
            return FaultResolution::Kill { cycles };
        };
        let Some(circuit) = reg.instance.take() else {
            debug_assert!(false, "unloaded tuple without a home instance");
            return FaultResolution::Kill { cycles };
        };
        let evicted = rfu.pfus_mut().load(target, circuit);
        debug_assert!(evicted.is_none(), "target PFU was freed");
        rfu.pfus_mut().set_status(target, reg.status);
        reg.loaded_at = Some(target);
        probe.emit(at, reconf, Event::ConfigLoad { key, pfu: target });
        let full_words = (static_bytes as u64).div_ceil(4) + state_words as u64;
        let load_cost = costs.full_load_cycles(static_bytes, state_words);
        probe.emit(at, reconf, Event::BusTransfer { words: full_words, cost: load_cost });
        cycles += load_cost;

        // Transit verification (DESIGN.md §9): when transfers can
        // corrupt, every load is CRC-checked on arrival and re-driven
        // (bounded) until it verifies. A transfer still corrupt after
        // the retry budget stays in place flagged corrupt — the
        // watchdog path repairs it on first use.
        if let Some(fu) = faults {
            if fu.transit_active() {
                let rungs = Tag::new(key.pid, Callsite::FaultRungs);
                let mut corrupt = fu.transit_corrupts();
                probe.emit(
                    at,
                    rungs,
                    Event::ScrubCheck { pfu: target, corrupt, cost: costs.crc_check },
                );
                cycles += costs.crc_check;
                let mut attempt = 0u32;
                while corrupt && attempt < recovery.max_retries {
                    attempt += 1;
                    let cost = costs.retry_load_cycles(static_bytes, state_words, attempt);
                    probe.emit(
                        at,
                        rungs,
                        Event::RecoveryRetry { key, pfu: target, attempt, words: full_words, cost },
                    );
                    cycles += cost;
                    corrupt = fu.transit_corrupts();
                    probe.emit(
                        at,
                        rungs,
                        Event::ScrubCheck { pfu: target, corrupt, cost: costs.crc_check },
                    );
                    cycles += costs.crc_check;
                }
                if corrupt {
                    rfu.pfus_mut().health_mut(target).config_corrupt = true;
                }
            }
        }

        self.seq += 1;
        self.load_seq[target] = self.seq;
        self.last_use_seq[target] = self.seq;
        self.pfu_owner[target] = Some(key);
        self.pfu_image[target] = image;
        cycles += Self::tlb_insert(
            &mut self.tlb_hand, rfu.tlb_hw_mut(), key, target as u32, false, costs, probe, at,
            reconf,
        );
        FaultResolution::Reissue { cycles }
    }

    /// Re-drive `key`'s full configuration into the slot it already
    /// occupies (a recovery reconfiguration): fresh static frames clear
    /// any corruption, and the status-register reset restarts the
    /// interrupted instruction cleanly — a faulty slot never clocked
    /// it, so no progress is lost. Returns the cycle cost, or `None`
    /// if the slot was unexpectedly empty.
    #[allow(clippy::too_many_arguments)]
    fn reload_in_place(
        key: TupleKey,
        pfu: PfuIndex,
        static_bytes: usize,
        state_words: usize,
        rfu: &mut Rfu,
        costs: &CostModel,
        probe: &mut Probe,
        at: u64,
    ) -> Option<u64> {
        let attempt = rfu.pfus().health(pfu).retries + 1;
        rfu.pfus_mut().health_mut(pfu).retries = attempt;
        let (circuit, _) = rfu.pfus_mut().unload(pfu)?;
        rfu.pfus_mut().load(pfu, circuit);
        let cost = costs.retry_load_cycles(static_bytes, state_words, attempt);
        let words = (static_bytes as u64).div_ceil(4) + state_words as u64;
        probe.emit(
            at,
            Tag::new(key.pid, Callsite::FaultRungs),
            Event::RecoveryRetry { key, pfu, attempt, words, cost },
        );
        Some(cost)
    }

    /// The DESIGN.md §9 recovery ladder for a tripped PFU watchdog.
    ///
    /// Detection charges the burned clocks plus a CRC readback of the
    /// slot. Corrupt frames (an SEU hit) are repaired in place;
    /// otherwise the slot takes a hard-fault strike and the ladder
    /// climbs: bounded retry reconfiguration → software-dispatch
    /// failover → quarantine-and-relocate, killing the process only
    /// when every rung is exhausted or disabled.
    #[allow(clippy::too_many_arguments)]
    fn recover_pfu_fault(
        &mut self,
        key: TupleKey,
        pfu: PfuIndex,
        burned: u64,
        rfu: &mut Rfu,
        procs: &mut BTreeMap<Pid, Process>,
        policy: &mut dyn ReplacementPolicy,
        recovery: &RecoveryPolicy,
        faults: Option<&mut FaultUnit>,
        costs: &CostModel,
        probe: &mut Probe,
        at: u64,
        mut cycles: u64,
    ) -> FaultResolution {
        // Diagnose: read the slot's frames back. The burned clocks are
        // real time the faulting issue consumed that never came back
        // through the coprocessor port, so they are charged (and
        // attributed to detection) here.
        let kind = if rfu.pfus().health(pfu).config_corrupt {
            PfuFaultKind::CrcMismatch
        } else {
            PfuFaultKind::Watchdog
        };
        let rungs = Tag::new(key.pid, Callsite::FaultRungs);
        let detect = burned + costs.crc_check;
        probe.emit(at, rungs, Event::PfuFault { key, pfu, kind, cost: detect });
        cycles += detect;

        let Some(reg) = procs.get(&key.pid).and_then(|p| p.circuits.get(&key.cid)) else {
            return FaultResolution::Kill { cycles };
        };
        debug_assert_eq!(reg.loaded_at, Some(pfu), "watchdog names the hosting slot");
        let static_bytes = reg.static_bytes;
        let state_words = reg.state_words;
        let software_alt = reg.software_alt;

        // Rung 0 — SEU repair: corrupt frames explain the hang, and the
        // damage lives in the configuration SRAM, not the slot. Bounded
        // by the slot's reconfiguration allowance (`retries` resets on
        // every completion): under upsets denser than the reload time a
        // genuinely hung slot re-corrupts before every watchdog trip,
        // and an unconditional repair would loop here forever without
        // ever recording a strike.
        if kind == PfuFaultKind::CrcMismatch
            && rfu.pfus().health(pfu).retries <= recovery.max_retries
        {
            let Some(cost) =
                Self::reload_in_place(key, pfu, static_bytes, state_words, rfu, costs, probe, at)
            else {
                debug_assert!(false, "watchdog tripped on an empty slot");
                return FaultResolution::Kill { cycles };
            };
            return FaultResolution::Reissue { cycles: cycles + cost };
        }

        // A hard fault: the frames verify but the slot never completes
        // (stuck `done`, hung circuit) — or repair-in-place keeps
        // failing to clear the hang. Strike one against the slot.
        rfu.pfus_mut().health_mut(pfu).fault_count += 1;
        let health = rfu.pfus().health(pfu);

        // Top rung — quarantine: a persistent offender stops being
        // allocatable, and the circuit relocates through the normal
        // placement path (relocation loads are ordinary config-bus
        // work, charged by the ordinary events).
        if recovery.quarantine_threshold.is_some_and(|t| health.fault_count >= t) {
            rfu.pfus_mut().health_mut(pfu).quarantined = true;
            cycles += self.unload(pfu, rfu, procs, costs, probe, at, rungs);
            probe.emit(at, rungs, Event::Quarantine { pfu });
            // The stuck slot never clocked the instruction; restart it
            // from scratch on the new home.
            if let Some(reg) = procs.get_mut(&key.pid).and_then(|p| p.circuits.get_mut(&key.cid)) {
                reg.status = true;
            }
            return self.place_and_load(
                key, rfu, procs, policy, recovery, faults, costs, probe, at, cycles,
            );
        }

        // First rung — bounded blind retries: reconfigure the same slot
        // in case the hang was transient.
        if health.retries < recovery.max_retries {
            let Some(cost) =
                Self::reload_in_place(key, pfu, static_bytes, state_words, rfu, costs, probe, at)
            else {
                debug_assert!(false, "watchdog tripped on an empty slot");
                return FaultResolution::Kill { cycles };
            };
            return FaultResolution::Reissue { cycles: cycles + cost };
        }

        // Second rung — software failover: abandon the slot and reroute
        // the tuple through TLB2 (§2's graceful degradation).
        if recovery.software_failover {
            if let Some(addr) = software_alt {
                cycles += self.unload(pfu, rfu, procs, costs, probe, at, rungs);
                if let Some(reg) =
                    procs.get_mut(&key.pid).and_then(|p| p.circuits.get_mut(&key.cid))
                {
                    reg.soft_active = true;
                    reg.status = true;
                }
                let cam = rfu.tlb_sw_mut();
                let slot = match cam.free_slot() {
                    Some(s) => s,
                    None => {
                        let s = self.tlb_hand % cam.capacity();
                        self.tlb_hand = (s + 1) % cam.capacity();
                        s
                    }
                };
                cam.insert(slot, key, addr);
                // The TLB2 programming is charged through the failover
                // event so the work lands in the fault-recovery ledger
                // category rather than routine TLB maintenance.
                let cost = costs.tlb_program;
                probe.emit(at, rungs, Event::SoftwareFailover { key, pfu, cost });
                cycles += cost;
                return FaultResolution::Reissue { cycles };
            }
        }

        // Every rung exhausted or disabled (§4.2: "terminate the
        // process").
        FaultResolution::Kill { cycles }
    }

    /// Process teardown: free its PFUs and purge its TLB entries.
    pub fn release_process(&mut self, pid: Pid, rfu: &mut Rfu) {
        for pfu in 0..self.pfu_owner.len() {
            if self.pfu_owner[pfu].is_some_and(|k| k.pid == pid) {
                self.pfu_owner[pfu] = None;
                self.pfu_image[pfu] = None;
                rfu.pfus_mut().unload(pfu);
            }
        }
        rfu.tlb_hw_mut().invalidate_pid(pid);
        rfu.tlb_sw_mut().invalidate_pid(pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use crate::process::{ProcState, Registered};
    use proteus_cpu::cpu::Context;
    use proteus_cpu::Memory;
    use proteus_rfu::behavioral::FixedLatency;
    use proteus_cpu::Coprocessor;
    use proteus_rfu::RfuConfig;

    fn proc_with_circuit(pid: Pid, cid: u8, sw: Option<u32>) -> Process {
        proc_with_image(pid, cid, sw, None)
    }

    fn proc_with_image(pid: Pid, cid: u8, sw: Option<u32>, image: Option<u64>) -> Process {
        let mut circuits = BTreeMap::new();
        circuits.insert(
            cid,
            Registered::with_image(Box::new(FixedLatency::new("add", 1, 4, |a, b| a + b)), sw, image),
        );
        Process {
            pid,
            ctx: Context::default(),
            mem: Memory::new(1024),
            rfu_regs: [0; 16],
            operand_block: [0; 5],
            state: ProcState::Ready,
            circuits,
            circuit_table: Vec::new(),
            finish_cycle: None,
            console: Vec::new(),
        }
    }

    fn setup(n_procs: u32, pfus: usize, mode: DispatchMode, sw: Option<u32>) -> (Cis, Rfu, BTreeMap<Pid, Process>, Box<dyn ReplacementPolicy>, CostModel, Probe) {
        let cis = Cis::new(pfus, mode);
        let rfu = Rfu::new(RfuConfig { pfus, ..RfuConfig::default() });
        let mut procs = BTreeMap::new();
        for pid in 1..=n_procs {
            procs.insert(pid, proc_with_circuit(pid, 0, sw));
        }
        (cis, rfu, procs, PolicyKind::RoundRobin.build(), CostModel::default(), Probe::new(256))
    }

    #[test]
    fn first_fault_loads_into_free_pfu() {
        let (mut cis, mut rfu, mut procs, mut pol, costs, mut probe) =
            setup(1, 4, DispatchMode::HardwareOnly, None);
        let key = TupleKey::new(1, 0);
        let res = cis.handle_fault(key, &mut rfu, &mut procs, pol.as_mut(), &RecoveryPolicy::default(), None, &costs, &mut probe, 0);
        match res {
            FaultResolution::Reissue { cycles } => {
                assert!(cycles > 13_000, "full 54 KB load, got {cycles}");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(probe.stats().config_loads, 1);
        // Instruction now dispatches in hardware.
        assert!(matches!(
            rfu.exec_custom(1, 0, 2, 3, 0, 0, 100),
            proteus_cpu::coproc::CoprocResult::Done { value: 5, .. }
        ));
    }

    #[test]
    fn unregistered_cid_kills() {
        let (mut cis, mut rfu, mut procs, mut pol, costs, mut probe) =
            setup(1, 4, DispatchMode::HardwareOnly, None);
        let res = cis.handle_fault(TupleKey::new(1, 9), &mut rfu, &mut procs, pol.as_mut(), &RecoveryPolicy::default(), None, &costs, &mut probe, 0);
        assert!(matches!(res, FaultResolution::Kill { .. }));
    }

    #[test]
    fn contention_evicts_a_victim() {
        let (mut cis, mut rfu, mut procs, mut pol, costs, mut probe) =
            setup(5, 4, DispatchMode::HardwareOnly, None);
        for pid in 1..=5 {
            let res = cis.handle_fault(TupleKey::new(pid, 0), &mut rfu, &mut procs, pol.as_mut(), &RecoveryPolicy::default(), None, &costs, &mut probe, 0);
            assert!(matches!(res, FaultResolution::Reissue { .. }));
        }
        assert_eq!(probe.stats().config_loads, 5);
        assert_eq!(probe.stats().evictions, 1, "fifth circuit evicted one of the four");
        // The evicted process's registration got its instance (and
        // state) back.
        let evicted_pid = (1..=5)
            .find(|p| procs[p].circuits[&0].loaded_at.is_none())
            .expect("someone was evicted");
        assert!(procs[&evicted_pid].circuits[&0].instance.is_some());
    }

    #[test]
    fn software_fallback_avoids_eviction() {
        let (mut cis, mut rfu, mut procs, mut pol, costs, mut probe) =
            setup(5, 4, DispatchMode::SoftwareFallback, Some(0x4000));
        for pid in 1..=5 {
            cis.handle_fault(TupleKey::new(pid, 0), &mut rfu, &mut procs, pol.as_mut(), &RecoveryPolicy::default(), None, &costs, &mut probe, 0);
        }
        assert_eq!(probe.stats().config_loads, 4, "only the four free PFUs were filled");
        assert_eq!(probe.stats().evictions, 0);
        assert_eq!(probe.stats().software_installs, 1);
        // Fifth process now dispatches to software.
        assert!(matches!(
            rfu.exec_custom(5, 0, 2, 3, 0, 0x88, 100),
            proteus_cpu::coproc::CoprocResult::SoftwareDispatch { target: 0x4000, .. }
        ));
    }

    #[test]
    fn mapping_fault_is_cheap() {
        let (mut cis, mut rfu, mut procs, mut pol, costs, mut probe) =
            setup(1, 4, DispatchMode::HardwareOnly, None);
        let key = TupleKey::new(1, 0);
        cis.handle_fault(key, &mut rfu, &mut procs, pol.as_mut(), &RecoveryPolicy::default(), None, &costs, &mut probe, 0);
        // Simulate the TLB entry being pushed out while the circuit
        // stays resident.
        rfu.tlb_hw_mut().invalidate(key);
        let res = cis.handle_fault(key, &mut rfu, &mut procs, pol.as_mut(), &RecoveryPolicy::default(), None, &costs, &mut probe, 0);
        match res {
            FaultResolution::Reissue { cycles } => {
                assert!(cycles < 200, "mapping fault must not reload 54 KB, got {cycles}");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(probe.stats().mapping_faults, 1);
        assert_eq!(probe.stats().config_loads, 1, "no second load");
    }

    #[test]
    fn sharing_hands_over_via_state_swap() {
        // One PFU, two processes with the SAME configuration image:
        // the second fault must resolve with a state swap, not a load.
        let mut cis = Cis::with_sharing(1, DispatchMode::HardwareOnly, true);
        let mut rfu = Rfu::new(RfuConfig { pfus: 1, ..RfuConfig::default() });
        let mut procs = BTreeMap::new();
        procs.insert(1, proc_with_image(1, 0, None, Some(77)));
        procs.insert(2, proc_with_image(2, 0, None, Some(77)));
        let mut pol = PolicyKind::RoundRobin.build();
        let costs = CostModel::default();
        let mut probe = Probe::new(256);

        let r1 = cis.handle_fault(TupleKey::new(1, 0), &mut rfu, &mut procs, pol.as_mut(), &RecoveryPolicy::default(), None, &costs, &mut probe, 0);
        assert!(matches!(r1, FaultResolution::Reissue { cycles } if cycles > 13_000), "first is a full load");
        match cis.handle_fault(TupleKey::new(2, 0), &mut rfu, &mut procs, pol.as_mut(), &RecoveryPolicy::default(), None, &costs, &mut probe, 0) {
            FaultResolution::Reissue { cycles } => {
                assert!(cycles < 500, "handover must be a state swap, took {cycles}");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(probe.stats().config_loads, 1);
        assert_eq!(probe.stats().state_swaps, 1);
        assert_eq!(probe.stats().evictions, 0);
        // Process 2 now dispatches in hardware; process 1's mapping is
        // gone and its instance is home with its state.
        assert!(matches!(
            rfu.exec_custom(2, 0, 4, 5, 0, 0, 100),
            proteus_cpu::coproc::CoprocResult::Done { value: 9, .. }
        ));
        assert!(rfu.tlb_hw().lookup(TupleKey::new(1, 0)).is_none());
        assert!(procs[&1].circuits[&0].instance.is_some());
    }

    #[test]
    fn different_images_do_not_share() {
        let mut cis = Cis::with_sharing(1, DispatchMode::HardwareOnly, true);
        let mut rfu = Rfu::new(RfuConfig { pfus: 1, ..RfuConfig::default() });
        let mut procs = BTreeMap::new();
        procs.insert(1, proc_with_image(1, 0, None, Some(77)));
        procs.insert(2, proc_with_image(2, 0, None, Some(88)));
        let mut pol = PolicyKind::RoundRobin.build();
        let costs = CostModel::default();
        let mut probe = Probe::new(256);
        cis.handle_fault(TupleKey::new(1, 0), &mut rfu, &mut procs, pol.as_mut(), &RecoveryPolicy::default(), None, &costs, &mut probe, 0);
        cis.handle_fault(TupleKey::new(2, 0), &mut rfu, &mut procs, pol.as_mut(), &RecoveryPolicy::default(), None, &costs, &mut probe, 0);
        assert_eq!(probe.stats().state_swaps, 0);
        assert_eq!(probe.stats().config_loads, 2);
        assert_eq!(probe.stats().evictions, 1, "incompatible images evict as usual");
    }

    #[test]
    fn release_process_frees_pfus_and_tlbs() {
        let (mut cis, mut rfu, mut procs, mut pol, costs, mut probe) =
            setup(2, 4, DispatchMode::HardwareOnly, None);
        cis.handle_fault(TupleKey::new(1, 0), &mut rfu, &mut procs, pol.as_mut(), &RecoveryPolicy::default(), None, &costs, &mut probe, 0);
        cis.handle_fault(TupleKey::new(2, 0), &mut rfu, &mut procs, pol.as_mut(), &RecoveryPolicy::default(), None, &costs, &mut probe, 0);
        cis.release_process(1, &mut rfu);
        assert_eq!(rfu.pfus().free_pfus().len(), 3);
        assert_eq!(rfu.tlb_hw().lookup(TupleKey::new(1, 0)), None);
        assert!(rfu.tlb_hw().lookup(TupleKey::new(2, 0)).is_some());
    }

    fn watchdog_rfu(pfus: usize, wd: u64) -> Rfu {
        Rfu::new(RfuConfig { pfus, watchdog_cycles: Some(wd), ..RfuConfig::default() })
    }

    /// Drive one watchdog trip: issue the instruction until the RFU
    /// reports a fault (the faulty slot burns its watchdog allowance).
    fn trip(rfu: &mut Rfu, pid: Pid) {
        assert!(
            matches!(
                rfu.exec_custom(pid, 0, 2, 3, 0, 0, 100_000),
                proteus_cpu::coproc::CoprocResult::Fault
            ),
            "expected a watchdog trip"
        );
    }

    #[test]
    fn seu_corruption_is_repaired_in_place() {
        let (mut cis, _, mut procs, mut pol, costs, mut probe) =
            setup(1, 4, DispatchMode::HardwareOnly, None);
        let mut rfu = watchdog_rfu(4, 100);
        let key = TupleKey::new(1, 0);
        cis.handle_fault(key, &mut rfu, &mut procs, pol.as_mut(), &RecoveryPolicy::default(), None, &costs, &mut probe, 0);
        let pfu = procs[&1].circuits[&0].loaded_at.expect("loaded");

        // An SEU corrupts the resident frames; the next issue hangs,
        // the watchdog trips, and the handler repairs in place.
        rfu.pfus_mut().health_mut(pfu).config_corrupt = true;
        trip(&mut rfu, 1);
        let res = cis.handle_fault(key, &mut rfu, &mut procs, pol.as_mut(), &RecoveryPolicy::default(), None, &costs, &mut probe, 0);
        match res {
            FaultResolution::Reissue { cycles } => {
                assert!(cycles > 13_000, "repair re-drives the full configuration: {cycles}");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(probe.stats().pfu_faults, 1);
        assert_eq!(probe.stats().crc_errors, 1, "readback attributed the trip to corruption");
        assert_eq!(probe.stats().recovery_retries, 1);
        assert_eq!(probe.stats().quarantines, 0);
        // Recovered: same slot, correct result.
        assert_eq!(procs[&1].circuits[&0].loaded_at, Some(pfu));
        assert!(matches!(
            rfu.exec_custom(1, 0, 2, 3, 0, 0, 100_000),
            proteus_cpu::coproc::CoprocResult::Done { value: 5, .. }
        ));
    }

    #[test]
    fn stuck_done_escalates_to_quarantine_and_relocation() {
        let (mut cis, _, mut procs, mut pol, costs, mut probe) =
            setup(1, 4, DispatchMode::HardwareOnly, None);
        let mut rfu = watchdog_rfu(4, 100);
        let recovery =
            RecoveryPolicy { max_retries: 1, software_failover: false, quarantine_threshold: Some(2) };
        let key = TupleKey::new(1, 0);
        cis.handle_fault(key, &mut rfu, &mut procs, pol.as_mut(), &recovery, None, &costs, &mut probe, 0);
        let home = procs[&1].circuits[&0].loaded_at.expect("loaded");
        rfu.pfus_mut().health_mut(home).stuck_done = true;

        // Trip 1: the blind retry reconfigures the same (still stuck)
        // slot. Trip 2: strike two, quarantine and relocate.
        trip(&mut rfu, 1);
        cis.handle_fault(key, &mut rfu, &mut procs, pol.as_mut(), &recovery, None, &costs, &mut probe, 0);
        assert_eq!(probe.stats().recovery_retries, 1);
        trip(&mut rfu, 1);
        let res = cis.handle_fault(key, &mut rfu, &mut procs, pol.as_mut(), &recovery, None, &costs, &mut probe, 0);
        assert!(matches!(res, FaultResolution::Reissue { .. }));

        assert_eq!(probe.stats().quarantines, 1);
        assert!(rfu.pfus().health(home).quarantined);
        let new_home = procs[&1].circuits[&0].loaded_at.expect("relocated");
        assert_ne!(new_home, home, "circuit moved off the quarantined slot");
        assert!(!rfu.pfus().available_pfus().contains(&home));
        // Degraded but correct: the instruction completes on the new
        // home.
        assert!(matches!(
            rfu.exec_custom(1, 0, 2, 3, 0, 0, 100_000),
            proteus_cpu::coproc::CoprocResult::Done { value: 5, .. }
        ));
    }

    #[test]
    fn exhausted_retries_fail_over_to_software() {
        let (mut cis, _, mut procs, mut pol, costs, mut probe) =
            setup(1, 1, DispatchMode::HardwareOnly, Some(0x4000));
        let mut rfu = watchdog_rfu(1, 100);
        let recovery =
            RecoveryPolicy { max_retries: 0, software_failover: true, quarantine_threshold: None };
        let key = TupleKey::new(1, 0);
        cis.handle_fault(key, &mut rfu, &mut procs, pol.as_mut(), &recovery, None, &costs, &mut probe, 0);
        rfu.pfus_mut().health_mut(0).stuck_done = true;

        trip(&mut rfu, 1);
        let res = cis.handle_fault(key, &mut rfu, &mut procs, pol.as_mut(), &recovery, None, &costs, &mut probe, 0);
        assert!(matches!(res, FaultResolution::Reissue { .. }));
        assert_eq!(probe.stats().fault_failovers, 1);
        assert_eq!(probe.stats().recovery_retries, 0, "retry rung was disabled");
        assert!(procs[&1].circuits[&0].soft_active);
        assert!(rfu.pfus().free_pfus().contains(&0), "the abandoned slot was unloaded");
        // The reissue dispatches through TLB2 to the alternative.
        assert!(matches!(
            rfu.exec_custom(1, 0, 2, 3, 0, 0x88, 100_000),
            proteus_cpu::coproc::CoprocResult::SoftwareDispatch { target: 0x4000, .. }
        ));
    }

    #[test]
    fn retry_only_policy_kills_on_persistent_fault() {
        let (mut cis, _, mut procs, mut pol, costs, mut probe) =
            setup(1, 1, DispatchMode::HardwareOnly, Some(0x4000));
        let mut rfu = watchdog_rfu(1, 100);
        let recovery = RecoveryPolicy::retry_only(1);
        let key = TupleKey::new(1, 0);
        cis.handle_fault(key, &mut rfu, &mut procs, pol.as_mut(), &recovery, None, &costs, &mut probe, 0);
        rfu.pfus_mut().health_mut(0).stuck_done = true;

        trip(&mut rfu, 1);
        assert!(matches!(
            cis.handle_fault(key, &mut rfu, &mut procs, pol.as_mut(), &recovery, None, &costs, &mut probe, 0),
            FaultResolution::Reissue { .. }
        ));
        trip(&mut rfu, 1);
        // Retries exhausted, failover disabled: the ladder bottoms out.
        assert!(matches!(
            cis.handle_fault(key, &mut rfu, &mut procs, pol.as_mut(), &recovery, None, &costs, &mut probe, 0),
            FaultResolution::Kill { .. }
        ));
    }

    #[test]
    fn eviction_preserves_mid_instruction_state() {
        // One PFU, two processes with multi-cycle circuits: process 1's
        // instruction is interrupted, evicted, reloaded, and must resume
        // where it stopped.
        let mut cis = Cis::new(1, DispatchMode::HardwareOnly);
        let mut rfu = Rfu::new(RfuConfig { pfus: 1, ..RfuConfig::default() });
        let mut procs = BTreeMap::new();
        for pid in 1..=2u32 {
            let mut p = proc_with_circuit(pid, 0, None);
            p.circuits.insert(
                0,
                Registered::new(Box::new(FixedLatency::new("slow", 10, 4, |a, b| a + b)), None),
            );
            procs.insert(pid, p);
        }
        let mut pol = PolicyKind::RoundRobin.build();
        let costs = CostModel::default();
        let mut probe = Probe::new(256);

        cis.handle_fault(TupleKey::new(1, 0), &mut rfu, &mut procs, pol.as_mut(), &RecoveryPolicy::default(), None, &costs, &mut probe, 0);
        // Run 4 of 10 cycles, then get interrupted.
        assert!(matches!(
            rfu.exec_custom(1, 0, 20, 22, 0, 0, 4),
            proteus_cpu::coproc::CoprocResult::Interrupted { cycles: 4 }
        ));
        // Process 2 steals the PFU.
        cis.handle_fault(TupleKey::new(2, 0), &mut rfu, &mut procs, pol.as_mut(), &RecoveryPolicy::default(), None, &costs, &mut probe, 0);
        assert!(matches!(
            rfu.exec_custom(2, 0, 1, 1, 0, 0, 1000),
            proteus_cpu::coproc::CoprocResult::Done { value: 2, .. }
        ));
        // Process 1 faults (its mapping is gone), gets reloaded, and the
        // reissued instruction needs only the remaining 6 cycles.
        assert!(matches!(
            rfu.exec_custom(1, 0, 20, 22, 0, 0, 1000),
            proteus_cpu::coproc::CoprocResult::Fault
        ));
        cis.handle_fault(TupleKey::new(1, 0), &mut rfu, &mut procs, pol.as_mut(), &RecoveryPolicy::default(), None, &costs, &mut probe, 0);
        assert!(matches!(
            rfu.exec_custom(1, 0, 20, 22, 0, 0, 1000),
            proteus_cpu::coproc::CoprocResult::Done { value: 42, cycles: 6 }
        ));
    }
}
