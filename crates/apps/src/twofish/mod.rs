//! Twofish (Schneier et al., 1998) — complete 128-bit-key
//! implementation, built from the specification.
//!
//! The cipher is one of the paper's three workloads. In the accelerated
//! guest program the key-dependent **g function** (S-boxes + MDS) runs as
//! a custom instruction — the classic FPGA acceleration target, with the
//! key schedule baked into the configuration like a key-specialised
//! bitstream — while the Feistel structure stays in software.

mod block_circuit;
mod cipher;
mod key;
mod mds;
mod qbox;

pub use block_circuit::{BlockCircuit, ENCRYPT_LATENCY};
pub use cipher::Twofish;
pub use key::{KeySchedule, RHO};
pub use mds::{mds_column, rs_reduce, GF_MDS, GF_RS};
pub use qbox::{q0, q1};

#[cfg(test)]
mod tests {
    use super::*;

    /// The published 128-bit-key known-answer test:
    /// all-zero key, all-zero plaintext.
    #[test]
    fn kat_zero_key_zero_plaintext() {
        let tf = Twofish::new(&[0u8; 16]);
        let ct = tf.encrypt_block(&[0u8; 16]);
        assert_eq!(
            ct,
            [
                0x9F, 0x58, 0x9F, 0x5C, 0xF6, 0x12, 0x2C, 0x32, 0xB6, 0xBF, 0xEC, 0x2F, 0x2A,
                0xE8, 0xC3, 0x5A
            ]
        );
    }

    /// Second step of the published iterative KAT (`ecb_ival.txt`):
    /// the zero key encrypting the previous ciphertext.
    #[test]
    fn kat_iterative_second_step() {
        let ct1: [u8; 16] = [
            0x9F, 0x58, 0x9F, 0x5C, 0xF6, 0x12, 0x2C, 0x32, 0xB6, 0xBF, 0xEC, 0x2F, 0x2A, 0xE8,
            0xC3, 0x5A,
        ];
        let tf = Twofish::new(&[0u8; 16]);
        let ct2 = tf.encrypt_block(&ct1);
        // Published vector: CT=D491DB16E7B1C39E86CB086B789F5419.
        assert_eq!(
            ct2,
            [
                0xD4, 0x91, 0xDB, 0x16, 0xE7, 0xB1, 0xC3, 0x9E, 0x86, 0xCB, 0x08, 0x6B, 0x78,
                0x9F, 0x54, 0x19
            ]
        );
    }

    #[test]
    fn decrypt_inverts_encrypt() {
        let tf = Twofish::new(b"0123456789abcdef");
        for i in 0..32u8 {
            let mut pt = [0u8; 16];
            for (j, b) in pt.iter_mut().enumerate() {
                *b = i.wrapping_mul(31).wrapping_add(j as u8);
            }
            let ct = tf.encrypt_block(&pt);
            assert_ne!(ct, pt);
            assert_eq!(tf.decrypt_block(&ct), pt);
        }
    }

    #[test]
    fn avalanche_on_key_and_plaintext() {
        let tf_a = Twofish::new(&[0u8; 16]);
        let mut key_b = [0u8; 16];
        key_b[0] = 1;
        let tf_b = Twofish::new(&key_b);
        let pt = [0u8; 16];
        let (ca, cb) = (tf_a.encrypt_block(&pt), tf_b.encrypt_block(&pt));
        let diff: u32 = ca.iter().zip(&cb).map(|(x, y)| (x ^ y).count_ones()).sum();
        assert!(diff > 30, "key avalanche too weak: {diff} bits");

        let mut pt2 = pt;
        pt2[15] ^= 0x80;
        let cc = tf_a.encrypt_block(&pt2);
        let diff: u32 = ca.iter().zip(&cc).map(|(x, y)| (x ^ y).count_ones()).sum();
        assert!(diff > 30, "plaintext avalanche too weak: {diff} bits");
    }

    #[test]
    fn ecb_stream_roundtrip() {
        let tf = Twofish::new(b"yellow submarine");
        let data: Vec<u8> = (0..160u8).collect();
        let ct = tf.encrypt_ecb(&data);
        assert_eq!(tf.decrypt_ecb(&ct), data);
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn ecb_rejects_partial_blocks() {
        let tf = Twofish::new(&[0u8; 16]);
        let _ = tf.encrypt_ecb(&[0u8; 17]);
    }
}
