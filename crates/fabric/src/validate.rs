//! Bitstream validation — the security story of the fabric.
//!
//! The paper (§2, §4.1) identifies two security obligations for an OS that
//! accepts configurations from untrusted applications: physical safety and
//! functional safety. The Proteus fabric discharges the physical half by
//! construction — there are no IOBs to drive pins with, and mux-based
//! routing cannot express two drivers on one wire — but the OS still
//! validates every bitstream before loading so that a corrupt or hostile
//! configuration is rejected, not just rendered harmless.
//!
//! Checks performed here:
//!
//! * every routing selector decodes and stays within the fabric/port range
//!   (a selector outside its mux's input count would float a wire on real
//!   silicon);
//! * used LUTs/DFFs only reference CLBs that exist;
//! * reserved frame words are zero (enforced at decode);
//! * there is no combinational routing loop (enforced at device load);
//! * the interface descriptor is self-consistent.

use crate::bitstream::{decode_source, Bitstream, Selector};
use crate::error::FabricError;
use crate::place::SourceRef;

/// Validate a bitstream against its own declared dimensions and ports.
///
/// [`crate::device::Device::load`] calls this automatically; it is public
/// so the OS can vet a configuration at registration time, long before any
/// load is attempted.
///
/// # Errors
///
/// [`FabricError::MalformedBitstream`] describing the first defect found.
pub fn validate(bitstream: &Bitstream) -> Result<(), FabricError> {
    let n_clbs = bitstream.dims().clbs();
    let check_sel = |sel: Selector, context: &str| -> Result<(), FabricError> {
        let src = decode_source(sel)?;
        match src {
            SourceRef::Const(_) => Ok(()),
            SourceRef::Port(port, bit) => {
                let p = bitstream.inputs().get(port as usize).ok_or_else(|| {
                    FabricError::MalformedBitstream {
                        detail: format!("{context}: selector references missing port {port}"),
                    }
                })?;
                if bit >= p.width {
                    return Err(FabricError::MalformedBitstream {
                        detail: format!(
                            "{context}: selector references bit {bit} of {}-bit port `{}`",
                            p.width, p.name
                        ),
                    });
                }
                Ok(())
            }
            SourceRef::ClbLut(clb) | SourceRef::ClbDff(clb) => {
                if clb as usize >= n_clbs {
                    return Err(FabricError::MalformedBitstream {
                        detail: format!("{context}: selector references missing CLB {clb}"),
                    });
                }
                let cfg = &bitstream.clbs()[clb as usize];
                let used = match src {
                    SourceRef::ClbLut(_) => cfg.lut_used,
                    _ => cfg.dff_used,
                };
                if !used {
                    return Err(FabricError::MalformedBitstream {
                        detail: format!("{context}: selector reads unused resource in CLB {clb}"),
                    });
                }
                Ok(())
            }
        }
    };

    for (i, clb) in bitstream.clbs().iter().enumerate() {
        if clb.lut_used {
            for (pin, &sel) in clb.pin_src.iter().enumerate() {
                check_sel(sel, &format!("CLB {i} LUT pin {pin}"))?;
            }
        }
        if clb.dff_used {
            check_sel(clb.dff_src, &format!("CLB {i} DFF"))?;
        }
    }
    for (name, sels) in bitstream.outputs() {
        if sels.is_empty() {
            return Err(FabricError::MalformedBitstream {
                detail: format!("output `{name}` has zero width"),
            });
        }
        for &sel in sels {
            check_sel(sel, &format!("output `{name}`"))?;
        }
    }
    if bitstream.initial_state().bits.len() != n_clbs {
        return Err(FabricError::MalformedBitstream {
            detail: "state frames do not cover the fabric".to_string(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitstream::{encode_source, Bitstream};
    use crate::builder::NetlistBuilder;
    use crate::compile;
    use crate::place::{FabricDims, SourceRef};

    fn good() -> Bitstream {
        let mut b = NetlistBuilder::new();
        let a = b.input_bus("op_a", 8);
        let c = b.input_bus("op_b", 8);
        let x = b.xor_bus(&a, &c);
        b.output_bus("result", &x);
        let n = b.finish().expect("netlist");
        compile(&n, FabricDims::PFU).expect("compile").into_bitstream()
    }

    #[test]
    fn valid_bitstream_passes() {
        assert!(validate(&good()).is_ok());
    }

    #[test]
    fn out_of_range_clb_selector_rejected() {
        let bs = good();
        let mut words = bs.to_words();
        // Corrupt the first used LUT's pin 0 selector to point past the
        // fabric. Static frames start at word 2; pin selectors at +2.
        let frame0 = 2usize;
        words[frame0 + 2] = encode_source(SourceRef::ClbLut(9999));
        // Must re-mark CLB 0 as used for the check to fire; it already is
        // (first CLB hosts a LUT in this design).
        let bs2 = Bitstream::from_words(&words).expect("structurally fine");
        assert!(validate(&bs2).is_err());
    }

    #[test]
    fn selector_to_missing_port_bit_rejected() {
        let bs = good();
        let mut words = bs.to_words();
        words[2 + 2] = encode_source(SourceRef::Port(0, 31)); // op_a is 8 bits
        let bs2 = Bitstream::from_words(&words).expect("structurally fine");
        assert!(validate(&bs2).is_err());
    }

    #[test]
    fn reserved_words_must_be_zero() {
        let bs = good();
        let mut words = bs.to_words();
        words[2 + 8] = 0xFFFF_FFFF; // word 8 of frame 0 is reserved
        assert!(Bitstream::from_words(&words).is_err());
    }
}
