//! Content-addressable memory for the dispatch TLBs.
//!
//! A TLB is "a CAM used to store ID tuples which is used as an index into
//! a RAM" (§4.2). [`Cam`] models both halves: fixed-capacity fully
//! associative match on the `(PID, CID)` key, returning the RAM word.
//! Slot choice is the OS's job (it programs the TLB), so insertion takes
//! an explicit slot.

/// The globally unique custom-instruction name: `(PID, CID)` (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleKey {
    /// Process ID.
    pub pid: u32,
    /// Process-local Circuit ID.
    pub cid: u8,
}

impl TupleKey {
    /// Construct a key.
    pub fn new(pid: u32, cid: u8) -> Self {
        Self { pid, cid }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    key: TupleKey,
    value: u32,
}

/// A fixed-capacity CAM + RAM pair.
///
/// # Example
///
/// ```
/// use proteus_rfu::{Cam, TupleKey};
///
/// let mut tlb = Cam::new(4);
/// let slot = tlb.free_slot().expect("empty TLB has free slots");
/// tlb.insert(slot, TupleKey::new(7, 0), 2); // (PID 7, CID 0) -> PFU 2
/// assert_eq!(tlb.lookup(TupleKey::new(7, 0)), Some(2));
/// assert_eq!(tlb.lookup(TupleKey::new(8, 0)), None, "other PIDs miss");
/// ```
#[derive(Debug, Clone)]
pub struct Cam {
    slots: Vec<Option<Entry>>,
}

impl Cam {
    /// A CAM with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "CAM needs at least one slot");
        Self { slots: vec![None; capacity] }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Occupied slots.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// True if no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Associative lookup (the hardware fast path).
    pub fn lookup(&self, key: TupleKey) -> Option<u32> {
        self.slots.iter().flatten().find(|e| e.key == key).map(|e| e.value)
    }

    /// First free slot, if any.
    pub fn free_slot(&self) -> Option<usize> {
        self.slots.iter().position(Option::is_none)
    }

    /// Program `slot` with a mapping (OS operation). Replaces whatever
    /// the slot held; if the same key is already present in another slot
    /// that stale entry is invalidated, keeping keys unique.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn insert(&mut self, slot: usize, key: TupleKey, value: u32) {
        for s in self.slots.iter_mut() {
            if s.is_some_and(|e| e.key == key) {
                *s = None;
            }
        }
        self.slots[slot] = Some(Entry { key, value });
    }

    /// Invalidate the entry for `key`, returning its value if present.
    pub fn invalidate(&mut self, key: TupleKey) -> Option<u32> {
        for s in self.slots.iter_mut() {
            if s.is_some_and(|e| e.key == key) {
                return s.take().map(|e| e.value);
            }
        }
        None
    }

    /// Invalidate every entry whose value matches `value` (e.g. all
    /// tuples pointing at a PFU being unloaded). Returns how many were
    /// dropped.
    pub fn invalidate_value(&mut self, value: u32) -> usize {
        let mut n = 0;
        for s in self.slots.iter_mut() {
            if s.is_some_and(|e| e.value == value) {
                *s = None;
                n += 1;
            }
        }
        n
    }

    /// Invalidate every entry belonging to `pid` (process exit). Returns
    /// how many were dropped.
    pub fn invalidate_pid(&mut self, pid: u32) -> usize {
        let mut n = 0;
        for s in self.slots.iter_mut() {
            if s.is_some_and(|e| e.key.pid == pid) {
                *s = None;
                n += 1;
            }
        }
        n
    }

    /// Iterate over occupied entries as `(slot, key, value)`.
    pub fn entries(&self) -> impl Iterator<Item = (usize, TupleKey, u32)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|e| (i, e.key, e.value)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_hits_and_misses() {
        let mut cam = Cam::new(4);
        cam.insert(0, TupleKey::new(1, 0), 7);
        cam.insert(1, TupleKey::new(2, 0), 8);
        assert_eq!(cam.lookup(TupleKey::new(1, 0)), Some(7));
        assert_eq!(cam.lookup(TupleKey::new(2, 0)), Some(8));
        assert_eq!(cam.lookup(TupleKey::new(1, 1)), None);
    }

    #[test]
    fn same_pfu_under_many_tuples() {
        // Circuit sharing: several (PID, CID) tuples -> one PFU (§4.2).
        let mut cam = Cam::new(4);
        cam.insert(0, TupleKey::new(1, 0), 2);
        cam.insert(1, TupleKey::new(1, 9), 2);
        cam.insert(2, TupleKey::new(5, 3), 2);
        assert_eq!(cam.lookup(TupleKey::new(1, 9)), Some(2));
        assert_eq!(cam.invalidate_value(2), 3);
        assert!(cam.is_empty());
    }

    #[test]
    fn insert_keeps_keys_unique() {
        let mut cam = Cam::new(4);
        cam.insert(0, TupleKey::new(1, 0), 7);
        cam.insert(3, TupleKey::new(1, 0), 9);
        assert_eq!(cam.lookup(TupleKey::new(1, 0)), Some(9));
        assert_eq!(cam.len(), 1);
    }

    #[test]
    fn pid_invalidation_on_exit() {
        let mut cam = Cam::new(4);
        cam.insert(0, TupleKey::new(1, 0), 0);
        cam.insert(1, TupleKey::new(1, 1), 1);
        cam.insert(2, TupleKey::new(2, 0), 2);
        assert_eq!(cam.invalidate_pid(1), 2);
        assert_eq!(cam.lookup(TupleKey::new(2, 0)), Some(2));
    }

    #[test]
    fn free_slot_tracking() {
        let mut cam = Cam::new(2);
        assert_eq!(cam.free_slot(), Some(0));
        cam.insert(0, TupleKey::new(1, 0), 0);
        assert_eq!(cam.free_slot(), Some(1));
        cam.insert(1, TupleKey::new(1, 1), 1);
        assert_eq!(cam.free_slot(), None);
        cam.invalidate(TupleKey::new(1, 0));
        assert_eq!(cam.free_slot(), Some(0));
    }
}
