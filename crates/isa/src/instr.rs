//! Instruction types and their assembly syntax ([`std::fmt::Display`]
//! doubles as the disassembler).

use std::fmt;

use crate::cond::Cond;
use crate::regs::Reg;

/// Data-processing opcodes (ARM's classic sixteen).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DpOp {
    /// Bitwise AND.
    And,
    /// Bitwise exclusive OR.
    Eor,
    /// Subtract.
    Sub,
    /// Reverse subtract (`op2 - rn`).
    Rsb,
    /// Add.
    Add,
    /// Add with carry.
    Adc,
    /// Subtract with carry.
    Sbc,
    /// Reverse subtract with carry.
    Rsc,
    /// Test (AND, flags only).
    Tst,
    /// Test equivalence (EOR, flags only).
    Teq,
    /// Compare (SUB, flags only).
    Cmp,
    /// Compare negated (ADD, flags only).
    Cmn,
    /// Bitwise OR.
    Orr,
    /// Move.
    Mov,
    /// Bit clear (`rn & !op2`).
    Bic,
    /// Move NOT.
    Mvn,
}

impl DpOp {
    /// All opcodes in encoding order.
    pub const ALL: [DpOp; 16] = [
        DpOp::And,
        DpOp::Eor,
        DpOp::Sub,
        DpOp::Rsb,
        DpOp::Add,
        DpOp::Adc,
        DpOp::Sbc,
        DpOp::Rsc,
        DpOp::Tst,
        DpOp::Teq,
        DpOp::Cmp,
        DpOp::Cmn,
        DpOp::Orr,
        DpOp::Mov,
        DpOp::Bic,
        DpOp::Mvn,
    ];

    /// The 4-bit encoding.
    pub fn bits(self) -> u32 {
        self as u32
    }

    /// Decode the 4-bit field.
    pub fn from_bits(bits: u32) -> DpOp {
        DpOp::ALL[(bits & 0xF) as usize]
    }

    /// True for TST/TEQ/CMP/CMN, which have no destination and always set
    /// flags.
    pub fn is_test(self) -> bool {
        matches!(self, DpOp::Tst | DpOp::Teq | DpOp::Cmp | DpOp::Cmn)
    }

    /// True for MOV/MVN, which have no first operand.
    pub fn is_move(self) -> bool {
        matches!(self, DpOp::Mov | DpOp::Mvn)
    }

    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            DpOp::And => "and",
            DpOp::Eor => "eor",
            DpOp::Sub => "sub",
            DpOp::Rsb => "rsb",
            DpOp::Add => "add",
            DpOp::Adc => "adc",
            DpOp::Sbc => "sbc",
            DpOp::Rsc => "rsc",
            DpOp::Tst => "tst",
            DpOp::Teq => "teq",
            DpOp::Cmp => "cmp",
            DpOp::Cmn => "cmn",
            DpOp::Orr => "orr",
            DpOp::Mov => "mov",
            DpOp::Bic => "bic",
            DpOp::Mvn => "mvn",
        }
    }
}

/// Barrel-shifter operation applied to a register operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ShiftKind {
    /// Logical shift left.
    #[default]
    Lsl,
    /// Logical shift right.
    Lsr,
    /// Arithmetic shift right.
    Asr,
    /// Rotate right.
    Ror,
}

impl ShiftKind {
    /// 2-bit encoding.
    pub fn bits(self) -> u32 {
        self as u32
    }

    /// Decode the 2-bit field.
    pub fn from_bits(bits: u32) -> ShiftKind {
        [ShiftKind::Lsl, ShiftKind::Lsr, ShiftKind::Asr, ShiftKind::Ror][(bits & 3) as usize]
    }

    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ShiftKind::Lsl => "lsl",
            ShiftKind::Lsr => "lsr",
            ShiftKind::Asr => "asr",
            ShiftKind::Ror => "ror",
        }
    }
}

/// An immediate-amount barrel shift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Shift {
    /// Shift operation.
    pub kind: ShiftKind,
    /// Amount, 0–31.
    pub amount: u8,
}

impl Shift {
    /// No shift at all.
    pub const NONE: Shift = Shift { kind: ShiftKind::Lsl, amount: 0 };
}

/// The flexible second operand of data-processing instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand2 {
    /// 8-bit immediate rotated right by `2 × rot` (ARM's imm8/rot4 form).
    Imm {
        /// Base value.
        value: u8,
        /// Rotation count (0–15), applied as `ror (2 × rot)`.
        rot: u8,
    },
    /// Register, optionally shifted by an immediate amount.
    Reg {
        /// Source register.
        reg: Reg,
        /// Barrel-shifter setting.
        shift: Shift,
    },
}

impl Operand2 {
    /// Plain (unshifted) register operand.
    pub fn reg(reg: Reg) -> Operand2 {
        Operand2::Reg { reg, shift: Shift::NONE }
    }

    /// Encode a 32-bit constant as imm8/rot4 if possible.
    pub fn try_imm(value: u32) -> Option<Operand2> {
        for rot in 0..16u8 {
            let unrotated = value.rotate_left(u32::from(rot) * 2);
            if unrotated <= 0xFF {
                return Some(Operand2::Imm { value: unrotated as u8, rot });
            }
        }
        None
    }

    /// The constant an immediate operand denotes.
    pub fn imm_value(value: u8, rot: u8) -> u32 {
        u32::from(value).rotate_right(u32::from(rot) * 2)
    }
}

impl fmt::Display for Operand2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Operand2::Imm { value, rot } => {
                write!(f, "#{}", Operand2::imm_value(value, rot))
            }
            Operand2::Reg { reg, shift } => {
                if shift.amount == 0 {
                    write!(f, "{reg}")
                } else {
                    write!(f, "{reg}, {} #{}", shift.kind.mnemonic(), shift.amount)
                }
            }
        }
    }
}

/// Memory access direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// Load.
    Ldr,
    /// Store.
    Str,
}

/// Address offset for single-register loads and stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOffset {
    /// Immediate byte offset (0–2047), added or subtracted per `up`.
    Imm(u16),
    /// Register offset, optionally shifted.
    Reg(Reg, Shift),
}

/// Block-transfer direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockOp {
    /// Load multiple.
    Ldm,
    /// Store multiple.
    Stm,
}

/// Which latched software-dispatch operand `ldop` reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperandSel {
    /// First source operand (`rn` of the faulting `pfu`).
    A,
    /// Second source operand (`rm`).
    B,
}

impl OperandSel {
    /// 4-bit encoding.
    pub fn bits(self) -> u32 {
        match self {
            OperandSel::A => 0,
            OperandSel::B => 1,
        }
    }

    /// Decode.
    pub fn from_bits(bits: u32) -> Option<OperandSel> {
        match bits & 0xF {
            0 => Some(OperandSel::A),
            1 => Some(OperandSel::B),
            _ => None,
        }
    }
}

/// A decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Data-processing (ALU) instruction.
    DataProc {
        /// Opcode.
        op: DpOp,
        /// Condition.
        cond: Cond,
        /// Set flags.
        s: bool,
        /// Destination (ignored for tests).
        rd: Reg,
        /// First operand (ignored for moves).
        rn: Reg,
        /// Second operand.
        op2: Operand2,
    },
    /// Multiply / multiply-accumulate.
    Mul {
        /// Condition.
        cond: Cond,
        /// Set flags.
        s: bool,
        /// Destination.
        rd: Reg,
        /// Multiplicand.
        rm: Reg,
        /// Multiplier.
        rs: Reg,
        /// Accumulator (MLA) or `None` (MUL).
        acc: Option<Reg>,
    },
    /// Single-register load/store (word or byte).
    Mem {
        /// Load or store.
        op: MemOp,
        /// Condition.
        cond: Cond,
        /// Byte access.
        byte: bool,
        /// Data register.
        rd: Reg,
        /// Base register.
        rn: Reg,
        /// Offset.
        offset: MemOffset,
        /// Offset added (true) or subtracted.
        up: bool,
        /// Pre-indexed (offset applied before access).
        pre: bool,
        /// Write the effective address back to `rn`.
        writeback: bool,
    },
    /// Block transfer (LDM/STM). Addressing is `IA` for loads after
    /// `pop`-style use and `DB` for stores (`push`), selected by `before`.
    Block {
        /// Load or store.
        op: BlockOp,
        /// Condition.
        cond: Cond,
        /// Base register.
        rn: Reg,
        /// Bit `i` set means `r<i>` participates.
        regs: u16,
        /// Offset applied before each access (DB/IB) rather than after.
        before: bool,
        /// Ascending (increment) addressing.
        up: bool,
        /// Write the final address back to `rn`.
        writeback: bool,
    },
    /// Branch, optionally with link.
    Branch {
        /// Condition.
        cond: Cond,
        /// Save return address in `lr`.
        link: bool,
        /// Signed word offset relative to the *next* instruction.
        offset: i32,
    },
    /// Software interrupt (system call).
    Swi {
        /// Condition.
        cond: Cond,
        /// 24-bit comment field (the syscall number).
        imm: u32,
    },
    /// Invoke the custom instruction registered under `cid`
    /// (paper §4.2). Resolution order: TLB1 (hardware), TLB2 (software
    /// alternative), else a custom-instruction fault.
    Pfu {
        /// Condition.
        cond: Cond,
        /// Process-local Circuit ID.
        cid: u8,
        /// Destination register.
        rd: Reg,
        /// First source operand.
        rn: Reg,
        /// Second source operand.
        rm: Reg,
    },
    /// Move a core register into the RFU register file.
    Mcr {
        /// Condition.
        cond: Cond,
        /// RFU register index (0–15).
        rfu: u8,
        /// Core source register.
        rs: Reg,
    },
    /// Move an RFU register into a core register.
    Mrc {
        /// Condition.
        cond: Cond,
        /// Core destination register.
        rd: Reg,
        /// RFU register index (0–15).
        rfu: u8,
    },
    /// Software dispatch: read a latched operand register (paper §4.3).
    LdOp {
        /// Condition.
        cond: Cond,
        /// Destination core register.
        rd: Reg,
        /// Which operand.
        sel: OperandSel,
    },
    /// Software dispatch: write the latched result register.
    StRes {
        /// Condition.
        cond: Cond,
        /// Core source register.
        rs: Reg,
    },
    /// Return from a software alternative: the hardware writes the result
    /// register into the faulting instruction's destination and branches
    /// to the saved return address.
    RetSd {
        /// Condition.
        cond: Cond,
    },
    /// Privileged: move a core register into a field of the operand block
    /// (`0`=opA, `1`=opB, `2`=result, `3`=control). Lets the OS preserve
    /// software-dispatch state across context switches (paper §4.3).
    McrO {
        /// Condition.
        cond: Cond,
        /// Operand-block field index.
        field: u8,
        /// Core source register.
        rs: Reg,
    },
    /// Privileged: read an operand-block field into a core register.
    MrcO {
        /// Condition.
        cond: Cond,
        /// Core destination register.
        rd: Reg,
        /// Operand-block field index.
        field: u8,
    },
}

impl Instr {
    /// The condition attached to this instruction.
    pub fn cond(&self) -> Cond {
        match *self {
            Instr::DataProc { cond, .. }
            | Instr::Mul { cond, .. }
            | Instr::Mem { cond, .. }
            | Instr::Block { cond, .. }
            | Instr::Branch { cond, .. }
            | Instr::Swi { cond, .. }
            | Instr::Pfu { cond, .. }
            | Instr::Mcr { cond, .. }
            | Instr::Mrc { cond, .. }
            | Instr::LdOp { cond, .. }
            | Instr::StRes { cond, .. }
            | Instr::RetSd { cond }
            | Instr::McrO { cond, .. }
            | Instr::MrcO { cond, .. } => cond,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::DataProc { op, cond, s, rd, rn, op2 } => {
                let s_suffix = if s && !op.is_test() { "s" } else { "" };
                if op.is_test() {
                    write!(f, "{}{} {rn}, {op2}", op.mnemonic(), cond)
                } else if op.is_move() {
                    write!(f, "{}{}{} {rd}, {op2}", op.mnemonic(), cond, s_suffix)
                } else {
                    write!(f, "{}{}{} {rd}, {rn}, {op2}", op.mnemonic(), cond, s_suffix)
                }
            }
            Instr::Mul { cond, s, rd, rm, rs, acc } => {
                let s_suffix = if s { "s" } else { "" };
                match acc {
                    Some(rn) => write!(f, "mla{cond}{s_suffix} {rd}, {rm}, {rs}, {rn}"),
                    None => write!(f, "mul{cond}{s_suffix} {rd}, {rm}, {rs}"),
                }
            }
            Instr::Mem { op, cond, byte, rd, rn, offset, up, pre, writeback } => {
                let m = match op {
                    MemOp::Ldr => "ldr",
                    MemOp::Str => "str",
                };
                let b = if byte { "b" } else { "" };
                let sign = if up { "" } else { "-" };
                let off = |f: &mut fmt::Formatter<'_>| match offset {
                    MemOffset::Imm(i) => write!(f, "#{sign}{i}"),
                    MemOffset::Reg(r, sh) if sh.amount == 0 => write!(f, "{sign}{r}"),
                    MemOffset::Reg(r, sh) => {
                        write!(f, "{sign}{r}, {} #{}", sh.kind.mnemonic(), sh.amount)
                    }
                };
                let trivial = matches!(offset, MemOffset::Imm(0)) && up;
                if trivial && !writeback {
                    write!(f, "{m}{cond}{b} {rd}, [{rn}]")
                } else if pre {
                    write!(f, "{m}{cond}{b} {rd}, [{rn}, ")?;
                    off(f)?;
                    write!(f, "]{}", if writeback { "!" } else { "" })
                } else {
                    write!(f, "{m}{cond}{b} {rd}, [{rn}], ")?;
                    off(f)
                }
            }
            Instr::Block { op, cond, rn, regs, before, up, writeback } => {
                let m = match op {
                    BlockOp::Ldm => "ldm",
                    BlockOp::Stm => "stm",
                };
                let mode = match (up, before) {
                    (true, false) => "ia",
                    (true, true) => "ib",
                    (false, false) => "da",
                    (false, true) => "db",
                };
                write!(f, "{m}{cond}{mode} {rn}{}, {{", if writeback { "!" } else { "" })?;
                let mut first = true;
                for i in 0..16 {
                    if regs >> i & 1 == 1 {
                        if !first {
                            write!(f, ", ")?;
                        }
                        write!(f, "{}", Reg::new(i))?;
                        first = false;
                    }
                }
                write!(f, "}}")
            }
            Instr::Branch { cond, link, offset } => {
                write!(f, "b{}{} .{:+}", if link { "l" } else { "" }, cond, (offset + 1) * 4)
            }
            Instr::Swi { cond, imm } => write!(f, "swi{cond} #{imm}"),
            Instr::Pfu { cond, cid, rd, rn, rm } => {
                write!(f, "pfu{cond} {cid}, {rd}, {rn}, {rm}")
            }
            Instr::Mcr { cond, rfu, rs } => write!(f, "mcr{cond} c{rfu}, {rs}"),
            Instr::Mrc { cond, rd, rfu } => write!(f, "mrc{cond} {rd}, c{rfu}"),
            Instr::LdOp { cond, rd, sel } => {
                let s = match sel {
                    OperandSel::A => "a",
                    OperandSel::B => "b",
                };
                write!(f, "ldop{cond} {rd}, {s}")
            }
            Instr::StRes { cond, rs } => write!(f, "stres{cond} {rs}"),
            Instr::RetSd { cond } => write!(f, "retsd{cond}"),
            Instr::McrO { cond, field, rs } => write!(f, "mcro{cond} o{field}, {rs}"),
            Instr::MrcO { cond, rd, field } => write!(f, "mrco{cond} {rd}, o{field}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand2_try_imm_covers_rotations() {
        for v in [0u32, 0xFF, 0xFF00, 0xFF00_0000, 0x3FC, 0xF000_000F] {
            let op2 = Operand2::try_imm(v).unwrap_or_else(|| panic!("{v:#x} should encode"));
            if let Operand2::Imm { value, rot } = op2 {
                assert_eq!(Operand2::imm_value(value, rot), v);
            }
        }
        assert!(Operand2::try_imm(0x1234_5678).is_none());
        assert!(Operand2::try_imm(0x101).is_none());
    }

    #[test]
    fn display_spot_checks() {
        let i = Instr::DataProc {
            op: DpOp::Add,
            cond: Cond::Al,
            s: true,
            rd: Reg::new(0),
            rn: Reg::new(1),
            op2: Operand2::try_imm(4).expect("imm"),
        };
        assert_eq!(i.to_string(), "adds r0, r1, #4");
        let b = Instr::Branch { cond: Cond::Ne, link: false, offset: -3 };
        assert_eq!(b.to_string(), "bne .-8");
        let p = Instr::Pfu { cond: Cond::Al, cid: 7, rd: Reg::new(2), rn: Reg::new(0), rm: Reg::new(1) };
        assert_eq!(p.to_string(), "pfu 7, r2, r0, r1");
    }
}
