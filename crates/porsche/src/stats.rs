//! Kernel-level statistics gathered during a run.

use crate::probe::{Event, EventSink, Tag};

/// Counters describing how much management work the kernel performed —
/// the quantities the paper's discussion (§5.1.3) reasons about.
///
/// The struct is a pure fold over the [`crate::probe`] event stream:
/// every field maps to exactly one event variant, so replaying a
/// recorded trace through a fresh `KernelStats` reproduces the
/// kernel's own counters (an invariant the integration tests pin).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelStats {
    /// Full context switches between distinct processes.
    pub context_switches: u64,
    /// Timer ticks that returned to the same process.
    pub timer_ticks: u64,
    /// Custom-instruction faults taken (all kinds).
    pub custom_faults: u64,
    /// Faults resolved by re-programming a TLB entry only (the circuit
    /// was still resident — §4.2's "mapping fault" fast path).
    pub mapping_faults: u64,
    /// Full configuration loads performed.
    pub config_loads: u64,
    /// Circuits evicted to make room.
    pub evictions: u64,
    /// Faults resolved by installing a software-dispatch mapping.
    pub software_installs: u64,
    /// Dispatch-TLB entries evicted because the TLB was full.
    pub tlb_evictions: u64,
    /// Faults resolved by handing a *shared* configuration to another
    /// process via a state-frames-only swap (§4.2 sharing).
    pub state_swaps: u64,
    /// Words moved over the configuration bus (static + state).
    pub config_words_moved: u64,
    /// System calls serviced.
    pub syscalls: u64,
    /// Processes killed by the kernel.
    pub kills: u64,
    /// Single-event upsets that struck PFU configuration SRAM.
    pub seu_strikes: u64,
    /// PFU faults detected (watchdog trips, whatever readback found).
    pub pfu_faults: u64,
    /// CRC readbacks that found corrupt static frames (scrub, load
    /// verification, or post-trip diagnosis).
    pub crc_errors: u64,
    /// Recovery reconfigurations pushed across the bus.
    pub recovery_retries: u64,
    /// Faults resolved by failing over to the software alternative.
    pub fault_failovers: u64,
    /// PFUs quarantined as persistently faulty.
    pub quarantines: u64,
}

impl KernelStats {
    /// Bytes moved over the configuration bus.
    pub fn config_bytes_moved(&self) -> u64 {
        self.config_words_moved * 4
    }
}

impl EventSink for KernelStats {
    fn on_event(&mut self, _at: u64, _tag: Tag, event: &Event) {
        match *event {
            Event::ContextSwitch { .. } => self.context_switches += 1,
            Event::TimerTick { .. } => self.timer_ticks += 1,
            Event::Fault { .. } => self.custom_faults += 1,
            Event::MappingRepair { .. } => self.mapping_faults += 1,
            Event::ConfigLoad { .. } => self.config_loads += 1,
            Event::Eviction { .. } => self.evictions += 1,
            Event::SoftwareInstall { .. } => self.software_installs += 1,
            Event::TlbProgram { evicted, .. } => self.tlb_evictions += u64::from(evicted),
            Event::StateSwap { .. } => self.state_swaps += 1,
            Event::BusTransfer { words, .. } => self.config_words_moved += words,
            Event::Syscall { .. } => self.syscalls += 1,
            Event::Kill { .. } => self.kills += 1,
            Event::SeuStrike { .. } => self.seu_strikes += 1,
            Event::PfuFault { kind, .. } => {
                self.pfu_faults += 1;
                if kind == crate::probe::PfuFaultKind::CrcMismatch {
                    self.crc_errors += 1;
                }
            }
            Event::ScrubCheck { corrupt, .. } => self.crc_errors += u64::from(corrupt),
            Event::RecoveryRetry { words, .. } => {
                self.recovery_retries += 1;
                // Retries are real bus traffic, so they count toward
                // the words-moved total like any other transfer.
                self.config_words_moved += words;
            }
            Event::SoftwareFailover { .. } => self.fault_failovers += 1,
            Event::Quarantine { .. } => self.quarantines += 1,
            Event::Spawn { .. }
            | Event::Compute { .. }
            | Event::Idle { .. }
            | Event::Exit { .. } => {}
        }
    }
}
