//! Kernel-side fault injection and the recovery policy.
//!
//! The fabric crate owns the *mechanics* of configuration damage (CRC
//! frames, bit flips, the seeded [`FaultInjector`]); this module owns
//! the *campaign plan* — when upsets arrive, which slot is stuck, how
//! often the kernel scrubs — and the policy ladder the fault handler
//! climbs: retry → software dispatch → quarantine (DESIGN.md §9).

use proteus_fabric::{FaultConfig, FaultInjector};
use proteus_rfu::PfuIndex;

/// A deterministic fault-injection plan for one run.
///
/// Everything is driven by one seeded RNG, so a plan replays
/// identically regardless of host parallelism. The default plan
/// injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injection RNG.
    pub seed: u64,
    /// Mean cycles between single-event upsets on the PFU configuration
    /// SRAM (exponential inter-arrival); 0 disables SEUs.
    pub seu_mean_cycles: u64,
    /// Probability that a configuration transfer arrives corrupted and
    /// fails its load-time CRC verification; 0.0 disables.
    pub transit_error_rate: f64,
    /// Force a stuck-at-0 `done` fault on slot `.0` at cycle `.1` — the
    /// persistent hardware defect the quarantine rung exists for.
    pub stuck_pfu: Option<(PfuIndex, u64)>,
    /// Periodic scrub: every this many cycles the kernel reads back the
    /// CRCs of every resident configuration and repairs corruption
    /// before it is hit; `None` leaves detection to the watchdog.
    pub scrub_interval: Option<u64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 2003,
            seu_mean_cycles: 0,
            transit_error_rate: 0.0,
            stuck_pfu: None,
            scrub_interval: None,
        }
    }
}

/// How far the kernel goes to keep a faulting custom instruction alive.
///
/// The rungs are climbed in order on every hard PFU fault: bounded
/// retry reconfiguration, then software-dispatch failover, with
/// quarantine short-circuiting both once a slot proves persistently
/// faulty. SEU-corrupt configurations are repaired in place (the
/// damage is in the SRAM, not the slot) — but only within the slot's
/// reconfiguration allowance; once repairs keep failing to clear the
/// hang, the fault counts as hard and the ladder escalates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Reconfiguration attempts per slot between completions before
    /// escalating past the retry rung.
    pub max_retries: u32,
    /// Whether the kernel may fail over to a registered software
    /// alternative (TLB2 dispatch) when retries are exhausted.
    pub software_failover: bool,
    /// Quarantine a slot after this many hard faults (`None` = never).
    pub quarantine_threshold: Option<u32>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self { max_retries: 2, software_failover: true, quarantine_threshold: Some(3) }
    }
}

impl RecoveryPolicy {
    /// Retry-only ladder: reconfigure up to `max_retries` times, then
    /// give up (no failover, no quarantine).
    pub fn retry_only(max_retries: u32) -> Self {
        Self { max_retries, software_failover: false, quarantine_threshold: None }
    }
}

/// The kernel's fault-injection unit: drives a [`FaultPlan`] against
/// the simulated clock.
///
/// The kernel polls it at scheduling boundaries; due events (SEU
/// strikes, the stuck-at onset) are applied to PFU health state, and
/// the configuration-bus path consults [`FaultUnit::transit_corrupts`]
/// per transfer.
#[derive(Debug)]
pub struct FaultUnit {
    injector: FaultInjector,
    plan: FaultPlan,
    /// Absolute cycle of the next SEU strike.
    next_seu: Option<u64>,
    /// Absolute cycle of the next scrub pass.
    next_scrub: Option<u64>,
    stuck_applied: bool,
}

impl FaultUnit {
    /// A unit executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let mut injector = FaultInjector::new(
            plan.seed,
            FaultConfig {
                seu_mean_cycles: plan.seu_mean_cycles,
                transit_error_rate: plan.transit_error_rate,
            },
        );
        let next_seu = injector.next_seu_gap();
        Self { injector, plan, next_seu, next_scrub: plan.scrub_interval, stuck_applied: false }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether configuration transfers can corrupt in transit (the
    /// load path skips CRC verification entirely when they cannot).
    pub fn transit_active(&self) -> bool {
        self.plan.transit_error_rate > 0.0
    }

    /// Draw whether one configuration transfer arrives corrupted.
    pub fn transit_corrupts(&mut self) -> bool {
        self.injector.transit_corrupts()
    }

    /// Earliest cycle at which something is due (SEU, scrub, or the
    /// stuck-at onset); `None` when the plan has nothing pending.
    pub fn next_due(&self) -> Option<u64> {
        let stuck = match (self.stuck_applied, self.plan.stuck_pfu) {
            (false, Some((_, at))) => Some(at),
            _ => None,
        };
        [self.next_seu, self.next_scrub, stuck].into_iter().flatten().min()
    }

    /// Whether a scrub pass is due at `now`; if so, consume it and
    /// schedule the next. The kernel performs the actual readbacks
    /// (it owns the cost model and the probe).
    pub fn take_due_scrub(&mut self, now: u64) -> bool {
        match (self.next_scrub, self.plan.scrub_interval) {
            (Some(due), Some(interval)) if due <= now => {
                // Fixed cadence from the start of the run, skipping any
                // passes the kernel slept through.
                let mut next = due;
                while next <= now {
                    next += interval;
                }
                self.next_scrub = Some(next);
                true
            }
            _ => false,
        }
    }

    /// Whether the stuck-at fault fires at `now`; if so, consume it and
    /// return the slot to damage.
    pub fn take_due_stuck(&mut self, now: u64) -> Option<PfuIndex> {
        match self.plan.stuck_pfu {
            Some((pfu, at)) if !self.stuck_applied && at <= now => {
                self.stuck_applied = true;
                Some(pfu)
            }
            _ => None,
        }
    }

    /// SEU strikes due at `now`: returns the slots struck (one entry
    /// per strike, drawn uniformly over `pfus` slots) and schedules
    /// the next arrival.
    pub fn take_due_seus(&mut self, now: u64, pfus: usize) -> Vec<PfuIndex> {
        let mut struck = Vec::new();
        while let Some(due) = self.next_seu {
            if due > now {
                break;
            }
            struck.push(self.injector.pick(pfus));
            self.next_seu = self.injector.next_seu_gap().map(|gap| due + gap);
        }
        struck
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let fu = FaultUnit::new(FaultPlan::default());
        assert_eq!(fu.next_due(), None);
        assert!(!fu.transit_active());
    }

    #[test]
    fn seu_arrivals_are_deterministic_and_advance() {
        let plan = FaultPlan { seu_mean_cycles: 10_000, ..FaultPlan::default() };
        let mut a = FaultUnit::new(plan);
        let mut b = FaultUnit::new(plan);
        let due = a.next_due().expect("SEUs scheduled");
        assert_eq!(b.next_due(), Some(due));
        let hits_a = a.take_due_seus(due + 50_000, 4);
        let hits_b = b.take_due_seus(due + 50_000, 4);
        assert_eq!(hits_a, hits_b, "same seed, same strikes");
        assert!(!hits_a.is_empty());
        assert!(hits_a.iter().all(|&p| p < 4));
        assert!(a.next_due().expect("more to come") > due + 50_000);
    }

    #[test]
    fn scrub_cadence_skips_missed_passes() {
        let plan = FaultPlan { scrub_interval: Some(1_000), ..FaultPlan::default() };
        let mut fu = FaultUnit::new(plan);
        assert!(fu.take_due_scrub(1_000));
        assert!(!fu.take_due_scrub(1_500));
        // Sleeping past several periods yields one pass, rescheduled
        // beyond `now`.
        assert!(fu.take_due_scrub(5_700));
        assert_eq!(fu.next_due(), Some(6_000));
    }

    #[test]
    fn stuck_fault_fires_once() {
        let plan = FaultPlan { stuck_pfu: Some((2, 300)), ..FaultPlan::default() };
        let mut fu = FaultUnit::new(plan);
        assert_eq!(fu.take_due_stuck(299), None);
        assert_eq!(fu.take_due_stuck(300), Some(2));
        assert_eq!(fu.take_due_stuck(301), None);
        assert_eq!(fu.next_due(), None);
    }
}
