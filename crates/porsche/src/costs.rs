//! The kernel's explicit cycle-cost model.
//!
//! The paper's results hinge on *relative* costs: a 54 KB configuration
//! load vs. a 10 ms or 1 ms scheduling quantum vs. a handful of cycles
//! per accelerated instruction. All of those knobs live here, with
//! defaults documented in DESIGN.md §5.

/// Cycle costs charged by kernel operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Full context switch (register save/restore, scheduler bookkeeping,
    /// RFU register file + operand block preservation).
    pub context_switch: u64,
    /// Timer tick that returns to the same process (no switch needed).
    pub timer_tick: u64,
    /// Entering + leaving the custom-instruction fault handler.
    pub fault_entry: u64,
    /// Programming one dispatch-TLB entry.
    pub tlb_program: u64,
    /// Cycles to move one 32-bit word over the configuration bus.
    pub config_word_transfer: u64,
    /// Fixed controller overhead per (partial or full) configuration
    /// operation.
    pub config_overhead: u64,
    /// When true the kernel ignores the split-configuration design of
    /// §4.1 and also writes back the *full* static configuration when a
    /// circuit is swapped out (ablation A4); the default `false` saves
    /// only the state frames.
    pub save_full_config_on_unload: bool,
    /// System-call entry/exit.
    pub syscall: u64,
    /// CRC readback of one resident configuration (scrub, load
    /// verification, or post-watchdog diagnosis): the controller streams
    /// the frames back and compares per-frame CRCs.
    pub crc_check: u64,
    /// Extra delay added per successive recovery retry on the same slot
    /// (linear backoff: attempt `n` waits `n * retry_backoff` cycles
    /// before re-driving the bus).
    pub retry_backoff: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            context_switch: 220,
            timer_tick: 60,
            fault_entry: 120,
            tlb_program: 12,
            config_word_transfer: 1,
            config_overhead: 64,
            save_full_config_on_unload: false,
            syscall: 40,
            crc_check: 160,
            retry_backoff: 500,
        }
    }
}

impl CostModel {
    /// Cycles to load a full configuration of `static_bytes` plus
    /// `state_words` of initial state.
    pub fn full_load_cycles(&self, static_bytes: usize, state_words: usize) -> u64 {
        let words = (static_bytes as u64).div_ceil(4) + state_words as u64;
        self.config_overhead + words * self.config_word_transfer
    }

    /// Cycles for recovery reconfiguration attempt `attempt` (1-based):
    /// a full load plus linear backoff.
    pub fn retry_load_cycles(&self, static_bytes: usize, state_words: usize, attempt: u32) -> u64 {
        self.full_load_cycles(static_bytes, state_words) + u64::from(attempt) * self.retry_backoff
    }

    /// Cycles to hand a shared configuration between processes: save one
    /// state-frame set, load another (§4.2 sharing — "just changing the
    /// state in a single PFU").
    pub fn state_swap_cycles(&self, state_words: usize) -> u64 {
        self.config_overhead + 2 * state_words as u64 * self.config_word_transfer
    }

    /// Cycles to save a swapped-out circuit's context: state frames only
    /// (or the full configuration under the A4 ablation).
    pub fn unload_cycles(&self, static_bytes: usize, state_words: usize) -> u64 {
        let mut words = state_words as u64;
        if self.save_full_config_on_unload {
            words += (static_bytes as u64).div_ceil(4);
        }
        self.config_overhead + words * self.config_word_transfer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_load_of_a_pfu_is_around_13k_cycles() {
        let c = CostModel::default();
        // 54 000 bytes = 13 500 words, + 16 state words + overhead.
        let cycles = c.full_load_cycles(54_000, 16);
        assert_eq!(cycles, 64 + 13_500 + 16);
    }

    #[test]
    fn split_configuration_makes_unload_cheap() {
        let c = CostModel::default();
        let split = c.unload_cycles(54_000, 16);
        let naive = CostModel { save_full_config_on_unload: true, ..c }.unload_cycles(54_000, 16);
        assert!(split < 100);
        assert!(naive > 13_000);
    }
}
