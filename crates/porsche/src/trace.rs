//! Bounded event timeline: a ring-buffer sink over the probe stream.
//!
//! When enabled ([`crate::kernel::KernelConfig::trace_capacity`] > 0),
//! the trace keeps the most recent `capacity` events emitted on the
//! instrumentation bus ([`crate::probe`]). It is a pure fold over the
//! same stream that feeds [`crate::stats::KernelStats`] and
//! [`crate::probe::CycleLedger`]. Useful for debugging policies, for
//! asserting ordering invariants in tests, and as the source of the
//! `repro --trace` JSON-lines dump.

use std::collections::VecDeque;

pub use crate::probe::Event;
use crate::probe::{EventSink, Tag};

/// A bounded event timeline of `(cycle, tag, event)` triples in
/// emission order. The buffer is a ring: once `capacity` is reached the
/// *oldest* event is dropped for each new one, so long runs with small
/// capacities keep the interesting tail. [`Trace::dropped`] counts the
/// discards.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: VecDeque<(u64, Tag, Event)>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// A trace that keeps at most the latest `capacity` events
    /// (0 disables recording entirely).
    pub fn with_capacity(capacity: usize) -> Self {
        Self { events: VecDeque::new(), capacity, dropped: 0 }
    }

    /// Whether recording is active.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Record an event at `cycle`, evicting the oldest entry when full.
    pub fn record(&mut self, cycle: u64, tag: Tag, event: Event) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((cycle, tag, event));
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events discarded from the front of the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterate the retained timeline, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Tag, Event)> + '_ {
        self.events.iter().copied()
    }

    /// The retained timeline as a contiguous vector (oldest first).
    pub fn snapshot(&self) -> Vec<(u64, Tag, Event)> {
        self.iter().collect()
    }

    /// Render as one line per event.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (cycle, _, e) in &self.events {
            out.push_str(&format!("{cycle:>12} {e}\n"));
        }
        out
    }
}

impl EventSink for Trace {
    fn on_event(&mut self, at: u64, tag: Tag, event: &Event) {
        self.record(at, tag, *event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::probe::Callsite;

    #[test]
    fn ring_keeps_latest_events_and_counts_drops() {
        let mut t = Trace::with_capacity(2);
        let tag = Tag::new(1, Callsite::ContextSwitch);
        for i in 0..5 {
            t.record(i, tag, Event::TimerTick { pid: 1, cost: 60 });
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let cycles: Vec<u64> = t.iter().map(|(c, _, _)| c).collect();
        assert_eq!(cycles, vec![3, 4], "latest events survive");
        assert!(t.enabled());
        assert!(!Trace::with_capacity(0).enabled());
        assert_eq!(Trace::with_capacity(0).dropped(), 0);
    }

    #[test]
    fn text_rendering_is_one_line_per_event() {
        let mut t = Trace::with_capacity(8);
        let tag = Tag::new(1, Callsite::ContextSwitch);
        t.record(10, tag, Event::Spawn { pid: 1 });
        t.record(20, tag, Event::Exit { pid: 1, code: 0 });
        let text = t.to_text();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("spawn pid=1"));
        assert!(text.contains("exit pid=1"));
    }
}
