//! The assembled ProteanARM workstation.

use porsche::kernel::{Kernel, KernelConfig, KernelError, RunReport, SpawnSpec};
use porsche::probe::{CycleLedger, EventSink};
use porsche::process::Pid;
use proteus_cpu::Cpu;
use proteus_rfu::{Rfu, RfuConfig};

/// Hardware + kernel configuration for a machine.
#[derive(Debug, Default)]
pub struct MachineConfig {
    /// Kernel parameters (quantum, costs, policy, dispatch mode).
    pub kernel: KernelConfig,
    /// RFU sizing (PFU count, TLB capacity).
    pub rfu: RfuConfig,
}

/// A complete simulated workstation: core, RFU and kernel.
#[derive(Debug)]
pub struct Machine {
    cpu: Cpu,
    rfu: Rfu,
    kernel: Kernel,
}

impl Machine {
    /// Build a machine.
    pub fn new(config: MachineConfig) -> Self {
        Self {
            cpu: Cpu::new(),
            rfu: Rfu::new(config.rfu),
            kernel: Kernel::new(config.kernel),
        }
    }

    /// Spawn a process. The spawn event is stamped with the machine's
    /// current cycle, so dynamic-arrival workloads get faithful
    /// spawn→exit spans in the trace.
    ///
    /// # Errors
    ///
    /// Propagates [`KernelError`] from the kernel.
    pub fn spawn(&mut self, spec: SpawnSpec) -> Result<Pid, KernelError> {
        let at = self.cpu.cycles();
        self.kernel.spawn_at(spec, at)
    }

    /// Run until every process exits.
    ///
    /// # Errors
    ///
    /// [`KernelError::CycleLimit`] if live processes remain at the limit.
    pub fn run(&mut self, cycle_limit: u64) -> Result<RunReport, KernelError> {
        self.kernel.run(&mut self.cpu, &mut self.rfu, cycle_limit)
    }

    /// Advance the machine to `stop_cycle` (or completion, whichever
    /// comes first); returns `true` when every process has exited. Used
    /// for dynamic workloads: advance, [`Machine::spawn`] arrivals,
    /// advance again.
    ///
    /// # Errors
    ///
    /// [`KernelError::CycleLimit`] at the hard limit.
    pub fn advance_until(&mut self, stop_cycle: u64, cycle_limit: u64) -> Result<bool, KernelError> {
        self.kernel.advance_until(&mut self.cpu, &mut self.rfu, stop_cycle, cycle_limit)
    }

    /// Fast-forward an *idle* machine's clock to `cycle` (no process is
    /// runnable, time still passes — e.g. waiting for the next job
    /// arrival). No-op if the clock is already past `cycle`.
    pub fn idle_until(&mut self, cycle: u64) {
        let now = self.cpu.cycles();
        if cycle > now {
            self.cpu.add_cycles(cycle - now);
            self.kernel.note_idle(now, cycle - now);
        }
    }

    /// The cycle-attribution ledger folded so far.
    pub fn ledger(&self) -> &CycleLedger {
        self.kernel.ledger()
    }

    /// Attach an extra observer to the machine's event stream.
    pub fn add_sink(&mut self, sink: Box<dyn EventSink>) {
        self.kernel.add_sink(sink);
    }

    /// Snapshot the outcome so far.
    pub fn report(&self) -> RunReport {
        self.kernel.report(&self.cpu)
    }

    /// Simulated cycles elapsed.
    pub fn cycles(&self) -> u64 {
        self.cpu.cycles()
    }

    /// The core.
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// The reconfigurable function unit.
    pub fn rfu(&self) -> &Rfu {
        &self.rfu
    }

    /// The kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_isa::assemble;

    #[test]
    fn machine_runs_a_trivial_process() {
        let p = assemble("mov r0, #9\n swi #0\n").expect("asm");
        let mut m = Machine::new(MachineConfig::default());
        let pid = m.spawn(SpawnSpec::new(&p)).expect("spawn");
        let report = m.run(1_000_000).expect("run");
        assert_eq!(report.exited, vec![(pid, report.makespan, 9)]);
        assert!(m.cpu().cycles() > 0);
    }
}
