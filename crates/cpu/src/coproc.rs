//! The coprocessor interface between the core and the reconfigurable
//! function unit.
//!
//! The ProteanARM attaches the RFU "as an on-chip coprocessor, the
//! standard way of adding additional function units to the ARM" (§5); the
//! one core modification is that the coprocessor may return a *branch
//! target* for software dispatch. This trait captures exactly that
//! contract so the RFU crate can implement it without a dependency cycle.

use proteus_isa::OperandSel;

/// Outcome of issuing a custom instruction to the coprocessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoprocResult {
    /// Hardware dispatch completed: write `value` to `rd` after `cycles`
    /// PFU clock cycles.
    Done {
        /// Result value.
        value: u32,
        /// Cycles the PFU was clocked (≥ 1).
        cycles: u64,
    },
    /// The cycle budget expired before the circuit raised `done`. The
    /// status-register mechanism of §4.4 holds the circuit's progress;
    /// the core must take the pending interrupt and *reissue* the
    /// instruction afterwards (PC does not advance).
    Interrupted {
        /// Cycles consumed before the interrupt.
        cycles: u64,
    },
    /// Software dispatch: the TLB mapped the CID to a software
    /// alternative. The core must branch-and-link to `target`; the
    /// coprocessor has latched the operands and destination register in
    /// its operand block (§4.3).
    SoftwareDispatch {
        /// Address of the software alternative.
        target: u32,
        /// Cycles spent in the dispatch hardware.
        cycles: u64,
    },
    /// No mapping for `(PID, CID)` in either TLB: raise a
    /// custom-instruction fault so the operating system can respond
    /// (load the circuit, install a mapping, or kill the process).
    Fault,
}

/// Data returned by `retsd` (return from software alternative).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetInfo {
    /// Destination register index of the faulting `pfu` instruction.
    pub rd: u8,
    /// The value the routine stored with `stres`.
    pub result: u32,
    /// Return address latched by the dispatch branch.
    pub ret_addr: u32,
}

/// The coprocessor port of the ProteanARM core.
pub trait Coprocessor {
    /// Issue custom instruction `cid` for process `pid`.
    ///
    /// `budget` is how many cycles may elapse before a pending interrupt
    /// must be honoured (the distance to the next timer expiry);
    /// implementations return [`CoprocResult::Interrupted`] when a
    /// multi-cycle instruction exceeds it. `rd` and `ret_addr` are
    /// latched on software dispatch.
    #[allow(clippy::too_many_arguments)]
    fn exec_custom(
        &mut self,
        pid: u32,
        cid: u8,
        op_a: u32,
        op_b: u32,
        rd: u8,
        ret_addr: u32,
        budget: u64,
    ) -> CoprocResult;

    /// `mcr`: write a coprocessor register.
    fn write_reg(&mut self, index: u8, value: u32);

    /// `mrc`: read a coprocessor register.
    fn read_reg(&self, index: u8) -> u32;

    /// `ldop`: read a latched software-dispatch operand.
    fn read_operand(&self, sel: OperandSel) -> u32;

    /// `stres`: write the software-dispatch result register.
    fn write_result(&mut self, value: u32);

    /// `retsd`: finish a software alternative.
    fn return_from_software(&mut self) -> RetInfo;

    /// `mcro`: privileged write of an operand-block field
    /// (0 = opA, 1 = opB, 2 = result, 3 = control, 4 = return address).
    fn write_operand_field(&mut self, field: u8, value: u32);

    /// `mrco`: privileged read of an operand-block field.
    fn read_operand_field(&self, field: u8) -> u32;
}

/// The software-dispatch operand register block (§4.3), reusable by
/// coprocessor implementations. Fields are indexed for `mcro`/`mrco`:
/// 0 = opA, 1 = opB, 2 = result, 3 = control (low 4 bits: rd), 4 = return
/// address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OperandBlock {
    /// First latched source operand.
    pub op_a: u32,
    /// Second latched source operand.
    pub op_b: u32,
    /// Result staged by `stres`.
    pub result: u32,
    /// Control word: destination register in bits 3:0.
    pub control: u32,
    /// Return address for `retsd`.
    pub ret_addr: u32,
}

impl OperandBlock {
    /// Latch a software dispatch.
    pub fn latch(&mut self, op_a: u32, op_b: u32, rd: u8, ret_addr: u32) {
        self.op_a = op_a;
        self.op_b = op_b;
        self.control = u32::from(rd) & 0xF;
        self.ret_addr = ret_addr;
    }

    /// Field read for `mrco`.
    pub fn field(&self, index: u8) -> u32 {
        match index {
            0 => self.op_a,
            1 => self.op_b,
            2 => self.result,
            3 => self.control,
            4 => self.ret_addr,
            _ => 0,
        }
    }

    /// Field write for `mcro`.
    pub fn set_field(&mut self, index: u8, value: u32) {
        match index {
            0 => self.op_a = value,
            1 => self.op_b = value,
            2 => self.result = value,
            3 => self.control = value,
            4 => self.ret_addr = value,
            _ => {}
        }
    }

    /// Destination register index from the control word.
    pub fn rd(&self) -> u8 {
        (self.control & 0xF) as u8
    }
}

/// A coprocessor with no PFUs: every custom instruction faults. Useful
/// for pure-software runs and tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullCoprocessor;

impl Coprocessor for NullCoprocessor {
    fn exec_custom(&mut self, _: u32, _: u8, _: u32, _: u32, _: u8, _: u32, _: u64) -> CoprocResult {
        CoprocResult::Fault
    }

    fn write_reg(&mut self, _: u8, _: u32) {}

    fn read_reg(&self, _: u8) -> u32 {
        0
    }

    fn read_operand(&self, _: OperandSel) -> u32 {
        0
    }

    fn write_result(&mut self, _: u32) {}

    fn return_from_software(&mut self) -> RetInfo {
        RetInfo { rd: 0, result: 0, ret_addr: 0 }
    }

    fn write_operand_field(&mut self, _: u8, _: u32) {}

    fn read_operand_field(&self, _: u8) -> u32 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_block_latch_and_fields() {
        let mut b = OperandBlock::default();
        b.latch(11, 22, 7, 0x100);
        assert_eq!(b.field(0), 11);
        assert_eq!(b.field(1), 22);
        assert_eq!(b.rd(), 7);
        assert_eq!(b.field(4), 0x100);
        b.set_field(2, 99);
        assert_eq!(b.result, 99);
        // Full save/restore cycle as the OS would do on a context switch.
        let saved: Vec<u32> = (0..5).map(|i| b.field(i)).collect();
        let mut restored = OperandBlock::default();
        for (i, v) in saved.iter().enumerate() {
            restored.set_field(i as u8, *v);
        }
        assert_eq!(restored, b);
    }
}
