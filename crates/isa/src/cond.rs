//! Condition codes.

use std::fmt;

/// ARM-style condition code attached to every instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Cond {
    /// Equal (`Z`).
    Eq,
    /// Not equal (`!Z`).
    Ne,
    /// Carry set / unsigned higher-or-same (`C`).
    Cs,
    /// Carry clear / unsigned lower (`!C`).
    Cc,
    /// Negative (`N`).
    Mi,
    /// Positive or zero (`!N`).
    Pl,
    /// Overflow (`V`).
    Vs,
    /// No overflow (`!V`).
    Vc,
    /// Unsigned higher (`C && !Z`).
    Hi,
    /// Unsigned lower or same (`!C || Z`).
    Ls,
    /// Signed greater or equal (`N == V`).
    Ge,
    /// Signed less (`N != V`).
    Lt,
    /// Signed greater (`!Z && N == V`).
    Gt,
    /// Signed less or equal (`Z || N != V`).
    Le,
    /// Always.
    #[default]
    Al,
}

impl Cond {
    /// All conditions in encoding order.
    pub const ALL: [Cond; 15] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Cs,
        Cond::Cc,
        Cond::Mi,
        Cond::Pl,
        Cond::Vs,
        Cond::Vc,
        Cond::Hi,
        Cond::Ls,
        Cond::Ge,
        Cond::Lt,
        Cond::Gt,
        Cond::Le,
        Cond::Al,
    ];

    /// 4-bit encoding.
    pub fn bits(self) -> u32 {
        self as u32
    }

    /// Decode from the 4-bit field.
    ///
    /// Returns `None` for the reserved value 15.
    pub fn from_bits(bits: u32) -> Option<Cond> {
        Cond::ALL.get(bits as usize).copied()
    }

    /// Evaluate against the four CPSR flags.
    ///
    /// Table-driven: one 16-bit row per condition, one bit per NZCV
    /// combination, so the interpreter hot loop does a load and a shift
    /// instead of a 15-way branch.
    #[inline(always)]
    pub fn passes(self, n: bool, z: bool, c: bool, v: bool) -> bool {
        let nzcv = ((n as usize) << 3) | ((z as usize) << 2) | ((c as usize) << 1) | (v as usize);
        PASS_TABLE[self as usize] >> nzcv & 1 != 0
    }

    /// Reference semantics for [`Cond::passes`]; kept as the readable
    /// definition the lookup table is built (and tested) against.
    const fn passes_spec(self, n: bool, z: bool, c: bool, v: bool) -> bool {
        match self {
            Cond::Eq => z,
            Cond::Ne => !z,
            Cond::Cs => c,
            Cond::Cc => !c,
            Cond::Mi => n,
            Cond::Pl => !n,
            Cond::Vs => v,
            Cond::Vc => !v,
            Cond::Hi => c && !z,
            Cond::Ls => !c || z,
            Cond::Ge => n == v,
            Cond::Lt => n != v,
            Cond::Gt => !z && n == v,
            Cond::Le => z || n != v,
            Cond::Al => true,
        }
    }

    /// Assembler suffix (`""` for [`Cond::Al`]).
    pub fn suffix(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Cs => "cs",
            Cond::Cc => "cc",
            Cond::Mi => "mi",
            Cond::Pl => "pl",
            Cond::Vs => "vs",
            Cond::Vc => "vc",
            Cond::Hi => "hi",
            Cond::Ls => "ls",
            Cond::Ge => "ge",
            Cond::Lt => "lt",
            Cond::Gt => "gt",
            Cond::Le => "le",
            Cond::Al => "",
        }
    }

    /// Parse an assembler suffix; `""` yields [`Cond::Al`].
    pub fn from_suffix(s: &str) -> Option<Cond> {
        match s {
            "" | "al" => Some(Cond::Al),
            "eq" => Some(Cond::Eq),
            "ne" => Some(Cond::Ne),
            "cs" | "hs" => Some(Cond::Cs),
            "cc" | "lo" => Some(Cond::Cc),
            "mi" => Some(Cond::Mi),
            "pl" => Some(Cond::Pl),
            "vs" => Some(Cond::Vs),
            "vc" => Some(Cond::Vc),
            "hi" => Some(Cond::Hi),
            "ls" => Some(Cond::Ls),
            "ge" => Some(Cond::Ge),
            "lt" => Some(Cond::Lt),
            "gt" => Some(Cond::Gt),
            "le" => Some(Cond::Le),
            _ => None,
        }
    }
}

/// Precomputed truth table for [`Cond::passes`]: row = condition in
/// encoding order, bit = NZCV packed as `n<<3 | z<<2 | c<<1 | v`.
const PASS_TABLE: [u16; 15] = {
    let mut table = [0u16; 15];
    let mut row = 0;
    while row < 15 {
        let cond = Cond::ALL[row];
        let mut nzcv = 0;
        while nzcv < 16 {
            if cond.passes_spec(nzcv & 8 != 0, nzcv & 4 != 0, nzcv & 2 != 0, nzcv & 1 != 0) {
                table[row] |= 1 << nzcv;
            }
            nzcv += 1;
        }
        row += 1;
    }
    table
};

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_bits(c.bits()), Some(c));
        }
        assert_eq!(Cond::from_bits(15), None);
    }

    #[test]
    fn suffix_roundtrip() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_suffix(c.suffix()), Some(c));
        }
    }

    #[test]
    fn table_matches_spec_exhaustively() {
        for cond in Cond::ALL {
            for nzcv in 0u8..16 {
                let (n, z, c, v) = (nzcv & 8 != 0, nzcv & 4 != 0, nzcv & 2 != 0, nzcv & 1 != 0);
                assert_eq!(
                    cond.passes(n, z, c, v),
                    cond.passes_spec(n, z, c, v),
                    "{cond:?} at n={n} z={z} c={c} v={v}"
                );
            }
        }
    }

    #[test]
    fn semantics_spot_checks() {
        assert!(Cond::Eq.passes(false, true, false, false));
        assert!(!Cond::Eq.passes(false, false, false, false));
        assert!(Cond::Hi.passes(false, false, true, false));
        assert!(!Cond::Hi.passes(false, true, true, false));
        assert!(Cond::Lt.passes(true, false, false, false));
        assert!(Cond::Lt.passes(false, false, false, true));
        assert!(Cond::Al.passes(true, true, true, true));
    }
}
