//! GF(2⁸) arithmetic and the MDS / RS matrices.

/// Field polynomial for the MDS matrix: x⁸ + x⁶ + x⁵ + x³ + 1.
pub const GF_MDS: u16 = 0x169;

/// Field polynomial for the RS matrix: x⁸ + x⁶ + x³ + x² + 1.
pub const GF_RS: u16 = 0x14D;

/// Multiply in GF(2⁸) modulo the given polynomial (bit 8 + low 8 bits).
fn gf_mul(mut a: u8, mut b: u8, poly: u16) -> u8 {
    let mut r = 0u8;
    while b != 0 {
        if b & 1 == 1 {
            r ^= a;
        }
        let hi = a & 0x80 != 0;
        a <<= 1;
        if hi {
            a ^= (poly & 0xFF) as u8;
        }
        b >>= 1;
    }
    r
}

const MDS: [[u8; 4]; 4] = [
    [0x01, 0xEF, 0x5B, 0x5B],
    [0x5B, 0xEF, 0xEF, 0x01],
    [0xEF, 0x5B, 0x01, 0xEF],
    [0xEF, 0x01, 0xEF, 0x5B],
];

const RS: [[u8; 8]; 4] = [
    [0x01, 0xA4, 0x55, 0x87, 0x5A, 0x58, 0xDB, 0x9E],
    [0xA4, 0x56, 0x82, 0xF3, 0x1E, 0xC6, 0x68, 0xE5],
    [0x02, 0xA1, 0xFC, 0xC1, 0x47, 0xAE, 0x3D, 0x19],
    [0xA4, 0x55, 0x87, 0x5A, 0x58, 0xDB, 0x9E, 0x03],
];

/// Apply the MDS matrix to a column of four bytes, returning the
/// little-endian word (byte 0 in bits 7:0).
pub fn mds_column(y: [u8; 4]) -> u32 {
    let mut out = 0u32;
    for (row, m) in MDS.iter().enumerate() {
        let mut acc = 0u8;
        for (j, &c) in m.iter().enumerate() {
            acc ^= gf_mul(c, y[j], GF_MDS);
        }
        out |= u32::from(acc) << (8 * row);
    }
    out
}

/// Reduce eight key bytes to a 32-bit S-box word via the RS code.
pub fn rs_reduce(k: &[u8]) -> u32 {
    assert_eq!(k.len(), 8, "RS takes eight key bytes");
    let mut out = 0u32;
    for (row, m) in RS.iter().enumerate() {
        let mut acc = 0u8;
        for (j, &c) in m.iter().enumerate() {
            acc ^= gf_mul(c, k[j], GF_RS);
        }
        out |= u32::from(acc) << (8 * row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gf_mul_identity_and_commutativity() {
        for a in 0..=255u8 {
            assert_eq!(gf_mul(a, 1, GF_MDS), a);
            assert_eq!(gf_mul(a, 0, GF_MDS), 0);
        }
        for (a, b) in [(0x57, 0x83), (0xEF, 0x5B), (0xFF, 0xFF)] {
            assert_eq!(gf_mul(a, b, GF_MDS), gf_mul(b, a, GF_MDS));
            assert_eq!(gf_mul(a, b, GF_RS), gf_mul(b, a, GF_RS));
        }
    }

    #[test]
    fn gf_mul_distributes() {
        for (a, b, c) in [(3u8, 7u8, 11u8), (0xEF, 0x5B, 0xA4)] {
            assert_eq!(gf_mul(a, b ^ c, GF_MDS), gf_mul(a, b, GF_MDS) ^ gf_mul(a, c, GF_MDS));
        }
    }

    #[test]
    fn rs_of_zero_key_is_zero() {
        assert_eq!(rs_reduce(&[0; 8]), 0);
    }

    #[test]
    fn mds_is_invertible_looking() {
        // Distinct inputs must give distinct outputs (sampled).
        let a = mds_column([1, 0, 0, 0]);
        let b = mds_column([0, 1, 0, 0]);
        let c = mds_column([1, 1, 0, 0]);
        assert_ne!(a, b);
        assert_eq!(a ^ b, c, "linearity over GF(2)");
    }
}
