//! The fetch/decode/execute loop with ARM7-class cycle accounting.

use proteus_isa::{BlockOp, Instr, MemOp, Reg};

use crate::alu::{self, Cpsr};
use crate::coproc::{CoprocResult, Coprocessor};
use crate::memory::{MemError, Memory};

/// Why [`Cpu::run`] returned. The kernel model dispatches on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stop {
    /// The cycle limit was reached (the scheduling-timer interrupt).
    /// A custom instruction in flight has been suspended via the
    /// status-register mechanism and will resume on reissue.
    Quantum,
    /// A software interrupt was executed; `pc` has advanced past it.
    Swi {
        /// The 24-bit SWI number.
        imm: u32,
    },
    /// A `pfu` instruction found no `(PID, CID)` mapping in either
    /// dispatch TLB. `pc` still points *at* the instruction so the OS can
    /// load the circuit (or map the software alternative) and reissue.
    CustomFault {
        /// The faulting Circuit ID.
        cid: u8,
        /// Address of the faulting instruction.
        pc: u32,
    },
    /// Undefined instruction.
    Undefined {
        /// The raw word.
        word: u32,
        /// Its address.
        pc: u32,
    },
    /// Data abort.
    MemFault {
        /// The underlying access error.
        err: MemError,
        /// Address of the faulting instruction.
        pc: u32,
    },
}

/// A saved register context (what the kernel stores in a PCB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Context {
    /// The sixteen core registers.
    pub regs: [u32; 16],
    /// Packed CPSR flags.
    pub cpsr: u32,
    /// Nesting depth of in-flight software-dispatch handlers (between a
    /// dispatch and its `retsd`). Saved with the context so cycle
    /// attribution survives a mid-handler pre-emption.
    pub soft_depth: u32,
}

/// Attribution of the cycles a [`Cpu::run`] span executed, drained per
/// span via [`Cpu::take_exec_mix`]. Whatever is in neither bucket is
/// plain user compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecMix {
    /// Cycles clocking PFU circuits (custom-instruction execute),
    /// outside software-dispatch handlers.
    pub custom: u64,
    /// Cycles inside software-dispatch handlers: the dispatching `pfu`
    /// issue, every handler instruction, nested custom issues, and the
    /// closing `retsd`.
    pub soft_dispatch: u64,
}

/// Cycle cost table (ARM7TDMI-flavoured; see DESIGN.md §5).
pub mod cost {
    /// Data-processing instruction.
    pub const DP: u64 = 1;
    /// Extra cycles when an instruction writes the PC (pipeline refill).
    pub const PC_WRITE: u64 = 2;
    /// Multiply.
    pub const MUL: u64 = 4;
    /// Multiply-accumulate.
    pub const MLA: u64 = 5;
    /// Word/byte load.
    pub const LDR: u64 = 3;
    /// Word/byte store.
    pub const STR: u64 = 2;
    /// Block transfer base (plus one per register).
    pub const LDM_BASE: u64 = 2;
    /// Store-multiple base (plus one per register).
    pub const STM_BASE: u64 = 1;
    /// Taken branch.
    pub const BRANCH_TAKEN: u64 = 3;
    /// Software interrupt entry.
    pub const SWI: u64 = 3;
    /// Issue overhead of a `pfu` instruction (decode + dispatch TLB).
    pub const PFU_ISSUE: u64 = 1;
    /// Coprocessor register move.
    pub const CP_MOVE: u64 = 1;
    /// Return from software dispatch (branch-like).
    pub const RETSD: u64 = 3;
    /// Condition-failed instruction.
    pub const COND_FAIL: u64 = 1;
}

/// The ProteanARM core.
#[derive(Debug, Clone)]
pub struct Cpu {
    regs: [u32; 16],
    cpsr: Cpsr,
    cycles: u64,
    soft_depth: u32,
    mix: ExecMix,
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new()
    }
}

impl Cpu {
    /// A core reset to zeroed registers at PC 0.
    pub fn new() -> Self {
        Self {
            regs: [0; 16],
            cpsr: Cpsr::default(),
            cycles: 0,
            soft_depth: 0,
            mix: ExecMix::default(),
        }
    }

    /// Read a register (architectural view: `r15` is the PC).
    pub fn reg(&self, index: usize) -> u32 {
        self.regs[index]
    }

    /// Write a register.
    pub fn set_reg(&mut self, index: usize, value: u32) {
        self.regs[index] = value;
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.regs[15]
    }

    /// Jump.
    pub fn set_pc(&mut self, pc: u32) {
        self.regs[15] = pc;
    }

    /// Total cycles executed on this core.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Charge `n` cycles of externally-imposed work (kernel overhead,
    /// configuration transfers) to this core's clock.
    pub fn add_cycles(&mut self, n: u64) {
        self.cycles += n;
    }

    /// Current flags.
    pub fn cpsr(&self) -> Cpsr {
        self.cpsr
    }

    /// Capture the register context (for a PCB).
    pub fn save_context(&self) -> Context {
        Context { regs: self.regs, cpsr: self.cpsr.to_word(), soft_depth: self.soft_depth }
    }

    /// Restore a register context.
    pub fn restore_context(&mut self, ctx: &Context) {
        self.regs = ctx.regs;
        self.cpsr = Cpsr::from_word(ctx.cpsr);
        self.soft_depth = ctx.soft_depth;
    }

    /// The execution-mix attribution accumulated since the last
    /// [`Cpu::take_exec_mix`].
    pub fn exec_mix(&self) -> ExecMix {
        self.mix
    }

    /// Drain the execution mix (the kernel calls this once per run
    /// span, turning it into a `Compute` event).
    pub fn take_exec_mix(&mut self) -> ExecMix {
        std::mem::take(&mut self.mix)
    }

    /// Charge `n` cycles of instruction cost to the core clock.
    #[inline(always)]
    fn charge(&mut self, n: u64) {
        self.cycles += n;
    }

    /// Run until `until_cycle` is reached or an exception stops execution.
    ///
    /// The caller (kernel model) owns exception handling: on
    /// [`Stop::Swi`] the PC has advanced, on [`Stop::CustomFault`] /
    /// [`Stop::Undefined`] / [`Stop::MemFault`] it has not, and on
    /// [`Stop::Quantum`] execution may simply be resumed later.
    ///
    /// The quantum bound is the only per-instruction check: the kernel
    /// computes the span's stop cycle once and passes it down, so the
    /// loop compares a single counter against a constant.
    pub fn run(&mut self, mem: &mut Memory, coproc: &mut dyn Coprocessor, until_cycle: u64) -> Stop {
        loop {
            if self.cycles >= until_cycle {
                return Stop::Quantum;
            }
            // Any instruction executed inside a software-dispatch
            // handler is soft-dispatch time (the dispatching issue
            // itself is attributed by the dispatch arm in `step`, the
            // closing `retsd` by this wrapper).
            let stop = if self.soft_depth > 0 {
                let span_start = self.cycles;
                let stop = self.step(mem, coproc, until_cycle);
                self.mix.soft_dispatch += self.cycles - span_start;
                stop
            } else {
                self.step(mem, coproc, until_cycle)
            };
            if let Some(stop) = stop {
                return stop;
            }
        }
    }

    /// Execute one instruction. Returns `Some(stop)` if it raised an
    /// exception (see [`Cpu::run`] for PC conventions).
    ///
    /// Force-inlined into [`Cpu::run`]: the per-instruction call and the
    /// `Option<Stop>` return shuffle are measurable at interpreter speed.
    #[inline(always)]
    pub fn step(
        &mut self,
        mem: &mut Memory,
        coproc: &mut dyn Coprocessor,
        until_cycle: u64,
    ) -> Option<Stop> {
        let pc = self.regs[15];
        // Infallible icache-hit lane: dense program text hits here with
        // no `Result`/`Option` juggling; first decodes, undefined words
        // and fetch faults all take the cold fallback.
        let (word, instr) = match mem.cached_instr(pc) {
            Some(entry) => entry,
            None => match mem.fetch_instr(pc) {
                Ok((word, Some(i))) => (word, i),
                Ok((word, None)) => return Some(Stop::Undefined { word, pc }),
                Err(err) => return Some(Stop::MemFault { err, pc }),
            },
        };
        // The condition field is bits 31..28 of every encoding, so the
        // raw word answers "unconditional?" (almost always yes) with a
        // shift — no re-extraction from the decoded form, no flag loads.
        if word >> 28 != proteus_isa::Cond::Al as u32
            && !instr.cond().passes(self.cpsr.n, self.cpsr.z, self.cpsr.c, self.cpsr.v)
        {
            self.charge(cost::COND_FAIL);
            self.regs[15] = pc.wrapping_add(4);
            return None;
        }
        let mut next_pc = pc.wrapping_add(4);
        match instr {
            Instr::DataProc { op, s, rd, rn, op2, .. } => {
                let (op2_val, shifter_carry) =
                    alu::eval_op2(op2, |i| arch_read(&self.regs, pc, i), self.cpsr.c);
                let rn_val = arch_read(&self.regs, pc, rn.index());
                self.charge(cost::DP);
                // `S`-clear is the common case; skip the flag circuitry.
                let (value, writes_rd) = if s {
                    let r = alu::exec_dp(op, rn_val, op2_val, shifter_carry, self.cpsr);
                    self.cpsr = r.flags;
                    (r.value, r.writes_rd)
                } else {
                    alu::exec_dp_value(op, rn_val, op2_val, self.cpsr.c)
                };
                if writes_rd {
                    if rd == Reg::PC {
                        next_pc = value;
                        self.charge(cost::PC_WRITE);
                    } else {
                        self.regs[rd.index()] = value;
                    }
                }
            }
            Instr::Mul { s, rd, rm, rs, acc, .. } => {
                let mut v = arch_read(&self.regs, pc, rm.index())
                    .wrapping_mul(arch_read(&self.regs, pc, rs.index()));
                self.charge(match acc {
                    Some(rn) => {
                        v = v.wrapping_add(arch_read(&self.regs, pc, rn.index()));
                        cost::MLA
                    }
                    None => cost::MUL,
                });
                self.regs[rd.index()] = v;
                if s {
                    self.cpsr.n = v >> 31 & 1 == 1;
                    self.cpsr.z = v == 0;
                }
            }
            Instr::Mem { op, byte, rd, rn, offset, up, pre, writeback, .. } => {
                let base = arch_read(&self.regs, pc, rn.index());
                let off = match offset {
                    proteus_isa::instr::MemOffset::Imm(i) => u32::from(i),
                    proteus_isa::instr::MemOffset::Reg(rm, sh) => {
                        alu::barrel_shift(arch_read(&self.regs, pc, rm.index()), sh, self.cpsr.c).0
                    }
                };
                let offsetted = if up { base.wrapping_add(off) } else { base.wrapping_sub(off) };
                let addr = if pre { offsetted } else { base };
                let result = match op {
                    MemOp::Ldr => {
                        self.charge(cost::LDR);
                        let r = if byte {
                            mem.read_byte(addr).map(u32::from)
                        } else {
                            mem.read_word(addr)
                        };
                        match r {
                            Ok(v) => Some(v),
                            Err(err) => return Some(Stop::MemFault { err, pc }),
                        }
                    }
                    MemOp::Str => {
                        self.charge(cost::STR);
                        let v = arch_read(&self.regs, pc, rd.index());
                        let r = if byte {
                            mem.write_byte(addr, (v & 0xFF) as u8)
                        } else {
                            mem.write_word(addr, v)
                        };
                        if let Err(err) = r {
                            return Some(Stop::MemFault { err, pc });
                        }
                        None
                    }
                };
                if writeback || !pre {
                    self.regs[rn.index()] = offsetted;
                }
                if let Some(v) = result {
                    if rd == Reg::PC {
                        next_pc = v;
                        self.charge(cost::PC_WRITE);
                    } else {
                        self.regs[rd.index()] = v;
                    }
                }
            }
            Instr::Block { op, rn, regs, before, up, writeback, .. } => {
                let count = regs.count_ones();
                let base = arch_read(&self.regs, pc, rn.index());
                let span = count * 4;
                // Lowest register always occupies the lowest address.
                let lowest = if up { base } else { base.wrapping_sub(span) };
                let start = match (up, before) {
                    (true, false) => lowest,                   // IA
                    (true, true) => lowest.wrapping_add(4),    // IB
                    (false, false) => lowest.wrapping_add(4),  // DA
                    (false, true) => lowest,                   // DB
                };
                let final_base = if up { base.wrapping_add(span) } else { base.wrapping_sub(span) };
                let mut addr = start;
                let mut loaded_pc = None;
                for i in 0..16u16 {
                    if regs >> i & 1 == 0 {
                        continue;
                    }
                    match op {
                        BlockOp::Ldm => match mem.read_word(addr) {
                            Ok(v) => {
                                if i == 15 {
                                    loaded_pc = Some(v);
                                } else {
                                    self.regs[i as usize] = v;
                                }
                            }
                            Err(err) => return Some(Stop::MemFault { err, pc }),
                        },
                        BlockOp::Stm => {
                            let v = arch_read(&self.regs, pc, i as usize);
                            if let Err(err) = mem.write_word(addr, v) {
                                return Some(Stop::MemFault { err, pc });
                            }
                        }
                    }
                    addr = addr.wrapping_add(4);
                }
                self.charge(match op {
                    BlockOp::Ldm => cost::LDM_BASE + u64::from(count),
                    BlockOp::Stm => cost::STM_BASE + u64::from(count),
                });
                if writeback {
                    self.regs[rn.index()] = final_base;
                }
                if let Some(v) = loaded_pc {
                    next_pc = v;
                    self.charge(cost::PC_WRITE);
                }
            }
            Instr::Branch { link, offset, .. } => {
                if link {
                    self.regs[14] = pc.wrapping_add(4);
                }
                next_pc = pc.wrapping_add(4).wrapping_add((offset as u32).wrapping_mul(4));
                self.charge(cost::BRANCH_TAKEN);
            }
            Instr::Swi { imm, .. } => {
                self.charge(cost::SWI);
                self.regs[15] = next_pc;
                return Some(Stop::Swi { imm });
            }
            Instr::Pfu { cid, rd, rn, rm, .. } => {
                self.charge(cost::PFU_ISSUE);
                let op_a = arch_read(&self.regs, pc, rn.index());
                let op_b = arch_read(&self.regs, pc, rm.index());
                let budget = until_cycle.saturating_sub(self.cycles);
                // PID register: workstation-class processors hold the
                // current PID (§4.2); we model it in coprocessor register
                // 15 by kernel convention, but pass it explicitly.
                let pid = coproc.read_reg(15);
                match coproc.exec_custom(pid, cid, op_a, op_b, rd.index() as u8, next_pc, budget) {
                    CoprocResult::Done { value, cycles } => {
                        self.charge(cycles);
                        if self.soft_depth == 0 {
                            self.mix.custom += cycles;
                        }
                        self.regs[rd.index()] = value;
                    }
                    CoprocResult::Interrupted { cycles } => {
                        self.charge(cycles);
                        if self.soft_depth == 0 {
                            self.mix.custom += cycles;
                        }
                        // Do not advance PC: the instruction is reissued
                        // after the interrupt, resuming via the
                        // status-register mechanism (§4.4).
                        return Some(Stop::Quantum);
                    }
                    CoprocResult::SoftwareDispatch { target, cycles } => {
                        self.charge(cycles + cost::BRANCH_TAKEN);
                        if self.soft_depth == 0 {
                            // Entering a handler from user code: the
                            // dispatching issue is soft-dispatch time.
                            // (Nested dispatches are covered by the
                            // `run` wrapper.)
                            self.mix.soft_dispatch +=
                                cost::PFU_ISSUE + cycles + cost::BRANCH_TAKEN;
                        }
                        self.soft_depth += 1;
                        self.regs[14] = next_pc;
                        next_pc = target;
                    }
                    CoprocResult::Fault => {
                        return Some(Stop::CustomFault { cid, pc });
                    }
                }
            }
            Instr::Mcr { rfu, rs, .. } => {
                self.charge(cost::CP_MOVE);
                coproc.write_reg(rfu, arch_read(&self.regs, pc, rs.index()));
            }
            Instr::Mrc { rd, rfu, .. } => {
                self.charge(cost::CP_MOVE);
                self.regs[rd.index()] = coproc.read_reg(rfu);
            }
            Instr::LdOp { rd, sel, .. } => {
                self.charge(cost::CP_MOVE);
                self.regs[rd.index()] = coproc.read_operand(sel);
            }
            Instr::StRes { rs, .. } => {
                self.charge(cost::CP_MOVE);
                coproc.write_result(arch_read(&self.regs, pc, rs.index()));
            }
            Instr::RetSd { .. } => {
                self.charge(cost::RETSD);
                self.soft_depth = self.soft_depth.saturating_sub(1);
                let info = coproc.return_from_software();
                self.regs[info.rd as usize & 0xF] = info.result;
                next_pc = info.ret_addr;
            }
            Instr::McrO { field, rs, .. } => {
                self.charge(cost::CP_MOVE);
                coproc.write_operand_field(field, arch_read(&self.regs, pc, rs.index()));
            }
            Instr::MrcO { rd, field, .. } => {
                self.charge(cost::CP_MOVE);
                self.regs[rd.index()] = coproc.read_operand_field(field);
            }
        }
        self.regs[15] = next_pc;
        None
    }
}

/// Architectural register read used by the execute stage: `r15` reads as
/// the fetch address plus 4, every other index reads the register file.
/// Free function (not a per-step closure) so the hot loop builds no
/// captures.
#[inline(always)]
fn arch_read(regs: &[u32; 16], pc: u32, i: usize) -> u32 {
    if i == 15 {
        pc.wrapping_add(4)
    } else {
        regs[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coproc::NullCoprocessor;
    use proteus_isa::assemble;

    fn run_asm(src: &str) -> (Cpu, Memory) {
        let p = assemble(src).unwrap_or_else(|e| panic!("{e}"));
        let mut mem = Memory::new(64 * 1024);
        mem.load_program(&p).expect("load");
        let mut cpu = Cpu::new();
        cpu.set_reg(13, 60 * 1024); // stack
        let stop = cpu.run(&mut mem, &mut NullCoprocessor, 10_000_000);
        assert!(matches!(stop, Stop::Swi { imm: 0 }), "unexpected stop {stop:?}");
        (cpu, mem)
    }

    #[test]
    fn factorial_loop() {
        let (cpu, _) = run_asm(
            "mov r0, #1\n\
             mov r1, #6\n\
             loop: mul r0, r0, r1\n\
             subs r1, r1, #1\n\
             bne loop\n\
             swi #0\n",
        );
        assert_eq!(cpu.reg(0), 720);
    }

    #[test]
    fn memory_store_and_load() {
        let (cpu, mem) = run_asm(
            "ldr r0, =buf\n\
             ldr r1, =0xCAFEBABE\n\
             str r1, [r0]\n\
             ldr r2, [r0]\n\
             ldrb r3, [r0, #1]\n\
             swi #0\n\
             buf: .space 8\n",
        );
        assert_eq!(cpu.reg(2), 0xCAFE_BABE);
        assert_eq!(cpu.reg(3), 0xBA);
        let buf = cpu.reg(0);
        assert_eq!(mem.read_word(buf).expect("read"), 0xCAFE_BABE);
    }

    #[test]
    fn post_index_walks_array() {
        let (cpu, _) = run_asm(
            "ldr r0, =data\n\
             mov r2, #0\n\
             mov r3, #4\n\
             loop: ldr r1, [r0], #4\n\
             add r2, r2, r1\n\
             subs r3, r3, #1\n\
             bne loop\n\
             swi #0\n\
             data: .word 10, 20, 30, 40\n",
        );
        assert_eq!(cpu.reg(2), 100);
    }

    #[test]
    fn function_call_and_stack() {
        let (cpu, _) = run_asm(
            "mov r0, #5\n\
             bl double\n\
             bl double\n\
             swi #0\n\
             double: push {r4, lr}\n\
             mov r4, r0\n\
             add r0, r4, r4\n\
             pop {r4, pc}\n",
        );
        assert_eq!(cpu.reg(0), 20);
    }

    #[test]
    fn conditional_execution_costs_one_cycle() {
        let p = assemble("cmp r0, #1\n moveq r1, #5\n swi #0\n").expect("asm");
        let mut mem = Memory::new(1024);
        mem.load_program(&p).expect("load");
        let mut cpu = Cpu::new();
        cpu.run(&mut mem, &mut NullCoprocessor, u64::MAX);
        assert_eq!(cpu.reg(1), 0, "moveq must be skipped");
        // cmp(1) + skipped(1) + swi(3)
        assert_eq!(cpu.cycles(), 5);
    }

    #[test]
    fn quantum_preempts_execution() {
        let p = assemble("loop: add r0, r0, #1\n b loop\n").expect("asm");
        let mut mem = Memory::new(1024);
        mem.load_program(&p).expect("load");
        let mut cpu = Cpu::new();
        let stop = cpu.run(&mut mem, &mut NullCoprocessor, 1000);
        assert_eq!(stop, Stop::Quantum);
        assert!(cpu.cycles() >= 1000 && cpu.cycles() < 1010);
        // Resumable.
        let stop = cpu.run(&mut mem, &mut NullCoprocessor, 2000);
        assert_eq!(stop, Stop::Quantum);
        assert!(cpu.reg(0) > 0);
    }

    #[test]
    fn pfu_faults_without_mapping() {
        let p = assemble("mov r0, #1\n pfu 3, r2, r0, r0\n swi #0\n").expect("asm");
        let mut mem = Memory::new(1024);
        mem.load_program(&p).expect("load");
        let mut cpu = Cpu::new();
        let stop = cpu.run(&mut mem, &mut NullCoprocessor, u64::MAX);
        match stop {
            Stop::CustomFault { cid: 3, pc } => assert_eq!(pc, 4, "PC stays at the pfu"),
            other => panic!("unexpected stop {other:?}"),
        }
        assert_eq!(cpu.pc(), 4);
    }

    #[test]
    fn self_modifying_code_sees_the_new_instruction() {
        // Execute `target` once (priming the decode cache), store a new
        // encoding over it, then re-execute: the store must invalidate
        // the cached entry so the patched instruction runs.
        let (cpu, _) = run_asm(
            "mov r0, #0\n\
             b start\n\
             patchsrc: mov r1, #2\n\
             start: ldr r2, =patchsrc\n\
             ldr r2, [r2]\n\
             ldr r3, =target\n\
             target: mov r1, #1\n\
             cmp r0, #1\n\
             beq done\n\
             mov r4, r1\n\
             str r2, [r3]\n\
             mov r0, #1\n\
             b target\n\
             done: swi #0\n",
        );
        assert_eq!(cpu.reg(4), 1, "first pass must run the original instruction");
        assert_eq!(cpu.reg(1), 2, "second pass must run the patched instruction");
    }

    #[test]
    fn undefined_instruction_stops() {
        let mut mem = Memory::new(1024);
        mem.write_word(0, 0xFFFF_FFFF).expect("write");
        let mut cpu = Cpu::new();
        let stop = cpu.run(&mut mem, &mut NullCoprocessor, u64::MAX);
        assert!(matches!(stop, Stop::Undefined { pc: 0, .. }));
    }

    #[test]
    fn mem_fault_reports_pc() {
        let p = assemble("ldr r0, =0xFFFFFF0\n ldr r1, [r0]\n").expect("asm");
        let mut mem = Memory::new(1024);
        mem.load_program(&p).expect("load");
        let mut cpu = Cpu::new();
        let stop = cpu.run(&mut mem, &mut NullCoprocessor, u64::MAX);
        assert!(matches!(stop, Stop::MemFault { pc: 4, .. }), "{stop:?}");
    }

    #[test]
    fn context_save_restore_roundtrip() {
        let (cpu, _) = run_asm("mov r0, #42\n cmp r0, #42\n swi #0\n");
        let ctx = cpu.save_context();
        let mut cpu2 = Cpu::new();
        cpu2.restore_context(&ctx);
        assert_eq!(cpu2.reg(0), 42);
        assert!(cpu2.cpsr().z);
        assert_eq!(cpu2.pc(), cpu.pc());
    }

    #[test]
    fn block_transfer_roundtrip() {
        let (cpu, _) = run_asm(
            "mov r0, #1\n mov r1, #2\n mov r2, #3\n\
             push {r0-r2}\n\
             mov r0, #0\n mov r1, #0\n mov r2, #0\n\
             pop {r0-r2}\n\
             swi #0\n",
        );
        assert_eq!((cpu.reg(0), cpu.reg(1), cpu.reg(2)), (1, 2, 3));
    }
}
