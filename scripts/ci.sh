#!/usr/bin/env bash
# Tier-1 CI: build, test, and verify the parallel experiment runner is
# deterministic (a --jobs 2 run must produce byte-identical CSVs to a
# --jobs 1 run).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build =="
cargo build --release --workspace

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== test =="
cargo test -q --workspace

echo "== repro determinism (fig2, --jobs 1 vs --jobs 2) =="
serial_dir=target/ci-repro/serial
parallel_dir=target/ci-repro/parallel
rm -rf "$serial_dir" "$parallel_dir"
cargo run --release -p proteus-bench --bin repro -- \
    --quick --jobs 1 --out "$serial_dir" fig2 >/dev/null
cargo run --release -p proteus-bench --bin repro -- \
    --quick --jobs 2 --out "$parallel_dir" fig2 >/dev/null
diff "$serial_dir/fig2.csv" "$parallel_dir/fig2.csv"
diff "$serial_dir/breakdown_fig2.csv" "$parallel_dir/breakdown_fig2.csv"
for f in "$serial_dir/summary.json" "$parallel_dir/summary.json"; do
    test -s "$f" || { echo "missing $f" >&2; exit 1; }
done
echo "CSVs byte-identical across job counts; summary.json emitted"

echo "== fault-campaign smoke (quick scale, --jobs 1 vs --jobs 2, golden diff) =="
cargo run --release -p proteus-bench --bin repro -- \
    --quick --jobs 1 --out "$serial_dir" faults >/dev/null
cargo run --release -p proteus-bench --bin repro -- \
    --quick --jobs 2 --out "$parallel_dir" faults >/dev/null
diff "$serial_dir/fault_campaign.csv" "$parallel_dir/fault_campaign.csv"
diff "$serial_dir/breakdown_fault_campaign.csv" "$parallel_dir/breakdown_fault_campaign.csv"
# Fault injection is seeded: the quick-scale campaign must reproduce the
# committed golden matrix bit-for-bit on every host.
diff scripts/golden/fault_campaign_quick.csv "$serial_dir/fault_campaign.csv"
echo "fault campaign deterministic and matches the golden matrix"

echo "== profiling exports (folded determinism, golden diff, Chrome trace) =="
cargo run --release -p proteus-bench --bin repro -- \
    --quick --jobs 1 --out "$serial_dir" --flame fig3 >/dev/null
cargo run --release -p proteus-bench --bin repro -- \
    --quick --jobs 2 --out "$parallel_dir" --flame fig3 >/dev/null
diff "$serial_dir/flamegraph_fig3.folded" "$parallel_dir/flamegraph_fig3.folded"
# Attribution is deterministic, so the quick-scale folded profile must
# reproduce the committed golden bit-for-bit on every host.
diff scripts/golden/flamegraph_fig3_quick.folded "$serial_dir/flamegraph_fig3.folded"
cargo run --release -p proteus-bench --bin repro -- \
    --quick --out "$serial_dir" --chrome-trace alpha >/dev/null
test -s "$serial_dir/chrome_trace_alpha.json" \
    || { echo "missing chrome_trace_alpha.json" >&2; exit 1; }
grep -q '"traceEvents"' "$serial_dir/chrome_trace_alpha.json"
echo "folded profile byte-identical across job counts and matches the golden"

echo "== ci.sh OK =="
