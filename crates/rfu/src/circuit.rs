//! The circuit abstraction PFUs host.

use std::fmt;

use proteus_fabric::bitstream::StateFrames;
use proteus_fabric::{Bitstream, Device, FabricError};

/// One PFU clock cycle's outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitClock {
    /// Value on the result bus.
    pub result: u32,
    /// Completion signal.
    pub done: bool,
}

/// Opaque saved circuit state — the contents of the *state frames*
/// (paper §4.1). Moving this on a swap costs
/// [`PfuCircuit::state_words`] bus words instead of a full
/// reconfiguration.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CircuitState(pub Vec<u32>);

/// A circuit loadable into a PFU.
///
/// The contract mirrors the PFU hardware interface of §4.4: the unit
/// clocks the circuit with the two 32-bit operands and the `init` signal;
/// the circuit raises `done` on its final cycle. Implementations must be
/// resumable: if clocking stops between `init` and `done` (interrupt) and
/// later continues with `init` low, the instruction completes as if
/// uninterrupted.
pub trait PfuCircuit: fmt::Debug {
    /// Advance one clock with the given datapath inputs.
    fn clock(&mut self, op_a: u32, op_b: u32, init: bool) -> CircuitClock;

    /// Capture the state frames.
    fn save_state(&self) -> CircuitState;

    /// Restore previously captured state frames.
    ///
    /// # Errors
    ///
    /// A [`FabricError::StateMismatch`]-style error message if the state
    /// does not belong to this circuit type.
    fn load_state(&mut self, state: &CircuitState) -> Result<(), FabricError>;

    /// Clock the circuit up to `budget` (≥ 1) times, presenting `init`
    /// on the first clock only — the status-register protocol
    /// [`crate::PfuArray::run`] drives. Returns the clocks consumed and
    /// `Some(result)` if `done` rose on the final one.
    ///
    /// The default iterates [`PfuCircuit::clock`]; models whose timing
    /// is analytically known (the behavioral latency counters) override
    /// it with an O(1) fast-forward. Overrides must be observably
    /// identical to the default, including all state mutations.
    fn run_clocks(&mut self, op_a: u32, op_b: u32, init: bool, budget: u64) -> (u64, Option<u32>) {
        let mut used = 0u64;
        let mut init = init;
        while used < budget {
            let out = self.clock(op_a, op_b, init);
            init = false;
            used += 1;
            if out.done {
                return (used, Some(out.result));
            }
        }
        (used, None)
    }

    /// Size of the static configuration in bytes (54 000 for a full
    /// 500-CLB PFU, per the paper).
    fn static_config_bytes(&self) -> usize {
        proteus_fabric::CONFIG_BYTES_PER_CLB * proteus_fabric::FabricDims::PFU.clbs()
    }

    /// Size of the state frames in 32-bit bus words.
    fn state_words(&self) -> usize {
        self.save_state().0.len().max(1)
    }
}

/// A [`PfuCircuit`] backed by a real gate-level bitstream executing on a
/// [`Device`] — the highest-fidelity path: the circuit the scheduler
/// swaps around is literally a decoded configuration.
#[derive(Debug, Clone)]
pub struct NetlistCircuit {
    device: Device,
    clbs: usize,
}

impl NetlistCircuit {
    /// Load `bitstream` into a fresh device of matching dimensions.
    ///
    /// # Errors
    ///
    /// Propagates bitstream validation/load failures.
    ///
    /// # Example
    ///
    /// ```
    /// use proteus_fabric::{compile, library, place::FabricDims};
    /// use proteus_rfu::{NetlistCircuit, PfuCircuit};
    ///
    /// # fn main() -> Result<(), proteus_fabric::FabricError> {
    /// let netlist = library::adder32()?;
    /// let compiled = compile(&netlist, FabricDims::PFU)?;
    /// let mut circuit = NetlistCircuit::new(compiled.bitstream())?;
    /// let out = circuit.clock(40, 2, true);
    /// assert_eq!(out.result, 42);
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(bitstream: &Bitstream) -> Result<Self, FabricError> {
        let mut device = Device::new(bitstream.dims());
        device.load(bitstream)?;
        Ok(Self { device, clbs: bitstream.dims().clbs() })
    }
}

impl PfuCircuit for NetlistCircuit {
    fn clock(&mut self, op_a: u32, op_b: u32, init: bool) -> CircuitClock {
        let out = self.device.clock(op_a, op_b, init).expect("device is configured");
        CircuitClock { result: out.result, done: out.done }
    }

    fn save_state(&self) -> CircuitState {
        let frames = self.device.save_state().expect("device is configured");
        let mut words = Vec::with_capacity(frames.bits.len().div_ceil(32));
        let mut acc = 0u32;
        for (i, &b) in frames.bits.iter().enumerate() {
            if b {
                acc |= 1 << (i % 32);
            }
            if i % 32 == 31 {
                words.push(acc);
                acc = 0;
            }
        }
        if !frames.bits.len().is_multiple_of(32) {
            words.push(acc);
        }
        CircuitState(words)
    }

    fn load_state(&mut self, state: &CircuitState) -> Result<(), FabricError> {
        let bits: Vec<bool> = (0..self.clbs)
            .map(|i| state.0.get(i / 32).is_some_and(|w| w >> (i % 32) & 1 == 1))
            .collect();
        if state.0.len() != self.clbs.div_ceil(32) {
            return Err(FabricError::StateMismatch {
                detail: format!("expected {} state words, got {}", self.clbs.div_ceil(32), state.0.len()),
            });
        }
        self.device.load_state(&StateFrames { bits })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_fabric::{compile, library, place::FabricDims};

    #[test]
    fn netlist_circuit_state_roundtrip() {
        let netlist = library::accumulator32().expect("netlist");
        let compiled = compile(&netlist, FabricDims::PFU).expect("compile");
        let mut c = NetlistCircuit::new(compiled.bitstream()).expect("circuit");
        for _ in 0..3 {
            c.clock(10, 0, true);
        }
        let saved = c.save_state();
        assert_eq!(c.clock(10, 0, true).result, 40);
        c.load_state(&saved).expect("restore");
        assert_eq!(c.clock(10, 0, true).result, 40, "state rewound");
    }

    #[test]
    fn state_word_size_is_small() {
        let netlist = library::adder32().expect("netlist");
        let compiled = compile(&netlist, FabricDims::PFU).expect("compile");
        let c = NetlistCircuit::new(compiled.bitstream()).expect("circuit");
        // 500 CLBs -> 16 words of state vs 13 500 words of static config.
        assert_eq!(c.state_words(), 16);
        assert_eq!(c.static_config_bytes(), 54_000);
    }

    #[test]
    fn wrong_sized_state_rejected() {
        let netlist = library::adder32().expect("netlist");
        let compiled = compile(&netlist, FabricDims::PFU).expect("compile");
        let mut c = NetlistCircuit::new(compiled.bitstream()).expect("circuit");
        assert!(c.load_state(&CircuitState(vec![0; 3])).is_err());
    }
}
