//! Deterministic fault injection: SEU bit flips, transit corruption and
//! per-frame CRCs.
//!
//! Real FPL fabrics suffer single-event upsets (SEUs) in the
//! configuration SRAM and bit errors on the configuration bus. Because
//! the Proteus management layer *owns* every configuration (§3), the OS
//! is the natural place to detect and repair such damage — but first the
//! damage has to exist. This module provides:
//!
//! * a seeded, deterministic [`FaultInjector`] drawing SEU arrival times
//!   from an exponential distribution, per-transfer transit-corruption
//!   coin flips, and uniformly chosen victim frames/bits;
//! * bit-flip operations on serialised bitstream images ([`flip_static_bit`])
//!   so an upset mutates exactly the artefact the configuration bus
//!   carries;
//! * a per-frame CRC ([`frame_crcs`], [`check_frame_crcs`]) over the
//!   static configuration frames, giving the kernel a readback-scrub
//!   primitive that localises corruption to one CLB frame.
//!
//! Determinism contract: every draw comes from one `StdRng` seeded by
//! the caller, so a campaign with a fixed seed replays exactly — the
//! property the parallel experiment runner's byte-identical-CSV
//! guarantee rests on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bitstream::WORDS_PER_CLB;
use crate::error::FabricError;

/// Word offset of the first static CLB frame in a serialised bitstream
/// (after the magic and dimension words — see `Bitstream::to_words`).
pub const STATIC_FRAME_OFFSET: usize = 2;

/// The kinds of fault the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A single-event upset: one bit flipped in a resident static
    /// configuration frame.
    Seu,
    /// A bit error while a bitstream crosses the configuration bus.
    Transit,
    /// A stuck-at-0 fault on a PFU's `done` signal: the circuit clocks
    /// but completion never reaches the status register.
    StuckDone,
}

impl FaultKind {
    /// Stable lower-case name (CSV series labels, traces).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Seu => "seu",
            FaultKind::Transit => "transit",
            FaultKind::StuckDone => "stuck",
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected) over a span of configuration words.
///
/// Hand-rolled so the fabric crate stays dependency-free; speed is
/// irrelevant at scrub granularity.
pub fn crc32(words: &[u32]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &w in words {
        for byte in w.to_le_bytes() {
            crc ^= u32::from(byte);
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
    }
    !crc
}

/// Per-CLB-frame CRCs over the static section of a serialised bitstream
/// image, as produced by `Bitstream::to_words`.
///
/// # Errors
///
/// [`FabricError::MalformedBitstream`] if the image is too short to hold
/// the static frames its dimension word promises.
pub fn frame_crcs(words: &[u32]) -> Result<Vec<u32>, FabricError> {
    let clbs = image_clbs(words)?;
    Ok((0..clbs)
        .map(|i| {
            let start = STATIC_FRAME_OFFSET + i * WORDS_PER_CLB;
            crc32(&words[start..start + WORDS_PER_CLB])
        })
        .collect())
}

/// Verify a bitstream image against previously computed per-frame CRCs,
/// localising any corruption to one frame.
///
/// # Errors
///
/// [`FabricError::CrcMismatch`] naming the first corrupt frame, or
/// [`FabricError::MalformedBitstream`] if the image is truncated or the
/// CRC vector has the wrong length.
pub fn check_frame_crcs(words: &[u32], expected: &[u32]) -> Result<(), FabricError> {
    let actual = frame_crcs(words)?;
    if actual.len() != expected.len() {
        return Err(FabricError::MalformedBitstream {
            detail: format!("{} frame CRCs for {} frames", expected.len(), actual.len()),
        });
    }
    for (frame, (&a, &e)) in actual.iter().zip(expected).enumerate() {
        if a != e {
            return Err(FabricError::CrcMismatch { frame, expected: e, actual: a });
        }
    }
    Ok(())
}

fn image_clbs(words: &[u32]) -> Result<usize, FabricError> {
    let dims_word = *words.get(1).ok_or(FabricError::MalformedBitstream {
        detail: "image too short for header".to_string(),
    })?;
    let clbs = (dims_word >> 16) as usize * (dims_word & 0xFFFF) as usize;
    if words.len() < STATIC_FRAME_OFFSET + clbs * WORDS_PER_CLB {
        return Err(FabricError::MalformedBitstream {
            detail: "image too short for static frames".to_string(),
        });
    }
    Ok(clbs)
}

/// Flip one bit in the static frame section of a serialised bitstream
/// image: `frame` selects the CLB, `word` the frame word (0..27) and
/// `bit` the bit position. Returns the new word value.
///
/// # Errors
///
/// [`FabricError::MalformedBitstream`] if the coordinates fall outside
/// the image's static section.
pub fn flip_static_bit(
    words: &mut [u32],
    frame: usize,
    word: usize,
    bit: u32,
) -> Result<u32, FabricError> {
    let clbs = image_clbs(words)?;
    if frame >= clbs || word >= WORDS_PER_CLB || bit >= 32 {
        return Err(FabricError::MalformedBitstream {
            detail: format!("flip target frame {frame} word {word} bit {bit} out of range"),
        });
    }
    let idx = STATIC_FRAME_OFFSET + frame * WORDS_PER_CLB + word;
    words[idx] ^= 1 << bit;
    Ok(words[idx])
}

/// Injector configuration: arrival rates for each fault kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Mean cycles between SEU strikes (exponential inter-arrival);
    /// `0` disables upsets.
    pub seu_mean_cycles: u64,
    /// Probability that one configuration-bus transfer corrupts the
    /// bitstream in transit (`0.0` disables).
    pub transit_error_rate: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self { seu_mean_cycles: 0, transit_error_rate: 0.0 }
    }
}

/// A seeded, deterministic source of fault events.
#[derive(Debug)]
pub struct FaultInjector {
    rng: StdRng,
    config: FaultConfig,
}

impl FaultInjector {
    /// Build an injector; equal `(seed, config)` pairs replay the same
    /// fault sequence.
    pub fn new(seed: u64, config: FaultConfig) -> Self {
        Self { rng: StdRng::seed_from_u64(seed), config }
    }

    /// The configured rates.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Draw the gap (in cycles) until the next SEU strike, or `None`
    /// if upsets are disabled. Exponential inter-arrival via inverse
    /// transform, matching the dynamic-load arrival harness.
    pub fn next_seu_gap(&mut self) -> Option<u64> {
        if self.config.seu_mean_cycles == 0 {
            return None;
        }
        let u: f64 = self.rng.gen_range(1e-9..1.0);
        Some(((-u.ln() * self.config.seu_mean_cycles as f64) as u64).max(1))
    }

    /// Coin flip: does this configuration-bus transfer corrupt the
    /// payload?
    pub fn transit_corrupts(&mut self) -> bool {
        self.config.transit_error_rate > 0.0
            && self.rng.gen_range(0.0..1.0) < self.config.transit_error_rate
    }

    /// Choose a victim index uniformly from `0..n` (PFU slots, frames).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero (no victims to choose from).
    pub fn pick(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    /// Strike a serialised bitstream image with one SEU: flip a random
    /// bit in a random static frame word. Returns the victim
    /// `(frame, word, bit)`.
    ///
    /// # Errors
    ///
    /// Propagates [`flip_static_bit`] range errors on malformed images.
    pub fn strike_image(&mut self, words: &mut [u32]) -> Result<(usize, usize, u32), FabricError> {
        let clbs = image_clbs(words)?;
        let frame = self.rng.gen_range(0..clbs);
        // Words 0..7 are the populated configuration fields; flipping a
        // reserved word would be caught structurally by the decoder
        // rather than by CRC, so aim upsets at live configuration.
        let word = self.rng.gen_range(0..7usize);
        let bit = self.rng.gen_range(0..32u32);
        flip_static_bit(words, frame, word, bit)?;
        Ok((frame, word, bit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::FabricDims;
    use crate::{compile, library};

    fn image() -> Vec<u32> {
        let netlist = library::adder32().expect("netlist");
        let compiled = compile(&netlist, FabricDims::PFU).expect("compile");
        compiled.bitstream().to_words()
    }

    #[test]
    fn crc_detects_and_localises_single_bit_flip() {
        let mut words = image();
        let crcs = frame_crcs(&words).expect("crcs");
        check_frame_crcs(&words, &crcs).expect("pristine image passes");
        flip_static_bit(&mut words, 17, 3, 9).expect("flip");
        match check_frame_crcs(&words, &crcs) {
            Err(FabricError::CrcMismatch { frame: 17, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
        // Flipping the same bit back repairs the image.
        flip_static_bit(&mut words, 17, 3, 9).expect("flip back");
        check_frame_crcs(&words, &crcs).expect("repaired image passes");
    }

    #[test]
    fn injector_is_deterministic() {
        let cfg = FaultConfig { seu_mean_cycles: 10_000, transit_error_rate: 0.25 };
        let mut a = FaultInjector::new(2003, cfg);
        let mut b = FaultInjector::new(2003, cfg);
        for _ in 0..64 {
            assert_eq!(a.next_seu_gap(), b.next_seu_gap());
            assert_eq!(a.transit_corrupts(), b.transit_corrupts());
            assert_eq!(a.pick(4), b.pick(4));
        }
        let mut other = FaultInjector::new(2004, cfg);
        let gaps_a: Vec<_> = (0..16).map(|_| FaultInjector::new(2003, cfg).next_seu_gap()).collect();
        let gaps_o: Vec<_> = (0..16).map(|_| other.next_seu_gap()).collect();
        assert_ne!(gaps_a, gaps_o, "different seeds draw different arrivals");
    }

    #[test]
    fn strike_lands_in_static_section_and_crc_catches_it() {
        let mut words = image();
        let crcs = frame_crcs(&words).expect("crcs");
        let mut inj =
            FaultInjector::new(7, FaultConfig { seu_mean_cycles: 1, transit_error_rate: 0.0 });
        let (frame, word, _bit) = inj.strike_image(&mut words).expect("strike");
        assert!(word < 7, "strikes aim at populated configuration words");
        match check_frame_crcs(&words, &crcs) {
            Err(FabricError::CrcMismatch { frame: f, .. }) => assert_eq!(f, frame),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn disabled_rates_draw_nothing() {
        let mut inj = FaultInjector::new(1, FaultConfig::default());
        assert_eq!(inj.next_seu_gap(), None);
        assert!(!inj.transit_corrupts());
    }

    fn crc32_bytes(bytes: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &byte in bytes {
            crc ^= u32::from(byte);
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
        !crc
    }

    #[test]
    fn crc32_matches_ieee_byte_definition() {
        // CRC-32/IEEE check value: crc32(b"123456789") == 0xCBF43926.
        assert_eq!(crc32_bytes(b"123456789"), 0xCBF4_3926);
        // The word-level API sees the same byte stream little-endian:
        // "1234" -> 0x34333231, "5678" -> 0x38373635.
        assert_eq!(crc32(&[0x3433_3231, 0x3837_3635]), crc32_bytes(b"12345678"));
    }
}
