//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Vec`s with lengths drawn from `len` and elements
/// from `element`.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// `Vec`s of `element` values with a length in `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.clone().sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn lengths_respect_the_range() {
        let mut rng = TestRng::seed_from_u64(5);
        let strat = vec(any::<u32>(), 1..12);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((1..12).contains(&v.len()), "len {}", v.len());
        }
    }
}
