//! Property tests over the scheduler: whatever the configuration, the
//! system must compute correct results, and management costs must obey
//! the paper's structural claims.

use proptest::prelude::*;
use proteus::scenario::Scenario;
use proteus_apps::AppKind;
use porsche::cis::DispatchMode;
use porsche::policy::PolicyKind;

fn arb_policy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::RoundRobin),
        any::<u64>().prop_map(|seed| PolicyKind::Random { seed }),
        Just(PolicyKind::Lru),
        Just(PolicyKind::SecondChance),
        Just(PolicyKind::Fifo),
    ]
}

fn arb_app() -> impl Strategy<Value = AppKind> {
    prop_oneof![Just(AppKind::Alpha), Just(AppKind::Twofish), Just(AppKind::Echo)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Correctness is scheduling-independent: any mix of quantum,
    /// policy, dispatch mode, PFU count and instance count yields the
    /// reference checksum from every process.
    #[test]
    fn results_are_schedule_independent(
        app in arb_app(),
        instances in 1usize..6,
        policy in arb_policy(),
        quantum in 20_000u64..300_000,
        pfus in 1usize..6,
        soft in any::<bool>(),
    ) {
        let mode = if soft { DispatchMode::SoftwareFallback } else { DispatchMode::HardwareOnly };
        let result = Scenario::new(app)
            .instances(instances)
            .size(32)
            .passes(4)
            .quantum(quantum)
            .policy(policy)
            .pfus(pfus)
            .mode(mode)
            .run()
            .expect("run completes");
        prop_assert!(result.all_valid(), "{:?}", result);
    }

    /// No contention below the PFU limit: N single-circuit instances on
    /// >= N PFUs never evict and load each configuration exactly once.
    #[test]
    fn no_evictions_when_everything_fits(instances in 1usize..5, extra_pfus in 0usize..3) {
        let result = Scenario::new(AppKind::Alpha)
            .instances(instances)
            .size(64)
            .passes(12)
            .quantum(10_000)
            .pfus(instances + extra_pfus)
            .run()
            .expect("run");
        prop_assert!(result.all_valid());
        prop_assert_eq!(result.stats.evictions, 0);
        prop_assert_eq!(result.stats.config_loads, instances as u64);
    }

    /// Makespan grows monotonically with the instance count (the linear
    /// region of Figure 2, then super-linear under contention).
    #[test]
    fn makespan_monotonic_in_instances(app in arb_app(), quantum in 50_000u64..200_000) {
        let mut last = 0u64;
        for n in [1usize, 2, 4, 6] {
            let result = Scenario::new(app)
                .instances(n)
                .size(32)
                .passes(6)
                .quantum(quantum)
                .run()
                .expect("run");
            prop_assert!(result.all_valid());
            prop_assert!(result.makespan > last, "n={n}: {} <= {last}", result.makespan);
            last = result.makespan;
        }
    }

    /// The split-configuration design (§4.1) never moves more bus words
    /// than the naive full-writeback alternative.
    #[test]
    fn split_config_moves_less_data(instances in 5usize..8, seed in any::<u64>()) {
        use porsche::costs::CostModel;
        let base = Scenario::new(AppKind::Alpha)
            .instances(instances)
            .size(64)
            .passes(12)
            .quantum(30_000)
            .policy(PolicyKind::Random { seed });
        let split = base.clone().run().expect("split run");
        let naive = base
            .costs(CostModel { save_full_config_on_unload: true, ..CostModel::default() })
            .run()
            .expect("naive run");
        prop_assert!(split.all_valid() && naive.all_valid());
        prop_assert!(
            split.stats.config_words_moved <= naive.stats.config_words_moved,
            "split {} > naive {}",
            split.stats.config_words_moved,
            naive.stats.config_words_moved
        );
    }

    /// Software fallback never evicts: when the concurrently-live circuit
    /// population exceeds the PFUs, the overflow defers to software
    /// instead of swapping. (The workload spans several quanta so the
    /// instances genuinely overlap.)
    #[test]
    fn software_fallback_caps_loads(instances in 5usize..8) {
        let result = Scenario::new(AppKind::Alpha)
            .instances(instances)
            .size(64)
            .passes(40)
            .quantum(10_000)
            .mode(DispatchMode::SoftwareFallback)
            .run()
            .expect("run");
        prop_assert!(result.all_valid());
        prop_assert_eq!(result.stats.evictions, 0, "{:?}", result.stats);
        prop_assert!(result.stats.software_installs >= 1, "{:?}", result.stats);
        // Loads can exceed the PFU count only when exits free PFUs; they
        // never coexist with evictions in this mode.
        prop_assert!(result.stats.config_loads >= 4, "{:?}", result.stats);
    }
}

/// Pinned corner of `results_are_schedule_independent`: the checked-in
/// regression seed shrinks to `instances = 5` — the first count that
/// overcommits the default 4-PFU array, where eviction of running
/// (possibly mid-instruction) circuits begins. Proptest shrinking drives
/// every other parameter to its lower bound, so the suspect
/// configuration is Alpha × RoundRobin × quantum 20 000 × 1 PFU ×
/// hardware dispatch; we sweep the whole shrink frontier (every app,
/// every policy, both modes, boundary quanta, 1 and 4 PFUs) so the
/// corner stays pinned whatever the original draw was.
#[test]
fn five_instances_on_overcommitted_pfus_stay_valid() {
    for app in [AppKind::Alpha, AppKind::Twofish, AppKind::Echo] {
        for policy in [
            PolicyKind::RoundRobin,
            PolicyKind::Random { seed: 0 },
            PolicyKind::Lru,
            PolicyKind::SecondChance,
            PolicyKind::Fifo,
        ] {
            for mode in [DispatchMode::HardwareOnly, DispatchMode::SoftwareFallback] {
                for (quantum, pfus) in [(20_000u64, 1usize), (20_000, 4), (299_999, 1)] {
                    let result = Scenario::new(app)
                        .instances(5)
                        .size(32)
                        .passes(4)
                        .quantum(quantum)
                        .policy(policy)
                        .pfus(pfus)
                        .mode(mode)
                        .run()
                        .expect("run completes");
                    assert!(
                        result.all_valid(),
                        "{app:?} {policy:?} {mode:?} q={quantum} pfus={pfus}: {result:?}"
                    );
                }
            }
        }
    }
}
