//! The Reconfigurable Function Unit (RFU) of the Proteus architecture.
//!
//! This is the hardware half of the paper's contribution (§4): a function
//! unit holding a set of Programmable Function Units (PFUs), a 16 × 32-bit
//! coprocessor register file, and the **dispatch mechanism** of Figure 1:
//!
//! ```text
//!  Exec (PID, CID) ──► TLB1 (CAM→RAM: tuple → PFU) ──hit──► clock PFU
//!                         │ miss
//!                         ▼
//!                      TLB2 (CAM→RAM: tuple → address) ──hit──► branch+link
//!                         │ miss
//!                         ▼
//!                  custom-instruction fault → operating system
//! ```
//!
//! Faithfulness notes (all verified by tests):
//!
//! * TLB keys are `(PID, CID)` tuples, so nothing is flushed on a context
//!   switch, and several tuples may map to one PFU (circuit sharing, §4.2).
//! * Each PFU has a 1-bit status register feeding `done` back into `init`
//!   (§4.4): an interrupted multi-cycle instruction resumes transparently
//!   when reissued with `init` low. Status registers reset to 1.
//! * Each PFU has a completion counter, incremented when an instruction
//!   *completes* (not when it issues), readable and clearable by the OS
//!   for LRU-style replacement (§4.5).
//! * The operand block (§4.3) latches the two source operands, the
//!   destination register and the return address on software dispatch;
//!   `ldop`/`stres`/`retsd` use it, and the OS can save/restore it with
//!   `mcro`/`mrco`.
//!
//! [`Rfu`] implements [`proteus_cpu::Coprocessor`], so plugging the unit
//! into the core is one line. Circuits implement [`PfuCircuit`]; both
//! behavioral models ([`behavioral`]) and real gate-level bitstream-backed
//! circuits ([`NetlistCircuit`]) are provided.

pub mod behavioral;
pub mod cam;
pub mod circuit;
pub mod counters;
pub mod pfu;
pub mod regfile;
pub mod unit;

pub use cam::{Cam, TupleKey};
pub use circuit::{CircuitClock, CircuitState, NetlistCircuit, PfuCircuit};
pub use counters::UsageCounters;
pub use pfu::{PfuArray, PfuHealth, PfuIndex};
pub use regfile::RegFile;
pub use unit::{DispatchCounters, FaultInfo, Rfu, RfuConfig};
