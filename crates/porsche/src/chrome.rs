//! Chrome trace-event JSON exporter for the probe timeline.
//!
//! Renders a recorded [`crate::trace::Trace`] snapshot as the Trace
//! Event Format consumed by `chrome://tracing` / Perfetto's
//! `trace_viewer`: one track per simulated process (from each event's
//! [`Tag`]), plus one track per PFU slot reconstructing circuit
//! residency and quarantine windows from the
//! [`Event::ConfigLoad`]/[`Event::Eviction`]/[`Event::StateSwap`]/
//! [`Event::Quarantine`] markers. Simulated cycles are written into the
//! `ts`/`dur` microsecond fields unscaled — the viewer's time axis
//! reads directly in cycles.
//!
//! Hand-rolled JSON, like every other exporter in the workspace: the
//! simulator carries no serialization dependency.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::probe::{Event, Tag};
use crate::process::Pid;

/// Synthetic Chrome "process" id hosting the per-PFU tracks. Simulated
/// pids are small (they start at 1), so this cannot collide.
const RFU_TRACK: u64 = 1_000_000;

fn push_complete(
    out: &mut String,
    name: &str,
    cat: &str,
    ts: u64,
    dur: u64,
    (pid, tid): (u64, u64),
    args: &str,
) {
    let _ = write!(
        out,
        ",\n{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\
         \"pid\":{pid},\"tid\":{tid},\"args\":{{{args}}}}}"
    );
}

fn push_instant(out: &mut String, name: &str, cat: &str, ts: u64, pid: u64, tid: u64, args: &str) {
    let _ = write!(
        out,
        ",\n{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\
         \"pid\":{pid},\"tid\":{tid},\"args\":{{{args}}}}}"
    );
}

fn push_meta(out: &mut String, meta: &str, pid: u64, tid: u64, value: &str) {
    let _ = write!(
        out,
        ",\n{{\"name\":\"{meta}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
         \"args\":{{\"name\":\"{value}\"}}}}"
    );
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a trace snapshot as one Chrome trace-event JSON document.
///
/// `events` is a [`crate::trace::Trace::snapshot`] (oldest first),
/// `dropped` the ring's discard count — recorded in `otherData` so a
/// truncated timeline is never silently presented as complete — and
/// `total_cycles` the run's final clock, used to close residency
/// windows still open at the end of the run.
pub fn chrome_trace_json(
    scenario: &str,
    events: &[(u64, Tag, Event)],
    dropped: u64,
    total_cycles: u64,
) -> String {
    let mut body = String::new();
    let window_start = events.first().map_or(0, |&(at, _, _)| at);

    // Which simulated processes and PFU slots need tracks.
    let mut pids: BTreeSet<Pid> = BTreeSet::new();
    let mut pfus: BTreeSet<usize> = BTreeSet::new();
    for &(_, tag, ref event) in events {
        pids.insert(tag.pid);
        match *event {
            Event::ConfigLoad { pfu, .. }
            | Event::Eviction { pfu, .. }
            | Event::StateSwap { pfu, .. }
            | Event::SeuStrike { pfu }
            | Event::PfuFault { pfu, .. }
            | Event::ScrubCheck { pfu, .. }
            | Event::RecoveryRetry { pfu, .. }
            | Event::SoftwareFailover { pfu, .. }
            | Event::Quarantine { pfu } => {
                pfus.insert(pfu);
            }
            _ => {}
        }
    }

    // Metadata: track names.
    for &pid in &pids {
        let name = if pid == 0 { "kernel".to_string() } else { format!("pid {pid}") };
        push_meta(&mut body, "process_name", u64::from(pid), 0, &name);
    }
    if !pfus.is_empty() {
        push_meta(&mut body, "process_name", RFU_TRACK, 0, "RFU");
        for &pfu in &pfus {
            push_meta(&mut body, "thread_name", RFU_TRACK, pfu as u64, &format!("PFU {pfu}"));
        }
    }

    // Per-PFU residency/quarantine reconstruction state: what occupies
    // each slot and since when.
    let mut resident: Vec<(usize, TagKeyed)> = Vec::new();
    struct TagKeyed {
        label: String,
        since: u64,
    }
    let close_residency = |body: &mut String, resident: &mut Vec<(usize, TagKeyed)>,
                           pfu: usize, at: u64| {
        if let Some(i) = resident.iter().position(|(p, _)| *p == pfu) {
            let (_, r) = resident.swap_remove(i);
            push_complete(
                body,
                &r.label,
                "resident",
                r.since,
                at.saturating_sub(r.since),
                (RFU_TRACK, pfu as u64),
                "",
            );
        }
    };

    for &(at, tag, ref event) in events {
        let pid = u64::from(tag.pid);
        let site = tag.callsite.name();
        let args = format!("\"callsite\":\"{site}\"");
        match *event {
            // Cost-carrying work: complete ("X") slices on the
            // beneficiary process's track.
            Event::ContextSwitch { cost, .. } => {
                push_complete(&mut body, "context_switch", site, at, cost, (pid, 0), &args);
            }
            Event::TimerTick { cost, .. } => {
                push_complete(&mut body, "timer_tick", site, at, cost, (pid, 0), &args);
            }
            Event::Fault { cost, .. } => {
                push_complete(&mut body, "fault", site, at, cost, (pid, 0), &args);
            }
            Event::TlbProgram { soft, cost, .. } => {
                let name = if soft { "tlb_program_sw" } else { "tlb_program" };
                push_complete(&mut body, name, site, at, cost, (pid, 0), &args);
            }
            Event::BusTransfer { words, cost } => {
                let args = format!("{args},\"words\":{words}");
                push_complete(&mut body, "bus_transfer", site, at, cost, (pid, 0), &args);
            }
            Event::Syscall { number, cost, .. } => {
                let args = format!("{args},\"number\":{number}");
                push_complete(&mut body, "syscall", site, at, cost, (pid, 0), &args);
            }
            // Compute events are stamped at span end; rewind so the
            // slice covers the cycles it accounts for.
            Event::Compute { user, custom, soft, .. } => {
                let span = user + custom + soft;
                let args = format!("{args},\"user\":{user},\"custom\":{custom},\"soft\":{soft}");
                push_complete(
                    &mut body,
                    "compute",
                    site,
                    at.saturating_sub(span),
                    span,
                    (pid, 0),
                    &args,
                );
            }
            Event::Idle { cycles } => {
                push_complete(&mut body, "idle", site, at, cycles, (pid, 0), &args);
            }
            Event::PfuFault { pfu, kind, cost, .. } => {
                let args = format!("{args},\"pfu\":{pfu},\"fault\":\"{}\"", kind.name());
                push_complete(&mut body, "pfu_fault", site, at, cost, (pid, 0), &args);
                push_instant(&mut body, "pfu_fault", "fault", at, RFU_TRACK, pfu as u64, "");
            }
            Event::ScrubCheck { pfu, corrupt, cost } => {
                let args = format!("{args},\"pfu\":{pfu},\"corrupt\":{corrupt}");
                push_complete(&mut body, "scrub_check", site, at, cost, (pid, 0), &args);
            }
            Event::RecoveryRetry { pfu, attempt, cost, .. } => {
                let args = format!("{args},\"pfu\":{pfu},\"attempt\":{attempt}");
                push_complete(&mut body, "recovery_retry", site, at, cost, (pid, 0), &args);
            }
            Event::SoftwareFailover { pfu, cost, .. } => {
                let args = format!("{args},\"pfu\":{pfu}");
                push_complete(&mut body, "software_failover", site, at, cost, (pid, 0), &args);
            }
            // Zero-cost lifecycle markers: instants on the process track.
            Event::Spawn { .. } => {
                push_instant(&mut body, "spawn", site, at, pid, 0, &args);
            }
            Event::Exit { code, .. } => {
                let args = format!("{args},\"code\":{code}");
                push_instant(&mut body, "exit", site, at, pid, 0, &args);
            }
            Event::Kill { .. } => {
                push_instant(&mut body, "kill", site, at, pid, 0, &args);
            }
            Event::MappingRepair { .. } => {
                push_instant(&mut body, "mapping_repair", site, at, pid, 0, &args);
            }
            Event::SoftwareInstall { .. } => {
                push_instant(&mut body, "software_install", site, at, pid, 0, &args);
            }
            Event::SeuStrike { pfu } => {
                push_instant(&mut body, "seu_strike", "fault", at, RFU_TRACK, pfu as u64, "");
            }
            // Residency bookkeeping: loads open a window on the PFU
            // track, evictions/swaps close it. A window whose opening
            // fell off the ring buffer starts at the retained window's
            // first timestamp.
            Event::ConfigLoad { key, pfu } => {
                close_residency(&mut body, &mut resident, pfu, at);
                resident.push((
                    pfu,
                    TagKeyed { label: format!("pid{} cid{}", key.pid, key.cid), since: at },
                ));
            }
            Event::Eviction { pfu, .. } => {
                if !resident.iter().any(|(p, _)| *p == pfu) {
                    resident.push((
                        pfu,
                        TagKeyed { label: "resident (pre-window)".to_string(), since: window_start },
                    ));
                }
                close_residency(&mut body, &mut resident, pfu, at);
            }
            Event::StateSwap { key, pfu } => {
                close_residency(&mut body, &mut resident, pfu, at);
                resident.push((
                    pfu,
                    TagKeyed { label: format!("pid{} cid{}", key.pid, key.cid), since: at },
                ));
            }
            Event::Quarantine { pfu } => {
                close_residency(&mut body, &mut resident, pfu, at);
                push_complete(
                    &mut body,
                    "quarantined",
                    "fault",
                    at,
                    total_cycles.saturating_sub(at),
                    (RFU_TRACK, pfu as u64),
                    "",
                );
            }
        }
    }
    // Close residency windows still open at the end of the run.
    resident.sort_by_key(|(pfu, _)| *pfu);
    for (pfu, r) in resident {
        push_complete(
            &mut body,
            &r.label,
            "resident",
            r.since,
            total_cycles.saturating_sub(r.since),
            (RFU_TRACK, pfu as u64),
            "",
        );
    }

    let events_json = body.strip_prefix(',').unwrap_or(&body);
    format!(
        "{{\"traceEvents\":[{events_json}\n],\"displayTimeUnit\":\"ms\",\
         \"otherData\":{{\"scenario\":\"{}\",\"clock\":\"simulated cycles (unscaled in ts/dur)\",\
         \"total_cycles\":{total_cycles},\"dropped_events\":{dropped}}}}}",
        escape(scenario)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::Callsite;
    use proteus_rfu::TupleKey;

    #[test]
    fn exporter_builds_process_and_pfu_tracks() {
        let key = TupleKey::new(1, 0);
        let reconf = Tag::new(1, Callsite::Reconfiguration);
        let events = vec![
            (0, Tag::new(1, Callsite::ContextSwitch), Event::Spawn { pid: 1 }),
            (10, Tag::new(1, Callsite::TlbMiss), Event::Fault { key, cost: 120 }),
            (10, reconf, Event::ConfigLoad { key, pfu: 0 }),
            (10, reconf, Event::BusTransfer { words: 100, cost: 164 }),
            (500, Tag::new(1, Callsite::Compute), Event::Compute {
                pid: 1,
                user: 300,
                custom: 50,
                soft: 0,
                hw_dispatches: 2,
                sw_dispatches: 0,
            }),
            (600, reconf, Event::Eviction { key, pfu: 0 }),
        ];
        let json = chrome_trace_json("demo", &events, 3, 700);
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.ends_with('}'), "{json}");
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"PFU 0\""));
        // The residency window spans load -> eviction.
        assert!(
            json.contains("\"name\":\"pid1 cid0\",\"cat\":\"resident\",\"ph\":\"X\",\"ts\":10,\"dur\":590"),
            "{json}"
        );
        // The compute slice is rewound to cover its span.
        assert!(json.contains("\"name\":\"compute\",\"cat\":\"compute\",\"ph\":\"X\",\"ts\":150,\"dur\":350"), "{json}");
        assert!(json.contains("\"dropped_events\":3"));
        // Balanced braces => structurally sound JSON (no parser in the
        // workspace; the schema sanity check lives in integration tests).
        let depth = json.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }

    #[test]
    fn quarantine_and_unclosed_residency_extend_to_run_end() {
        let key = TupleKey::new(2, 1);
        let rungs = Tag::new(2, Callsite::FaultRungs);
        let events = vec![
            (5, Tag::new(2, Callsite::Reconfiguration), Event::ConfigLoad { key, pfu: 1 }),
            (50, rungs, Event::Quarantine { pfu: 1 }),
            (60, Tag::new(2, Callsite::Reconfiguration), Event::ConfigLoad { key, pfu: 2 }),
        ];
        let json = chrome_trace_json("q", &events, 0, 100);
        assert!(json.contains("\"name\":\"quarantined\",\"cat\":\"fault\",\"ph\":\"X\",\"ts\":50,\"dur\":50"), "{json}");
        assert!(json.contains("\"ts\":60,\"dur\":40"), "open residency closes at run end: {json}");
    }
}
