//! Offline stand-in for the subset of the [`criterion`] benchmark
//! harness this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small wall-clock harness with the same API surface:
//! [`Criterion`], [`BenchmarkId`], benchmark groups with
//! `sample_size` / `warm_up_time` / `measurement_time`, `Bencher::iter`
//! and the [`criterion_group!`] / [`criterion_main!`] macros. It
//! measures honestly (median of timed samples after a warm-up) but does
//! no statistical analysis, HTML reports or comparison against saved
//! baselines.
//!
//! [`criterion`]: https://crates.io/crates/criterion

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a value or the work behind it.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// `function/parameter` naming.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: function.into(), parameter: Some(parameter.to_string()) }
    }

    /// Bare `parameter` naming.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: String::new(), parameter: Some(parameter.to_string()) }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { function: name.to_string(), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { function: name, parameter: None }
    }
}

/// Timing configuration shared by [`Criterion`] and groups.
#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(500),
        }
    }
}

/// The benchmark harness.
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Untimed warm-up budget per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Timed measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// CLI compatibility shim: parses nothing, returns `self`.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), config: self.config.clone(), _parent: self }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let config = self.config.clone();
        run_benchmark(&id.into().render(), &config, f);
        self
    }
}

/// A named group of benchmarks with its own timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Untimed warm-up budget per benchmark in this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Timed measurement budget per benchmark in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().render());
        run_benchmark(&full, &self.config, f);
        self
    }

    /// Finish the group (upstream flushes reports here; a no-op).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    config: Config,
}

impl Bencher {
    /// Measure the routine: warm up, then record timed samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        let mut warm_iters = 0u64;
        while Instant::now() < warm_deadline {
            black_box(routine());
            warm_iters += 1;
        }
        // Budget the measurement phase over the configured sample count,
        // batching iterations so fast routines get stable numbers.
        let per_sample =
            self.config.measurement_time.max(Duration::from_millis(1)) / self.config.sample_size as u32;
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            let mut iters = 0u64;
            loop {
                black_box(routine());
                iters += 1;
                let elapsed = start.elapsed();
                if elapsed >= per_sample || (warm_iters == 0 && iters >= 1) {
                    self.samples.push(elapsed / iters as u32);
                    break;
                }
            }
        }
    }
}

fn run_benchmark<F>(name: &str, config: &Config, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher { samples: Vec::new(), config: config.clone() };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<60} (no samples)");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let (lo, hi) = (bencher.samples[0], bencher.samples[bencher.samples.len() - 1]);
    println!(
        "{name:<60} time: [{} {} {}]",
        format_duration(lo),
        format_duration(median),
        format_duration(hi)
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(3));
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_api_matches_usage() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        group.bench_function(BenchmarkId::new("f", 4), |b| b.iter(|| 2 + 2));
        group.finish();
    }
}
