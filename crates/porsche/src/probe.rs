//! The unified instrumentation bus.
//!
//! Every observable management action — scheduling, faults, TLB
//! programming, configuration-bus transfers, executed compute spans,
//! idle gaps — is emitted exactly once, *at the point of action*, as a
//! typed [`Event`]. Consumers ([`KernelStats`], [`Trace`],
//! [`CycleLedger`], or any custom [`EventSink`]) are pure folds over
//! that one stream: no counter is hand-bumped anywhere else, and no
//! event is reconstructed after the fact by diffing snapshots.
//!
//! Cost-carrying events satisfy a conservation law the integration
//! tests pin down: over a whole run, the sum of every `cost` (plus the
//! compute and idle spans) equals the simulated clock, so
//! [`CycleLedger::total`] reproduces `cpu.cycles()` exactly and each
//! cycle lands in exactly one category — the §5.1.3 "where did the time
//! go" breakdown the paper argues from.
//!
//! Every emission additionally carries a [`Tag`] — `(pid, callsite)` —
//! naming the process the work was done *for* and the kernel code path
//! that did it. The [`AttributedLedger`] folds the same stream into
//! per-process × per-callsite × category cycle matrices whose refold
//! reproduces the global [`CycleLedger`] exactly (conservation survives
//! attribution), which is what the flamegraph and Chrome-trace
//! exporters are built on.

use std::collections::BTreeMap;
use std::fmt;

use proteus_rfu::TupleKey;

use crate::process::Pid;
use crate::stats::KernelStats;
use crate::trace::Trace;

/// One instrumentation event. Variants that consume simulated time
/// carry the cycles charged (`cost` or explicit span fields); the rest
/// are zero-cost markers that only order the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A process was created.
    Spawn {
        /// New process.
        pid: Pid,
    },
    /// The CPU switched from one process to another.
    ContextSwitch {
        /// Previously running process (`None` right after a terminate).
        from: Option<Pid>,
        /// Now-running process.
        to: Pid,
        /// Cycles charged for the switch.
        cost: u64,
    },
    /// The quantum expired with no other runnable process.
    TimerTick {
        /// The process that keeps running.
        pid: Pid,
        /// Cycles charged to acknowledge the timer.
        cost: u64,
    },
    /// A custom-instruction fault was taken (every fault, whatever the
    /// resolution).
    Fault {
        /// The faulting tuple.
        key: TupleKey,
        /// Handler entry/exit cycles.
        cost: u64,
    },
    /// The fault was a mapping fault: the circuit (or its software
    /// route) was still installed and only a TLB entry is re-programmed.
    MappingRepair {
        /// The repaired tuple.
        key: TupleKey,
    },
    /// A dispatch-TLB entry was programmed.
    TlbProgram {
        /// The tuple mapped.
        key: TupleKey,
        /// `true` for TLB2 (software dispatch), `false` for TLB1.
        soft: bool,
        /// Whether a resident entry was evicted to make the slot.
        evicted: bool,
        /// Cycles charged for the programming.
        cost: u64,
    },
    /// A full configuration was loaded.
    ConfigLoad {
        /// The tuple now resident.
        key: TupleKey,
        /// The PFU slot the configuration landed in.
        pfu: usize,
    },
    /// A resident circuit was evicted to make room.
    Eviction {
        /// The tuple whose circuit was swapped out.
        key: TupleKey,
        /// The PFU slot vacated.
        pfu: usize,
    },
    /// A shared configuration changed hands via a state-frame swap.
    StateSwap {
        /// The tuple now owning the shared PFU.
        key: TupleKey,
        /// The shared PFU slot.
        pfu: usize,
    },
    /// The fault was resolved by mapping the software alternative.
    SoftwareInstall {
        /// The tuple now dispatching to software.
        key: TupleKey,
    },
    /// Words moved over the configuration bus (static frames, state
    /// frames, or both), including the per-operation controller
    /// overhead in `cost`.
    BusTransfer {
        /// 32-bit words transferred.
        words: u64,
        /// Cycles the bus operation took.
        cost: u64,
    },
    /// A system call was serviced.
    Syscall {
        /// Calling process.
        pid: Pid,
        /// SWI number.
        number: u32,
        /// Kernel entry/exit cycles.
        cost: u64,
    },
    /// A span of guest execution completed (emitted when control
    /// returns to the kernel), split by where the cycles went.
    Compute {
        /// The process that ran.
        pid: Pid,
        /// Plain core instructions.
        user: u64,
        /// Cycles clocking PFU circuits (custom-instruction execute).
        custom: u64,
        /// Cycles in software-dispatch handlers (dispatch branch,
        /// handler body, `retsd`) — including custom issues made while
        /// inside a handler.
        soft: u64,
        /// Custom instructions dispatched to hardware in this span.
        hw_dispatches: u64,
        /// Custom instructions dispatched to software in this span.
        sw_dispatches: u64,
    },
    /// The machine sat idle waiting for external work to arrive.
    Idle {
        /// Idle cycles.
        cycles: u64,
    },
    /// A process exited.
    Exit {
        /// The process.
        pid: Pid,
        /// Exit code.
        code: u32,
    },
    /// A process was killed by the kernel.
    Kill {
        /// The process.
        pid: Pid,
    },
    /// A single-event upset struck a PFU's configuration SRAM
    /// (zero-cost environmental marker; detection and repair are
    /// charged by their own events).
    SeuStrike {
        /// The struck PFU slot.
        pfu: usize,
    },
    /// A PFU fault was detected (watchdog trip). `cost` carries the
    /// cycles the slot burned before detection plus the readback check —
    /// cycles the faulting issue consumed but never reported through
    /// the coprocessor port.
    PfuFault {
        /// The faulting tuple.
        key: TupleKey,
        /// The faulty PFU slot.
        pfu: usize,
        /// What the readback found.
        kind: PfuFaultKind,
        /// Detection cycles (burned clocks + CRC readback).
        cost: u64,
    },
    /// A CRC readback of a resident configuration (periodic scrub, or
    /// verification of a just-transferred bitstream).
    ScrubCheck {
        /// The checked PFU slot.
        pfu: usize,
        /// Whether the frames failed their CRCs.
        corrupt: bool,
        /// Readback/compare cycles.
        cost: u64,
    },
    /// A recovery reconfiguration: the configuration was pushed across
    /// the bus again (SEU repair, transit-error retry, or blind retry
    /// of an unresponsive slot), with backoff included in `cost`.
    RecoveryRetry {
        /// The tuple being repaired.
        key: TupleKey,
        /// The target PFU slot.
        pfu: usize,
        /// Retry attempt number (1-based) since the last completion.
        attempt: u32,
        /// Words re-transferred.
        words: u64,
        /// Bus + backoff cycles.
        cost: u64,
    },
    /// Recovery fell back to the registered software alternative: the
    /// tuple now dispatches through TLB2 (the paper's §3 graceful-
    /// degradation path). `cost` covers the TLB reprogramming.
    SoftwareFailover {
        /// The tuple rerouted to software.
        key: TupleKey,
        /// The PFU abandoned by the failover.
        pfu: usize,
        /// TLB reprogramming cycles.
        cost: u64,
    },
    /// A persistently-faulty PFU was quarantined: placement and
    /// replacement stop allocating it (zero-cost marker; any relocation
    /// load is charged by the normal configuration-bus events).
    Quarantine {
        /// The quarantined PFU slot.
        pfu: usize,
    },
}

/// What a PFU fault detection attributed the failure to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PfuFaultKind {
    /// The slot clocked past its watchdog allowance without `done` and
    /// readback found the static frames intact (hung or stuck circuit).
    Watchdog,
    /// Readback found corrupt static frames (an SEU hit the resident
    /// configuration).
    CrcMismatch,
}

impl PfuFaultKind {
    /// Stable lower-case name (traces, JSON).
    pub fn name(self) -> &'static str {
        match self {
            PfuFaultKind::Watchdog => "watchdog",
            PfuFaultKind::CrcMismatch => "crc_mismatch",
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Spawn { pid } => write!(f, "spawn pid={pid}"),
            Event::ContextSwitch { from: Some(p), to, .. } => write!(f, "switch {p} -> {to}"),
            Event::ContextSwitch { from: None, to, .. } => write!(f, "dispatch -> {to}"),
            Event::TimerTick { pid, .. } => write!(f, "tick pid={pid}"),
            Event::Fault { key, .. } => write!(f, "fault ({}, {})", key.pid, key.cid),
            Event::MappingRepair { key } => write!(f, "tlb-repair ({}, {})", key.pid, key.cid),
            Event::TlbProgram { key, soft, evicted, .. } => write!(
                f,
                "tlb-program{} ({}, {}){}",
                if *soft { "[sw]" } else { "" },
                key.pid,
                key.cid,
                if *evicted { " +evict" } else { "" }
            ),
            Event::ConfigLoad { key, pfu } => {
                write!(f, "load ({}, {}) -> pfu={pfu}", key.pid, key.cid)
            }
            Event::Eviction { key, pfu } => {
                write!(f, "evict ({}, {}) <- pfu={pfu}", key.pid, key.cid)
            }
            Event::StateSwap { key, pfu } => {
                write!(f, "state-swap ({}, {}) pfu={pfu}", key.pid, key.cid)
            }
            Event::SoftwareInstall { key } => write!(f, "soft-map ({}, {})", key.pid, key.cid),
            Event::BusTransfer { words, .. } => write!(f, "bus {words}w"),
            Event::Syscall { pid, number, .. } => write!(f, "swi pid={pid} #{number}"),
            Event::Compute { pid, user, custom, soft, .. } => {
                write!(f, "compute pid={pid} user={user} custom={custom} soft={soft}")
            }
            Event::Idle { cycles } => write!(f, "idle {cycles}"),
            Event::Exit { pid, code } => write!(f, "exit pid={pid} code={code}"),
            Event::Kill { pid } => write!(f, "kill pid={pid}"),
            Event::SeuStrike { pfu } => write!(f, "seu pfu={pfu}"),
            Event::PfuFault { key, pfu, kind, .. } => {
                write!(f, "pfu-fault[{}] pfu={pfu} ({}, {})", kind.name(), key.pid, key.cid)
            }
            Event::ScrubCheck { pfu, corrupt, .. } => {
                write!(f, "scrub pfu={pfu}{}", if *corrupt { " corrupt" } else { " clean" })
            }
            Event::RecoveryRetry { key, pfu, attempt, .. } => {
                write!(f, "retry#{attempt} pfu={pfu} ({}, {})", key.pid, key.cid)
            }
            Event::SoftwareFailover { key, pfu, .. } => {
                write!(f, "failover pfu={pfu} ({}, {})", key.pid, key.cid)
            }
            Event::Quarantine { pfu } => write!(f, "quarantine pfu={pfu}"),
        }
    }
}

impl Event {
    /// Render as one JSON object (hand-rolled; the workspace carries no
    /// serialization dependency) for the `repro --trace` timeline dump.
    /// `tag` records the attribution: `by` is the process the work was
    /// done for (0 = kernel housekeeping) and `callsite` the emitting
    /// kernel path.
    pub fn to_json(&self, at: u64, tag: Tag) -> String {
        fn key_fields(key: &TupleKey) -> String {
            format!("\"pid\":{},\"cid\":{}", key.pid, key.cid)
        }
        let body = match self {
            Event::Spawn { pid } => format!("\"kind\":\"spawn\",\"pid\":{pid}"),
            Event::ContextSwitch { from, to, cost } => {
                let from = from.map_or("null".to_string(), |p| p.to_string());
                format!("\"kind\":\"context_switch\",\"from\":{from},\"to\":{to},\"cost\":{cost}")
            }
            Event::TimerTick { pid, cost } => {
                format!("\"kind\":\"timer_tick\",\"pid\":{pid},\"cost\":{cost}")
            }
            Event::Fault { key, cost } => {
                format!("\"kind\":\"fault\",{},\"cost\":{cost}", key_fields(key))
            }
            Event::MappingRepair { key } => {
                format!("\"kind\":\"mapping_repair\",{}", key_fields(key))
            }
            Event::TlbProgram { key, soft, evicted, cost } => format!(
                "\"kind\":\"tlb_program\",{},\"soft\":{soft},\"evicted\":{evicted},\"cost\":{cost}",
                key_fields(key)
            ),
            Event::ConfigLoad { key, pfu } => {
                format!("\"kind\":\"config_load\",{},\"pfu\":{pfu}", key_fields(key))
            }
            Event::Eviction { key, pfu } => {
                format!("\"kind\":\"eviction\",{},\"pfu\":{pfu}", key_fields(key))
            }
            Event::StateSwap { key, pfu } => {
                format!("\"kind\":\"state_swap\",{},\"pfu\":{pfu}", key_fields(key))
            }
            Event::SoftwareInstall { key } => {
                format!("\"kind\":\"software_install\",{}", key_fields(key))
            }
            Event::BusTransfer { words, cost } => {
                format!("\"kind\":\"bus_transfer\",\"words\":{words},\"cost\":{cost}")
            }
            Event::Syscall { pid, number, cost } => {
                format!("\"kind\":\"syscall\",\"pid\":{pid},\"number\":{number},\"cost\":{cost}")
            }
            Event::Compute { pid, user, custom, soft, hw_dispatches, sw_dispatches } => format!(
                "\"kind\":\"compute\",\"pid\":{pid},\"user\":{user},\"custom\":{custom},\
                 \"soft\":{soft},\"hw_dispatches\":{hw_dispatches},\"sw_dispatches\":{sw_dispatches}"
            ),
            Event::Idle { cycles } => format!("\"kind\":\"idle\",\"cycles\":{cycles}"),
            Event::Exit { pid, code } => format!("\"kind\":\"exit\",\"pid\":{pid},\"code\":{code}"),
            Event::Kill { pid } => format!("\"kind\":\"kill\",\"pid\":{pid}"),
            Event::SeuStrike { pfu } => format!("\"kind\":\"seu_strike\",\"pfu\":{pfu}"),
            Event::PfuFault { key, pfu, kind, cost } => format!(
                "\"kind\":\"pfu_fault\",{},\"pfu\":{pfu},\"fault\":\"{}\",\"cost\":{cost}",
                key_fields(key),
                kind.name()
            ),
            Event::ScrubCheck { pfu, corrupt, cost } => format!(
                "\"kind\":\"scrub_check\",\"pfu\":{pfu},\"corrupt\":{corrupt},\"cost\":{cost}"
            ),
            Event::RecoveryRetry { key, pfu, attempt, words, cost } => format!(
                "\"kind\":\"recovery_retry\",{},\"pfu\":{pfu},\"attempt\":{attempt},\
                 \"words\":{words},\"cost\":{cost}",
                key_fields(key)
            ),
            Event::SoftwareFailover { key, pfu, cost } => format!(
                "\"kind\":\"software_failover\",{},\"pfu\":{pfu},\"cost\":{cost}",
                key_fields(key)
            ),
            Event::Quarantine { pfu } => format!("\"kind\":\"quarantine\",\"pfu\":{pfu}"),
        };
        format!(
            "{{\"cycle\":{at},\"by\":{},\"callsite\":\"{}\",{body}}}",
            tag.pid,
            tag.callsite.name()
        )
    }
}

/// The kernel code path an event was emitted from — the second axis of
/// the attribution matrix (the first is the process). The taxonomy is
/// deliberately small and static: one variant per emit site family, so
/// a flamegraph frame names *why* the kernel was running, not just what
/// it cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Callsite {
    /// Guest execution (user instructions and the dispatch split made
    /// by [`AttributedLedger`]: custom-execute under
    /// [`Callsite::HwDispatch`], handler cycles under
    /// [`Callsite::SwDispatch`]).
    Compute,
    /// Custom instructions executed on PFU hardware.
    HwDispatch,
    /// The software-dispatch route: handler execution and the TLB2
    /// programming that installs it.
    SwDispatch,
    /// The custom-instruction fault handler's entry and mapping-fault
    /// repairs (§4.2's fast path).
    TlbMiss,
    /// Full configuration traffic: placement loads, evictions,
    /// state-frame swaps and the TLB programming that publishes them.
    Reconfiguration,
    /// Scheduler work: context switches, timer ticks, process lifecycle
    /// markers.
    ContextSwitch,
    /// System-call entry/exit.
    Syscall,
    /// Periodic configuration scrub: CRC sweeps and in-place repairs.
    Scrub,
    /// The watchdog-trip recovery ladder (retry → failover →
    /// quarantine) and transit verification of fresh loads.
    FaultRungs,
    /// The machine sat idle.
    Idle,
}

impl Callsite {
    /// Every callsite, in the stable order used by exports.
    pub const ALL: [Callsite; 10] = [
        Callsite::Compute,
        Callsite::HwDispatch,
        Callsite::SwDispatch,
        Callsite::TlbMiss,
        Callsite::Reconfiguration,
        Callsite::ContextSwitch,
        Callsite::Syscall,
        Callsite::Scrub,
        Callsite::FaultRungs,
        Callsite::Idle,
    ];

    /// Stable lower-case name (folded stacks, JSON).
    pub fn name(self) -> &'static str {
        match self {
            Callsite::Compute => "compute",
            Callsite::HwDispatch => "hw_dispatch",
            Callsite::SwDispatch => "sw_dispatch",
            Callsite::TlbMiss => "tlb_miss",
            Callsite::Reconfiguration => "reconfig",
            Callsite::ContextSwitch => "context_switch",
            Callsite::Syscall => "syscall",
            Callsite::Scrub => "scrub",
            Callsite::FaultRungs => "fault_rungs",
            Callsite::Idle => "idle",
        }
    }
}

/// The attribution stamp every emission carries: which process the work
/// was done *for* (`pid` 0 = kernel housekeeping not chargeable to any
/// process, e.g. idle) and which kernel path did it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tag {
    /// Beneficiary process (0 = none/kernel).
    pub pid: Pid,
    /// Emitting kernel path.
    pub callsite: Callsite,
}

impl Tag {
    /// A tag charging `callsite` work to process `pid`.
    pub fn new(pid: Pid, callsite: Callsite) -> Self {
        Self { pid, callsite }
    }

    /// Kernel housekeeping not chargeable to any process (pid 0).
    pub fn kernel(callsite: Callsite) -> Self {
        Self { pid: 0, callsite }
    }
}

/// A consumer of the event stream. Sinks must be pure folds: they may
/// accumulate state from the events they see but must not feed back
/// into the simulation.
pub trait EventSink: Send {
    /// Observe one event, stamped at simulated cycle `at` and
    /// attributed by `tag`.
    fn on_event(&mut self, at: u64, tag: Tag, event: &Event);
}

/// Where every simulated cycle went — the paper's §5.1.3 discussion as
/// an invariant: the categories partition the clock, so
/// [`CycleLedger::total`] equals total simulated cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleLedger {
    /// Plain core instructions in user code.
    pub user_compute: u64,
    /// Cycles clocking PFU circuits (custom-instruction execute).
    pub custom_execute: u64,
    /// Cycles in software-dispatch handlers.
    pub soft_dispatch: u64,
    /// Context switches and timer ticks.
    pub context_switch: u64,
    /// Custom-instruction fault handler entry/exit.
    pub fault_handling: u64,
    /// Dispatch-TLB programming.
    pub tlb_programming: u64,
    /// Configuration-bus transfers (loads, unload write-backs, state
    /// swaps, including controller overhead).
    pub config_bus: u64,
    /// System-call entry/exit.
    pub syscall: u64,
    /// Fault detection: cycles burned by a slot before its watchdog
    /// tripped, plus CRC readback/scrub checks.
    pub fault_detection: u64,
    /// Fault recovery: retry reconfigurations (with backoff) and
    /// software-failover TLB reprogramming.
    pub fault_recovery: u64,
    /// Idle waiting for work.
    pub idle: u64,
}

impl CycleLedger {
    /// Category names, in the order [`CycleLedger::values`] returns them
    /// (also the CSV column order).
    pub const CATEGORIES: [&'static str; 11] = [
        "user_compute",
        "custom_execute",
        "soft_dispatch",
        "context_switch",
        "fault_handling",
        "tlb_programming",
        "config_bus",
        "syscall",
        "fault_detection",
        "fault_recovery",
        "idle",
    ];

    /// Category values in [`CycleLedger::CATEGORIES`] order.
    pub fn values(&self) -> [u64; 11] {
        [
            self.user_compute,
            self.custom_execute,
            self.soft_dispatch,
            self.context_switch,
            self.fault_handling,
            self.tlb_programming,
            self.config_bus,
            self.syscall,
            self.fault_detection,
            self.fault_recovery,
            self.idle,
        ]
    }

    /// Total attributed cycles. Equals the simulated clock at the end of
    /// a run (the conservation property).
    pub fn total(&self) -> u64 {
        self.values().iter().sum()
    }

    /// Sum of the management-only categories (everything except user
    /// compute, custom execute and idle).
    pub fn management(&self) -> u64 {
        self.soft_dispatch
            + self.context_switch
            + self.fault_handling
            + self.tlb_programming
            + self.config_bus
            + self.syscall
            + self.fault_detection
            + self.fault_recovery
    }

    /// Merge another ledger into this one.
    pub fn absorb(&mut self, other: &CycleLedger) {
        self.user_compute += other.user_compute;
        self.custom_execute += other.custom_execute;
        self.soft_dispatch += other.soft_dispatch;
        self.context_switch += other.context_switch;
        self.fault_handling += other.fault_handling;
        self.tlb_programming += other.tlb_programming;
        self.config_bus += other.config_bus;
        self.syscall += other.syscall;
        self.fault_detection += other.fault_detection;
        self.fault_recovery += other.fault_recovery;
        self.idle += other.idle;
    }

    /// Render as a JSON object (category → cycles, plus `total`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (name, value) in Self::CATEGORIES.iter().zip(self.values()) {
            out.push_str(&format!("\"{name}\":{value},"));
        }
        out.push_str(&format!("\"total\":{}}}", self.total()));
        out
    }
}

impl EventSink for CycleLedger {
    fn on_event(&mut self, _at: u64, _tag: Tag, event: &Event) {
        match *event {
            Event::Compute { user, custom, soft, .. } => {
                self.user_compute += user;
                self.custom_execute += custom;
                self.soft_dispatch += soft;
            }
            Event::ContextSwitch { cost, .. } | Event::TimerTick { cost, .. } => {
                self.context_switch += cost;
            }
            Event::Fault { cost, .. } => self.fault_handling += cost,
            Event::TlbProgram { cost, .. } => self.tlb_programming += cost,
            Event::BusTransfer { cost, .. } => self.config_bus += cost,
            Event::Syscall { cost, .. } => self.syscall += cost,
            Event::PfuFault { cost, .. } | Event::ScrubCheck { cost, .. } => {
                self.fault_detection += cost;
            }
            Event::RecoveryRetry { cost, .. } | Event::SoftwareFailover { cost, .. } => {
                self.fault_recovery += cost;
            }
            Event::Idle { cycles } => self.idle += cycles,
            Event::Spawn { .. }
            | Event::MappingRepair { .. }
            | Event::ConfigLoad { .. }
            | Event::Eviction { .. }
            | Event::StateSwap { .. }
            | Event::SoftwareInstall { .. }
            | Event::Exit { .. }
            | Event::Kill { .. }
            | Event::SeuStrike { .. }
            | Event::Quarantine { .. } => {}
        }
    }
}

/// The per-process × per-callsite × category cycle matrix: the same
/// fold as [`CycleLedger`], but keyed by each event's [`Tag`], so the
/// global breakdown can be sliced by *who* the work was for and *which*
/// kernel path did it.
///
/// Conservation survives attribution by construction: every event's
/// category delta lands in exactly one `(pid, callsite)` cell, so
/// [`AttributedLedger::refold`] reproduces the global ledger and
/// [`AttributedLedger::total`] equals the simulated clock. Cells are a
/// `BTreeMap`, so iteration (and every export built on it) is
/// deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AttributedLedger {
    cells: BTreeMap<(Pid, Callsite), CycleLedger>,
}

impl AttributedLedger {
    fn cell(&mut self, pid: Pid, callsite: Callsite) -> &mut CycleLedger {
        self.cells.entry((pid, callsite)).or_default()
    }

    /// Attribute a compute span, splitting it across the dispatch
    /// callsites: user cycles under [`Callsite::Compute`],
    /// custom-execute under [`Callsite::HwDispatch`], handler cycles
    /// under [`Callsite::SwDispatch`]. Also the
    /// [`Probe::compute_span`] fast path, so it must stay equivalent to
    /// folding an [`Event::Compute`].
    pub fn add_compute(&mut self, pid: Pid, user: u64, custom: u64, soft: u64) {
        if user > 0 {
            self.cell(pid, Callsite::Compute).user_compute += user;
        }
        if custom > 0 {
            self.cell(pid, Callsite::HwDispatch).custom_execute += custom;
        }
        if soft > 0 {
            self.cell(pid, Callsite::SwDispatch).soft_dispatch += soft;
        }
    }

    /// Attribute an idle span (the [`Probe::idle_span`] fast path).
    pub fn add_idle(&mut self, cycles: u64) {
        if cycles > 0 {
            self.cell(0, Callsite::Idle).idle += cycles;
        }
    }

    /// Iterate the non-empty cells in deterministic `(pid, callsite)`
    /// order.
    pub fn cells(&self) -> impl Iterator<Item = (Pid, Callsite, &CycleLedger)> + '_ {
        self.cells.iter().map(|(&(pid, callsite), ledger)| (pid, callsite, ledger))
    }

    /// True when nothing has been attributed.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Collapse the matrix back into one global [`CycleLedger`]. Equals
    /// the kernel's own ledger over the same stream — the conservation
    /// law extended through attribution.
    pub fn refold(&self) -> CycleLedger {
        let mut out = CycleLedger::default();
        for ledger in self.cells.values() {
            out.absorb(ledger);
        }
        out
    }

    /// Total attributed cycles (equals the simulated clock over a run).
    pub fn total(&self) -> u64 {
        self.cells.values().map(CycleLedger::total).sum()
    }

    /// Merge another matrix into this one (cell-wise; used by the
    /// runner to assemble per-job matrices into a figure-wide one —
    /// u64 sums commute, so assembly order cannot affect the result).
    pub fn absorb(&mut self, other: &AttributedLedger) {
        for (&(pid, callsite), ledger) in &other.cells {
            self.cell(pid, callsite).absorb(ledger);
        }
    }

    /// Render as Brendan-Gregg folded stacks — one
    /// `scenario;pid<N>;<callsite>;<category> <cycles>` line per
    /// non-zero cell/category pair, in deterministic order — directly
    /// consumable by `flamegraph.pl` or inferno.
    pub fn to_folded(&self, scenario: &str) -> String {
        let mut out = String::new();
        for (pid, callsite, ledger) in self.cells() {
            for (name, value) in CycleLedger::CATEGORIES.iter().zip(ledger.values()) {
                if value > 0 {
                    out.push_str(&format!(
                        "{scenario};pid{pid};{};{name} {value}\n",
                        callsite.name()
                    ));
                }
            }
        }
        out
    }

    /// The `k` largest `(pid, callsite, category, cycles)` sinks,
    /// largest first (ties broken by cell order for determinism).
    pub fn top_sinks(&self, k: usize) -> Vec<(Pid, Callsite, &'static str, u64)> {
        let mut flat: Vec<(Pid, Callsite, &'static str, u64)> = Vec::new();
        for (pid, callsite, ledger) in self.cells() {
            for (name, value) in CycleLedger::CATEGORIES.iter().zip(ledger.values()) {
                if value > 0 {
                    flat.push((pid, callsite, name, value));
                }
            }
        }
        flat.sort_by(|a, b| b.3.cmp(&a.3).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        flat.truncate(k);
        flat
    }

    /// Render as a JSON array of the top-`k` sinks (for
    /// `summary.json`).
    pub fn top_sinks_json(&self, k: usize) -> String {
        let mut out = String::from("[");
        for (i, (pid, callsite, category, cycles)) in self.top_sinks(k).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"pid\":{pid},\"callsite\":\"{}\",\"category\":\"{category}\",\
                 \"cycles\":{cycles}}}",
                callsite.name()
            ));
        }
        out.push(']');
        out
    }
}

impl EventSink for AttributedLedger {
    fn on_event(&mut self, at: u64, tag: Tag, event: &Event) {
        match *event {
            // Compute spans split across the dispatch callsites; the
            // event's own pid equals the tag's.
            Event::Compute { pid, user, custom, soft, .. } => {
                self.add_compute(pid, user, custom, soft);
            }
            // Everything else books its category delta into the tag's
            // cell. Routing through the CycleLedger fold keeps the
            // category mapping single-sourced, so refold == global
            // ledger by construction.
            _ => {
                let mut delta = CycleLedger::default();
                delta.on_event(at, tag, event);
                if delta.total() > 0 {
                    self.cell(tag.pid, tag.callsite).absorb(&delta);
                }
            }
        }
    }
}

/// The fan-out point: one `emit` call feeds the stats fold, the cycle
/// ledger, the attribution matrix, the bounded trace, and any extra
/// sinks the embedder added.
pub struct Probe {
    stats: KernelStats,
    ledger: CycleLedger,
    attributed: AttributedLedger,
    trace: Trace,
    extra: Vec<Box<dyn EventSink>>,
}

impl fmt::Debug for Probe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Probe")
            .field("stats", &self.stats)
            .field("ledger", &self.ledger)
            .field("attributed", &self.attributed)
            .field("trace", &self.trace)
            .field("extra_sinks", &self.extra.len())
            .finish()
    }
}

impl Probe {
    /// A probe whose trace keeps at most `trace_capacity` events
    /// (0 disables tracing; stats and ledger always accumulate).
    pub fn new(trace_capacity: usize) -> Self {
        Self {
            stats: KernelStats::default(),
            ledger: CycleLedger::default(),
            attributed: AttributedLedger::default(),
            trace: Trace::with_capacity(trace_capacity),
            extra: Vec::new(),
        }
    }

    /// Emit one event at simulated cycle `at`, attributed by `tag`, to
    /// every sink.
    pub fn emit(&mut self, at: u64, tag: Tag, event: Event) {
        self.stats.on_event(at, tag, &event);
        self.ledger.on_event(at, tag, &event);
        self.attributed.on_event(at, tag, &event);
        self.trace.on_event(at, tag, &event);
        for sink in &mut self.extra {
            sink.on_event(at, tag, &event);
        }
    }

    /// `true` when something beyond the built-in folds observes the
    /// stream: the trace ring is enabled or extra sinks are attached.
    /// When `false`, the span-delta fast paths below skip `Event`
    /// construction entirely — the built-in folds are updated directly,
    /// so the observable totals are identical either way.
    #[inline]
    pub fn needs_events(&self) -> bool {
        self.trace.enabled() || !self.extra.is_empty()
    }

    /// Attribute a completed compute span: the fast-path equivalent of
    /// emitting [`Event::Compute`]. The ledger and attribution matrix
    /// are the only built-in folds that consume compute spans
    /// ([`KernelStats`] ignores them), so with no other observers
    /// attached this skips `Event` construction and updates them
    /// directly — the observable totals are identical either way.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn compute_span(
        &mut self,
        at: u64,
        pid: Pid,
        user: u64,
        custom: u64,
        soft: u64,
        hw_dispatches: u64,
        sw_dispatches: u64,
    ) {
        if self.needs_events() {
            self.emit(
                at,
                Tag::new(pid, Callsite::Compute),
                Event::Compute { pid, user, custom, soft, hw_dispatches, sw_dispatches },
            );
        } else {
            self.ledger.user_compute += user;
            self.ledger.custom_execute += custom;
            self.ledger.soft_dispatch += soft;
            self.attributed.add_compute(pid, user, custom, soft);
        }
    }

    /// Attribute an idle span: the fast-path equivalent of emitting
    /// [`Event::Idle`].
    #[inline]
    pub fn idle_span(&mut self, at: u64, cycles: u64) {
        if self.needs_events() {
            self.emit(at, Tag::kernel(Callsite::Idle), Event::Idle { cycles });
        } else {
            self.ledger.idle += cycles;
            self.attributed.add_idle(cycles);
        }
    }

    /// The folded statistics.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// The folded cycle-attribution ledger.
    pub fn ledger(&self) -> &CycleLedger {
        &self.ledger
    }

    /// The per-process × per-callsite attribution matrix.
    pub fn attributed(&self) -> &AttributedLedger {
        &self.attributed
    }

    /// The bounded event timeline.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Attach an additional sink; it sees every event emitted from now
    /// on.
    pub fn add_sink(&mut self, sink: Box<dyn EventSink>) {
        self.extra.push(sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_folds_costs_into_categories() {
        let mut probe = Probe::new(16);
        let key = TupleKey::new(1, 0);
        let sched = Tag::new(1, Callsite::ContextSwitch);
        let miss = Tag::new(1, Callsite::TlbMiss);
        let reconf = Tag::new(1, Callsite::Reconfiguration);
        probe.emit(0, sched, Event::Spawn { pid: 1 });
        probe.emit(10, Tag::new(1, Callsite::Compute), Event::Compute { pid: 1, user: 7, custom: 2, soft: 1, hw_dispatches: 1, sw_dispatches: 1 });
        probe.emit(10, miss, Event::Fault { key, cost: 120 });
        probe.emit(10, reconf, Event::BusTransfer { words: 100, cost: 164 });
        probe.emit(10, reconf, Event::ConfigLoad { key, pfu: 0 });
        probe.emit(10, reconf, Event::TlbProgram { key, soft: false, evicted: true, cost: 12 });
        probe.emit(306, Tag::new(1, Callsite::Syscall), Event::Syscall { pid: 1, number: 0, cost: 40 });
        probe.emit(306, Tag::kernel(Callsite::Idle), Event::Idle { cycles: 50 });

        let l = probe.ledger();
        assert_eq!(l.user_compute, 7);
        assert_eq!(l.custom_execute, 2);
        assert_eq!(l.soft_dispatch, 1);
        assert_eq!(l.fault_handling, 120);
        assert_eq!(l.config_bus, 164);
        assert_eq!(l.tlb_programming, 12);
        assert_eq!(l.syscall, 40);
        assert_eq!(l.idle, 50);
        assert_eq!(l.total(), 7 + 2 + 1 + 120 + 164 + 12 + 40 + 50);

        let s = probe.stats();
        assert_eq!(s.custom_faults, 1);
        assert_eq!(s.config_loads, 1);
        assert_eq!(s.tlb_evictions, 1);
        assert_eq!(s.config_words_moved, 100);
        assert_eq!(s.syscalls, 1);

        assert_eq!(probe.trace().len(), 8);

        // Attribution conserves: the matrix refolds to the ledger, and
        // the cells land where the tags said.
        let a = probe.attributed();
        assert_eq!(&a.refold(), l);
        assert_eq!(a.total(), l.total());
        let cells: Vec<(Pid, Callsite, u64)> =
            a.cells().map(|(p, c, lg)| (p, c, lg.total())).collect();
        assert_eq!(
            cells,
            vec![
                (0, Callsite::Idle, 50),
                (1, Callsite::Compute, 7),
                (1, Callsite::HwDispatch, 2),
                (1, Callsite::SwDispatch, 1),
                (1, Callsite::TlbMiss, 120),
                (1, Callsite::Reconfiguration, 164 + 12),
                (1, Callsite::Syscall, 40),
            ]
        );
    }

    #[test]
    fn folded_stacks_and_top_sinks_are_deterministic() {
        let mut probe = Probe::new(16);
        let key = TupleKey::new(2, 0);
        probe.emit(10, Tag::new(2, Callsite::Compute), Event::Compute { pid: 2, user: 500, custom: 80, soft: 0, hw_dispatches: 4, sw_dispatches: 0 });
        probe.emit(20, Tag::new(2, Callsite::TlbMiss), Event::Fault { key, cost: 120 });
        probe.emit(30, Tag::kernel(Callsite::Idle), Event::Idle { cycles: 9 });

        let folded = probe.attributed().to_folded("demo");
        assert_eq!(
            folded,
            "demo;pid0;idle;idle 9\n\
             demo;pid2;compute;user_compute 500\n\
             demo;pid2;hw_dispatch;custom_execute 80\n\
             demo;pid2;tlb_miss;fault_handling 120\n"
        );
        // Folded per-category sums reproduce the global ledger.
        let mut by_category: BTreeMap<&str, u64> = BTreeMap::new();
        for line in folded.lines() {
            let (stack, value) = line.rsplit_once(' ').expect("line has a count");
            let category = stack.rsplit(';').next().expect("has a category frame");
            *by_category.entry(category).or_default() += value.parse::<u64>().expect("count");
        }
        for (name, value) in CycleLedger::CATEGORIES.iter().zip(probe.ledger().values()) {
            assert_eq!(by_category.get(name).copied().unwrap_or(0), value, "{name}");
        }

        let top = probe.attributed().top_sinks(2);
        assert_eq!(top[0], (2, Callsite::Compute, "user_compute", 500));
        assert_eq!(top[1], (2, Callsite::TlbMiss, "fault_handling", 120));
        let json = probe.attributed().top_sinks_json(2);
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert!(json.contains("\"callsite\":\"compute\""), "{json}");
    }

    #[test]
    fn fault_events_fold_into_their_own_categories() {
        let mut probe = Probe::new(16);
        let key = TupleKey::new(2, 1);
        let rungs = Tag::new(2, Callsite::FaultRungs);
        probe.emit(5, Tag::kernel(Callsite::Scrub), Event::SeuStrike { pfu: 1 });
        probe.emit(9, rungs, Event::PfuFault { key, pfu: 1, kind: PfuFaultKind::CrcMismatch, cost: 250 });
        probe.emit(9, rungs, Event::RecoveryRetry { key, pfu: 1, attempt: 1, words: 13_500, cost: 13_600 });
        probe.emit(20, Tag::kernel(Callsite::Scrub), Event::ScrubCheck { pfu: 0, corrupt: false, cost: 30 });
        probe.emit(33, rungs, Event::PfuFault { key, pfu: 2, kind: PfuFaultKind::Watchdog, cost: 400 });
        probe.emit(33, rungs, Event::SoftwareFailover { key, pfu: 2, cost: 12 });
        probe.emit(40, rungs, Event::Quarantine { pfu: 2 });

        let l = probe.ledger();
        assert_eq!(l.fault_detection, 250 + 30 + 400);
        assert_eq!(l.fault_recovery, 13_600 + 12);
        assert_eq!(l.total(), 250 + 30 + 400 + 13_600 + 12);
        assert_eq!(l.management(), l.total(), "fault work is management overhead");

        let s = probe.stats();
        assert_eq!(s.seu_strikes, 1);
        assert_eq!(s.pfu_faults, 2);
        assert_eq!(s.crc_errors, 1, "only the CRC-mismatch trip counts");
        assert_eq!(s.recovery_retries, 1);
        assert_eq!(s.config_words_moved, 13_500, "retries are bus traffic");
        assert_eq!(s.fault_failovers, 1);
        assert_eq!(s.quarantines, 1);
    }

    #[test]
    fn span_fast_path_matches_event_fold() {
        // Same spans through the fast path (no observers) and the full
        // event path (trace enabled) must produce identical ledgers.
        let mut fast = Probe::new(0);
        assert!(!fast.needs_events());
        fast.compute_span(10, 1, 7, 2, 1, 1, 1);
        fast.idle_span(60, 50);

        let mut slow = Probe::new(16);
        assert!(slow.needs_events());
        slow.compute_span(10, 1, 7, 2, 1, 1, 1);
        slow.idle_span(60, 50);

        assert_eq!(fast.ledger(), slow.ledger());
        assert_eq!(fast.attributed(), slow.attributed(), "attribution matches too");
        assert_eq!(fast.trace().len(), 0);
        assert_eq!(slow.trace().len(), 2, "observers still get the events");
    }

    #[test]
    fn extra_sinks_flip_spans_back_to_events() {
        struct Seen(std::sync::mpsc::Sender<String>);
        impl EventSink for Seen {
            fn on_event(&mut self, _at: u64, _tag: Tag, event: &Event) {
                let _ = self.0.send(event.to_string());
            }
        }
        let (tx, rx) = std::sync::mpsc::channel();
        let mut probe = Probe::new(0);
        probe.add_sink(Box::new(Seen(tx)));
        assert!(probe.needs_events());
        probe.compute_span(10, 1, 7, 2, 1, 0, 0);
        probe.idle_span(60, 50);
        let seen: Vec<String> = rx.try_iter().collect();
        assert_eq!(seen, vec!["compute pid=1 user=7 custom=2 soft=1", "idle 50"]);
    }

    #[test]
    fn extra_sinks_see_every_event() {
        struct Counter(std::sync::mpsc::Sender<u64>);
        impl EventSink for Counter {
            fn on_event(&mut self, at: u64, _tag: Tag, _event: &Event) {
                let _ = self.0.send(at);
            }
        }
        let (tx, rx) = std::sync::mpsc::channel();
        let mut probe = Probe::new(0);
        probe.add_sink(Box::new(Counter(tx)));
        let sched = Tag::new(1, Callsite::ContextSwitch);
        probe.emit(5, sched, Event::Spawn { pid: 1 });
        probe.emit(9, sched, Event::Exit { pid: 1, code: 0 });
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![5, 9]);
    }

    #[test]
    fn event_json_is_one_object_per_event() {
        let key = TupleKey::new(3, 1);
        let j = Event::Fault { key, cost: 120 }.to_json(42, Tag::new(3, Callsite::TlbMiss));
        assert_eq!(
            j,
            "{\"cycle\":42,\"by\":3,\"callsite\":\"tlb_miss\",\
             \"kind\":\"fault\",\"pid\":3,\"cid\":1,\"cost\":120}"
        );
        let j = Event::ContextSwitch { from: None, to: 2, cost: 220 }
            .to_json(7, Tag::new(2, Callsite::ContextSwitch));
        assert!(j.contains("\"from\":null"));
        assert!(CycleLedger::default().to_json().contains("\"total\":0"));
    }
}
