//! Criterion bench over the Figure 3 configuration space (Software
//! Dispatch Test): circuit switching vs. deferring to the registered
//! software alternative under contention.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use porsche::cis::DispatchMode;
use porsche::policy::PolicyKind;
use proteus::experiment::{QUANTUM_10MS, QUANTUM_1MS};
use proteus::scenario::Scenario;
use proteus_apps::AppKind;

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_software_dispatch");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(700));
    for app in [AppKind::Echo, AppKind::Alpha] {
        for (mode, mname) in [
            (DispatchMode::HardwareOnly, "swap"),
            (DispatchMode::SoftwareFallback, "soft"),
        ] {
            for (quantum, qname) in [(QUANTUM_10MS, "10ms"), (QUANTUM_1MS, "1ms")] {
                for n in [2usize, 6, 8] {
                    let id =
                        BenchmarkId::new(format!("{}_{}_{}", app.name(), mname, qname), n);
                    group.bench_function(id, |b| {
                        b.iter(|| {
                            let result = Scenario::new(app)
                                .instances(n)
                                .size(64)
                                .passes(8)
                                .quantum(quantum)
                                .policy(PolicyKind::RoundRobin)
                                .mode(mode)
                                .run()
                                .expect("fig3 bench run");
                            assert!(result.all_valid());
                            result.makespan
                        })
                    });
                }
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
