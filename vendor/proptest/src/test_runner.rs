//! Test execution: configuration, the deterministic RNG and the runner.

use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::strategy::Strategy;

/// How many cases to run per property (subset of upstream's config).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property does not hold for the sampled input.
    Fail(String),
    /// The input does not satisfy a precondition; sample another.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejection (filtered input) with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Deterministic generator feeding the strategies (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeded construction; expansion via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` (`bound` > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Drives one property: samples inputs, runs the case, reports failures.
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
    rng: TestRng,
}

impl TestRunner {
    /// A runner for the named test. The RNG seed is derived from the
    /// test name (FNV-1a), overridable via `PROPTEST_RNG_SEED`.
    pub fn new(mut config: ProptestConfig, name: &'static str) -> Self {
        if let Some(cases) =
            std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse::<u32>().ok())
        {
            config.cases = cases;
        }
        let base = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0xcbf2_9ce4_8422_2325);
        let mut hash = base;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner { config, name, rng: TestRng::seed_from_u64(hash) }
    }

    /// Run the property to completion, panicking on the first failure
    /// with the offending input in the message.
    ///
    /// # Panics
    ///
    /// Panics when the property fails, when the case itself panics, or
    /// when too many inputs are rejected by `prop_assume!`.
    pub fn run<S: Strategy>(
        &mut self,
        strategy: &S,
        case: impl Fn(S::Value) -> Result<(), TestCaseError>,
    ) {
        let mut passed = 0u32;
        let mut attempts = 0u64;
        let max_attempts = u64::from(self.config.cases).saturating_mul(20).max(100);
        while passed < self.config.cases {
            attempts += 1;
            assert!(
                attempts <= max_attempts,
                "{}: too many rejected inputs ({} attempts for {} cases)",
                self.name,
                attempts,
                self.config.cases
            );
            let value = strategy.sample(&mut self.rng);
            let described = format!("{value:?}");
            let outcome = catch_unwind(AssertUnwindSafe(|| case(value)));
            match outcome {
                Ok(Ok(())) => passed += 1,
                Ok(Err(TestCaseError::Reject(_))) => continue,
                Ok(Err(TestCaseError::Fail(message))) => panic!(
                    "proptest: {} failed for input {} (case {}/{}):\n{}",
                    self.name,
                    described,
                    passed + 1,
                    self.config.cases,
                    message
                ),
                Err(payload) => {
                    eprintln!(
                        "proptest: {} panicked for input {} (case {}/{})",
                        self.name,
                        described,
                        passed + 1,
                        self.config.cases
                    );
                    resume_unwind(payload);
                }
            }
        }
    }
}
