//! Error type shared across the fabric crate.

use std::error::Error;
use std::fmt;

/// Errors produced while building, compiling, loading or simulating
/// fabric circuits.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FabricError {
    /// The netlist references a node id that does not exist.
    DanglingNode {
        /// The offending node id.
        node: u32,
    },
    /// The netlist's combinational logic contains a cycle (a loop not
    /// broken by a flip-flop), which a real fabric cannot evaluate.
    CombinationalCycle {
        /// A node participating in the cycle.
        node: u32,
    },
    /// The circuit needs more CLBs than the target fabric provides.
    CapacityExceeded {
        /// CLBs required by the netlist.
        required: usize,
        /// CLBs available on the fabric.
        available: usize,
    },
    /// An input or output port name was declared twice.
    DuplicatePort {
        /// The duplicated name.
        name: String,
    },
    /// A port required by the PFU interface convention is missing or has
    /// the wrong width.
    BadPort {
        /// The port name.
        name: String,
        /// Description of what is wrong.
        detail: String,
    },
    /// The bitstream is malformed (bad magic, truncated frame, unknown
    /// frame type, selector out of mux range, …).
    MalformedBitstream {
        /// Description of the defect.
        detail: String,
    },
    /// A static configuration frame failed its CRC check (SEU or
    /// transit corruption detected on load or scrub readback).
    CrcMismatch {
        /// Index of the corrupt CLB frame.
        frame: usize,
        /// CRC recorded when the frame was encoded.
        expected: u32,
        /// CRC computed from the (corrupt) frame contents.
        actual: u32,
    },
    /// The bitstream targets a fabric of different dimensions.
    DimensionMismatch {
        /// Dimensions the bitstream was compiled for.
        expected: (u16, u16),
        /// Dimensions of the device it was loaded into.
        actual: (u16, u16),
    },
    /// An operation that needs a loaded configuration was attempted on an
    /// empty device.
    NotConfigured,
    /// A state snapshot does not match the loaded configuration.
    StateMismatch {
        /// Description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::DanglingNode { node } => {
                write!(f, "netlist references missing node {node}")
            }
            FabricError::CombinationalCycle { node } => {
                write!(f, "combinational cycle through node {node}")
            }
            FabricError::CapacityExceeded { required, available } => {
                write!(f, "circuit needs {required} CLBs but fabric has {available}")
            }
            FabricError::DuplicatePort { name } => {
                write!(f, "port `{name}` declared more than once")
            }
            FabricError::BadPort { name, detail } => {
                write!(f, "port `{name}` invalid: {detail}")
            }
            FabricError::MalformedBitstream { detail } => {
                write!(f, "malformed bitstream: {detail}")
            }
            FabricError::CrcMismatch { frame, expected, actual } => write!(
                f,
                "frame {frame} CRC mismatch: expected {expected:#010x}, got {actual:#010x}"
            ),
            FabricError::DimensionMismatch { expected, actual } => write!(
                f,
                "bitstream compiled for {}x{} fabric, device is {}x{}",
                expected.0, expected.1, actual.0, actual.1
            ),
            FabricError::NotConfigured => write!(f, "device has no configuration loaded"),
            FabricError::StateMismatch { detail } => {
                write!(f, "state snapshot mismatch: {detail}")
            }
        }
    }
}

impl Error for FabricError {}
