//! Property tests over the instruction set: encoding, decoding and the
//! assembler agree with each other on the entire instruction space.

use proptest::prelude::*;
use proteus_isa::{
    assemble, decode, encode, BlockOp, Cond, DpOp, Instr, MemOp, Operand2, OperandSel, Reg, Shift,
    ShiftKind,
};

fn arb_cond() -> impl Strategy<Value = Cond> {
    (0u32..15).prop_map(|b| Cond::from_bits(b).expect("valid"))
}

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::new)
}

fn arb_shift() -> impl Strategy<Value = Shift> {
    ((0u32..4), (0u8..32)).prop_map(|(k, amount)| {
        // Canonical form: a zero-amount shift passes the value through
        // whatever its kind, and the text form drops it entirely.
        let kind = if amount == 0 { ShiftKind::Lsl } else { ShiftKind::from_bits(k) };
        Shift { kind, amount }
    })
}

fn arb_op2() -> impl Strategy<Value = Operand2> {
    prop_oneof![
        // Canonical immediate: (value, rot) pairs are not unique (0
        // encodes under every rotation), and the assembler always picks
        // the lowest rotation — mirror that choice.
        ((0u8..=255), (0u8..16)).prop_map(|(value, rot)| {
            Operand2::try_imm(Operand2::imm_value(value, rot)).expect("representable")
        }),
        (arb_reg(), arb_shift()).prop_map(|(reg, shift)| Operand2::Reg { reg, shift }),
    ]
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (arb_cond(), (0u32..16), any::<bool>(), arb_reg(), arb_reg(), arb_op2()).prop_map(
            |(cond, op, s, rd, rn, op2)| {
                let op = DpOp::from_bits(op);
                // Canonical form: test ops have no destination, moves
                // have no first operand (the text form cannot express
                // the ignored field).
                let rd = if op.is_test() { Reg::new(0) } else { rd };
                let rn = if op.is_move() { Reg::new(0) } else { rn };
                Instr::DataProc { op, cond, s: s || op.is_test(), rd, rn, op2 }
            }
        ),
        (arb_cond(), any::<bool>(), arb_reg(), arb_reg(), arb_reg(), proptest::option::of(arb_reg()))
            .prop_map(|(cond, s, rd, rm, rs, acc)| Instr::Mul { cond, s, rd, rm, rs, acc }),
        (
            arb_cond(),
            any::<bool>(),
            any::<bool>(),
            arb_reg(),
            arb_reg(),
            (0u16..2048),
            any::<bool>(),
            any::<bool>(),
            any::<bool>()
        )
            .prop_map(|(cond, load, byte, rd, rn, imm, up, pre, writeback)| Instr::Mem {
                op: if load { MemOp::Ldr } else { MemOp::Str },
                cond,
                byte,
                rd,
                rn,
                offset: proteus_isa::instr::MemOffset::Imm(imm),
                // A zero offset is canonically an addition (there is no
                // negative zero).
                up: up || imm == 0,
                pre,
                // Post-indexed access always writes back (the bit is a
                // don't-care the assembly form cannot express).
                writeback: writeback || !pre,
            }),
        (arb_cond(), any::<bool>(), arb_reg(), (1u16..), any::<bool>(), any::<bool>(), any::<bool>())
            .prop_map(|(cond, load, rn, regs, before, up, writeback)| Instr::Block {
                op: if load { BlockOp::Ldm } else { BlockOp::Stm },
                cond,
                rn,
                regs,
                before,
                up,
                writeback,
            }),
        (arb_cond(), any::<bool>(), (-(1i32 << 22)..(1i32 << 22)))
            .prop_map(|(cond, link, offset)| Instr::Branch { cond, link, offset }),
        (arb_cond(), (0u32..1 << 24)).prop_map(|(cond, imm)| Instr::Swi { cond, imm }),
        (arb_cond(), any::<u8>(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(cond, cid, rd, rn, rm)| Instr::Pfu { cond, cid, rd, rn, rm }),
        (arb_cond(), (0u8..16), arb_reg()).prop_map(|(cond, rfu, rs)| Instr::Mcr { cond, rfu, rs }),
        (arb_cond(), arb_reg(), (0u8..16)).prop_map(|(cond, rd, rfu)| Instr::Mrc { cond, rd, rfu }),
        (arb_cond(), arb_reg(), prop_oneof![Just(OperandSel::A), Just(OperandSel::B)])
            .prop_map(|(cond, rd, sel)| Instr::LdOp { cond, rd, sel }),
        (arb_cond(), arb_reg()).prop_map(|(cond, rs)| Instr::StRes { cond, rs }),
        arb_cond().prop_map(|cond| Instr::RetSd { cond }),
        (arb_cond(), (0u8..16), arb_reg()).prop_map(|(cond, field, rs)| Instr::McrO { cond, field, rs }),
        (arb_cond(), arb_reg(), (0u8..16)).prop_map(|(cond, rd, field)| Instr::MrcO { cond, rd, field }),
    ]
}

proptest! {
    /// encode ∘ decode = identity over the full instruction space.
    #[test]
    fn encode_decode_roundtrip(instr in arb_instr()) {
        let word = encode(instr);
        let back = decode(word).expect("encoded instructions decode");
        prop_assert_eq!(back, instr);
    }

    /// Disassembly re-assembles to the identical word (for everything
    /// except branches, whose text form is PC-relative).
    #[test]
    fn disassembly_reassembles(instr in arb_instr()) {
        if matches!(instr, Instr::Branch { .. }) {
            return Ok(());
        }
        let word = encode(instr);
        let text = instr.to_string();
        let program = assemble(&text).map_err(|e| {
            TestCaseError::fail(format!("`{text}` failed to assemble: {e}"))
        })?;
        prop_assert_eq!(program.words(), &[word], "text was `{}`", text);
    }

    /// Arbitrary words either decode to something re-encodable or fault.
    #[test]
    fn decode_is_total_and_consistent(word in any::<u32>()) {
        if let Ok(instr) = decode(word) {
            let re = encode(instr);
            let back = decode(re).expect("re-encoded decodes");
            prop_assert_eq!(back, instr);
        }
    }

    /// imm8/rot4 encodability is preserved exactly.
    #[test]
    fn operand2_imm_value_consistent(value in any::<u8>(), rot in 0u8..16) {
        let v = Operand2::imm_value(value, rot);
        let found = Operand2::try_imm(v).expect("representable value must encode");
        if let Operand2::Imm { value: v2, rot: r2 } = found {
            prop_assert_eq!(Operand2::imm_value(v2, r2), v);
        } else {
            prop_assert!(false, "try_imm returned a register operand");
        }
    }
}
