//! `pdis` — disassemble a flat ProteanARM binary image.
//!
//! ```text
//! pdis <image.bin> [--org <addr>] [--hex]
//! ```
//!
//! `--hex` treats the input as one hex word per line (the `pasm --hex`
//! format). Words that do not decode are printed as `.word`.

use std::process::ExitCode;

use proteus_isa::decode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input = None;
    let mut org = 0u32;
    let mut hex = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--org" => {
                let Some(v) = it.next().and_then(|s| parse_u32(s)) else {
                    eprintln!("pdis: bad --org value");
                    return ExitCode::FAILURE;
                };
                org = v;
            }
            "--hex" => hex = true,
            "-h" | "--help" => {
                eprintln!("usage: pdis <image.bin> [--org <addr>] [--hex]");
                return ExitCode::SUCCESS;
            }
            other => input = Some(other.to_string()),
        }
    }
    let Some(input) = input else {
        eprintln!("pdis: no input file (try --help)");
        return ExitCode::FAILURE;
    };
    let words: Vec<u32> = if hex {
        match std::fs::read_to_string(&input) {
            Ok(text) => {
                let mut ws = Vec::new();
                for (i, line) in text.lines().enumerate() {
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    match u32::from_str_radix(line.trim_start_matches("0x"), 16) {
                        Ok(w) => ws.push(w),
                        Err(e) => {
                            eprintln!("pdis: {input}:{}: {e}", i + 1);
                            return ExitCode::FAILURE;
                        }
                    }
                }
                ws
            }
            Err(e) => {
                eprintln!("pdis: cannot read {input}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match std::fs::read(&input) {
            Ok(bytes) => bytes
                .chunks(4)
                .map(|c| {
                    let mut w = [0u8; 4];
                    w[..c.len()].copy_from_slice(c);
                    u32::from_le_bytes(w)
                })
                .collect(),
            Err(e) => {
                eprintln!("pdis: cannot read {input}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    for (i, &word) in words.iter().enumerate() {
        let addr = org.wrapping_add(i as u32 * 4);
        match decode(word) {
            Ok(instr) => println!("{addr:#010x}:  {word:08x}  {instr}"),
            Err(_) => println!("{addr:#010x}:  {word:08x}  .word {word:#x}"),
        }
    }
    ExitCode::SUCCESS
}

fn parse_u32(s: &str) -> Option<u32> {
    if let Some(hex) = s.strip_prefix("0x") {
        u32::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}
