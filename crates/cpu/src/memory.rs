//! Flat byte-addressable memory.
//!
//! Each guest process owns one [`Memory`] — the substitution for the
//! workstation's virtual memory (see DESIGN.md). Word accesses must be
//! aligned, as on ARM7.

use std::error::Error;
use std::fmt;

use proteus_isa::{decode, Instr, Program};

/// Words of low memory covered by the instruction-decode cache (1 MiB of
/// program text — guest code lives at low addresses by convention).
const ICACHE_WORDS: usize = 1 << 18;

/// Memory access failure. The CPU turns these into a data-abort stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Address past the end of memory.
    OutOfRange {
        /// Faulting address.
        addr: u32,
        /// Memory size in bytes.
        size: u32,
    },
    /// Misaligned word access.
    Unaligned {
        /// Faulting address.
        addr: u32,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfRange { addr, size } => {
                write!(f, "address {addr:#010x} outside {size}-byte memory")
            }
            MemError::Unaligned { addr } => write!(f, "unaligned word access at {addr:#010x}"),
        }
    }
}

impl Error for MemError {}

/// A private, flat address space.
///
/// Carries a decode cache over low memory so the interpreter does not
/// re-decode hot loops on every iteration; any store into a cached word
/// invalidates its entry (self-modifying code stays correct). Each entry
/// holds the raw encoding alongside the decoded form so fetches never
/// fabricate a word.
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
    icache: Vec<Option<(u32, Instr)>>,
}

impl PartialEq for Memory {
    fn eq(&self, other: &Self) -> bool {
        self.bytes == other.bytes
    }
}

impl Eq for Memory {}

impl Memory {
    /// Allocate `size` zeroed bytes.
    ///
    /// The decode cache starts empty and grows on demand up to
    /// [`ICACHE_WORDS`] entries: zeroing megabytes of cache up front
    /// dominates short-lived instances (benchmarks, small scenario
    /// jobs), while real programs only ever touch the low words.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a multiple of 4.
    pub fn new(size: u32) -> Self {
        assert!(size.is_multiple_of(4), "memory size must be word-aligned");
        Self { bytes: vec![0; size as usize], icache: Vec::new() }
    }

    /// Highest word index the decode cache may grow to cover.
    #[inline]
    fn cache_limit(&self) -> usize {
        (self.bytes.len() / 4).min(ICACHE_WORDS)
    }

    /// Fetch and decode the instruction at `addr`, consulting the decode
    /// cache.
    ///
    /// # Errors
    ///
    /// Propagates the word read error; returns `Ok(None)` when the word
    /// does not decode (undefined instruction).
    #[inline]
    pub fn fetch_instr(&mut self, addr: u32) -> Result<(u32, Option<Instr>), MemError> {
        let idx = (addr / 4) as usize;
        if addr.is_multiple_of(4) {
            if let Some(Some((word, instr))) = self.icache.get(idx) {
                return Ok((*word, Some(*instr)));
            }
        }
        self.fetch_instr_slow(addr, idx)
    }

    /// Decode-cache miss path: read, decode, and (for decodable words in
    /// low memory) populate the cache.
    #[cold]
    fn fetch_instr_slow(&mut self, addr: u32, idx: usize) -> Result<(u32, Option<Instr>), MemError> {
        let word = self.read_word(addr)?;
        match decode(word) {
            Ok(instr) => {
                if idx < self.cache_limit() {
                    if idx >= self.icache.len() {
                        self.icache.resize(idx + 1, None);
                    }
                    self.icache[idx] = Some((word, instr));
                }
                Ok((word, Some(instr)))
            }
            Err(_) => Ok((word, None)),
        }
    }

    /// Decode-cache lookup alone: the infallible fast lane the
    /// interpreter hot loop uses before falling back to
    /// [`Memory::fetch_instr`]. Hits only on aligned, previously decoded
    /// words, so callers can skip all error handling.
    #[inline(always)]
    pub fn cached_instr(&self, addr: u32) -> Option<(u32, Instr)> {
        if addr.is_multiple_of(4) {
            if let Some(&Some(entry)) = self.icache.get((addr / 4) as usize) {
                return Some(entry);
            }
        }
        None
    }

    /// Size in bytes.
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    #[inline(always)]
    fn check(&self, addr: u32, len: u32) -> Result<usize, MemError> {
        let end = addr.checked_add(len).filter(|&e| e <= self.size());
        match end {
            Some(_) => Ok(addr as usize),
            None => Err(MemError::OutOfRange { addr, size: self.size() }),
        }
    }

    /// Read an aligned word.
    ///
    /// # Errors
    ///
    /// [`MemError::Unaligned`] or [`MemError::OutOfRange`].
    #[inline(always)]
    pub fn read_word(&self, addr: u32) -> Result<u32, MemError> {
        if !addr.is_multiple_of(4) {
            return Err(MemError::Unaligned { addr });
        }
        let i = self.check(addr, 4)?;
        Ok(u32::from_le_bytes([self.bytes[i], self.bytes[i + 1], self.bytes[i + 2], self.bytes[i + 3]]))
    }

    /// Write an aligned word.
    ///
    /// # Errors
    ///
    /// [`MemError::Unaligned`] or [`MemError::OutOfRange`].
    #[inline(always)]
    pub fn write_word(&mut self, addr: u32, value: u32) -> Result<(), MemError> {
        if !addr.is_multiple_of(4) {
            return Err(MemError::Unaligned { addr });
        }
        let i = self.check(addr, 4)?;
        self.bytes[i..i + 4].copy_from_slice(&value.to_le_bytes());
        if let Some(slot) = self.icache.get_mut(i / 4) {
            *slot = None;
        }
        Ok(())
    }

    /// Read a byte.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    #[inline(always)]
    pub fn read_byte(&self, addr: u32) -> Result<u8, MemError> {
        let i = self.check(addr, 1)?;
        Ok(self.bytes[i])
    }

    /// Write a byte.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    #[inline(always)]
    pub fn write_byte(&mut self, addr: u32, value: u8) -> Result<(), MemError> {
        let i = self.check(addr, 1)?;
        self.bytes[i] = value;
        if let Some(slot) = self.icache.get_mut(i / 4) {
            *slot = None;
        }
        Ok(())
    }

    /// Copy a byte slice into memory at `addr`.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    pub fn write_bytes(&mut self, addr: u32, data: &[u8]) -> Result<(), MemError> {
        let i = self.check(addr, data.len() as u32)?;
        self.bytes[i..i + data.len()].copy_from_slice(data);
        for w in i / 4..(i + data.len()).div_ceil(4) {
            if let Some(slot) = self.icache.get_mut(w) {
                *slot = None;
            }
        }
        Ok(())
    }

    /// Read `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    pub fn read_bytes(&self, addr: u32, len: u32) -> Result<&[u8], MemError> {
        let i = self.check(addr, len)?;
        Ok(&self.bytes[i..i + len as usize])
    }

    /// Load an assembled [`Program`] at its origin address.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the program does not fit.
    pub fn load_program(&mut self, program: &Program) -> Result<(), MemError> {
        let mut addr = program.origin();
        for &w in program.words() {
            self.write_word(addr, w)?;
            addr += 4;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_roundtrip() {
        let mut m = Memory::new(64);
        m.write_word(8, 0xDEAD_BEEF).expect("write");
        assert_eq!(m.read_word(8).expect("read"), 0xDEAD_BEEF);
        assert_eq!(m.read_byte(8).expect("byte"), 0xEF, "little endian");
    }

    #[test]
    fn alignment_enforced() {
        let m = Memory::new(64);
        assert!(matches!(m.read_word(2), Err(MemError::Unaligned { addr: 2 })));
    }

    #[test]
    fn bounds_enforced() {
        let mut m = Memory::new(8);
        assert!(m.read_word(8).is_err());
        assert!(m.write_word(u32::MAX - 2, 0).is_err());
        assert!(m.write_bytes(6, &[1, 2, 3]).is_err());
    }

    #[test]
    fn fetch_returns_raw_word_on_cache_hit() {
        let p = proteus_isa::assemble("mov r0, #1\n").expect("asm");
        let mut m = Memory::new(1024);
        m.load_program(&p).expect("load");
        let word = m.read_word(0).expect("read");
        assert_ne!(word, 0);
        let (miss_word, miss_instr) = m.fetch_instr(0).expect("miss fetch");
        let (hit_word, hit_instr) = m.fetch_instr(0).expect("hit fetch");
        assert_eq!(miss_word, word);
        assert_eq!(hit_word, word, "cache hit must report the true encoding");
        assert_eq!(miss_instr, hit_instr);
        assert_eq!(m.cached_instr(0), Some((word, miss_instr.expect("decodes"))));
        // Stores invalidate; unaligned and uncached addresses miss.
        m.write_word(0, word).expect("write");
        assert_eq!(m.cached_instr(0), None);
        assert_eq!(m.cached_instr(2), None);
    }

    #[test]
    fn program_loads_at_origin() {
        let p = proteus_isa::assemble(".org 0x100\n mov r0, #1\n").expect("asm");
        let mut m = Memory::new(0x200);
        m.load_program(&p).expect("load");
        assert_ne!(m.read_word(0x100).expect("read"), 0);
        assert_eq!(m.read_word(0).expect("read"), 0);
    }
}
