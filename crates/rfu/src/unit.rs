//! The complete RFU: dispatch TLBs + PFU array + register file + operand
//! block, implementing the core's [`Coprocessor`] port.

use proteus_cpu::coproc::{CoprocResult, Coprocessor, OperandBlock, RetInfo};
use proteus_isa::OperandSel;

use crate::cam::{Cam, TupleKey};
use crate::pfu::{PfuArray, PfuIndex, RunOutcome};
use crate::regfile::RegFile;

/// Hardware sizing of the unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RfuConfig {
    /// Number of PFUs (the paper's ProteanARM uses 4).
    pub pfus: usize,
    /// Slots in each dispatch TLB.
    pub tlb_capacity: usize,
    /// Upper bound on cycles a single issue may clock a PFU before the
    /// unit declares the circuit runaway and faults (the OS's guarantee
    /// that instructions terminate, §2/§4.4).
    pub max_instruction_cycles: u64,
    /// Whether custom instructions honour the interrupt budget via the
    /// §4.4 status-register mechanism. `false` models the paper's
    /// rejected alternative — uninterruptible instructions that run to
    /// completion and stretch interrupt latency (ablation A6).
    pub interruptible: bool,
    /// Per-PFU watchdog: if a slot accumulates this many clocks without
    /// raising `done` (across interrupted reissues), the unit trips a
    /// [`FaultInfo::Watchdog`] fault instead of clocking further —
    /// the detection point for hung/stuck/corrupt circuits. `None`
    /// disables the watchdog (the seed behaviour).
    pub watchdog_cycles: Option<u64>,
}

impl Default for RfuConfig {
    fn default() -> Self {
        Self {
            pfus: 4,
            tlb_capacity: 16,
            max_instruction_cycles: 1 << 20,
            interruptible: true,
            watchdog_cycles: None,
        }
    }
}

/// Why the last custom instruction faulted (read by the OS fault
/// handler; hardware exposes this as a fault-status register).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultInfo {
    /// `(PID, CID)` missed in both TLBs: either the circuit is not
    /// loaded or its mapping was evicted (the OS distinguishes, §4.2).
    Miss {
        /// The faulting tuple.
        key: TupleKey,
    },
    /// TLB1 pointed at an empty PFU (stale mapping — an OS bug).
    EmptyPfu {
        /// The faulting tuple.
        key: TupleKey,
        /// The stale PFU index.
        pfu: PfuIndex,
    },
    /// The circuit exceeded the per-issue cycle cap without completing.
    Runaway {
        /// The faulting tuple.
        key: TupleKey,
        /// The PFU hosting the runaway circuit.
        pfu: PfuIndex,
    },
    /// The per-PFU watchdog expired: the slot accumulated
    /// [`RfuConfig::watchdog_cycles`] clocks without raising `done`.
    /// Unlike [`FaultInfo::Runaway`], the cycles the final issue burned
    /// are reported so the OS can charge them (a faulting issue returns
    /// no cycle count through the coprocessor port).
    Watchdog {
        /// The faulting tuple.
        key: TupleKey,
        /// The PFU whose watchdog tripped.
        pfu: PfuIndex,
        /// Clocks the final (faulting) issue consumed before the trip.
        burned: u64,
    },
}

/// Dispatch-path counters accumulated by the unit and drained by the
/// OS (one probe `Compute` event per run span): how custom issues were
/// routed through Figure 1's three-stage dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DispatchCounters {
    /// Issues resolved by TLB1 to a loaded PFU (completed or
    /// interrupted in hardware).
    pub hw_dispatches: u64,
    /// Issues resolved by TLB2 to a software handler.
    pub sw_dispatches: u64,
    /// Issues that faulted to the operating system.
    pub faults: u64,
}

/// The reconfigurable function unit.
#[derive(Debug)]
pub struct Rfu {
    config: RfuConfig,
    pfus: PfuArray,
    tlb_hw: Cam,
    tlb_sw: Cam,
    regs: RegFile,
    operand: OperandBlock,
    last_fault: Option<FaultInfo>,
    dispatch: DispatchCounters,
}

impl Rfu {
    /// Build a unit from a configuration.
    pub fn new(config: RfuConfig) -> Self {
        Self {
            pfus: PfuArray::new(config.pfus),
            tlb_hw: Cam::new(config.tlb_capacity),
            tlb_sw: Cam::new(config.tlb_capacity),
            regs: RegFile::new(),
            operand: OperandBlock::default(),
            last_fault: None,
            dispatch: DispatchCounters::default(),
            config,
        }
    }

    /// The hardware sizing.
    pub fn config(&self) -> &RfuConfig {
        &self.config
    }

    /// The PFU array (OS: load/unload/state/status/counters).
    pub fn pfus(&self) -> &PfuArray {
        &self.pfus
    }

    /// Mutable PFU array access.
    pub fn pfus_mut(&mut self) -> &mut PfuArray {
        &mut self.pfus
    }

    /// TLB1: `(PID, CID) → PFU` (hardware dispatch).
    pub fn tlb_hw(&self) -> &Cam {
        &self.tlb_hw
    }

    /// Mutable TLB1 access (the OS programs it).
    pub fn tlb_hw_mut(&mut self) -> &mut Cam {
        &mut self.tlb_hw
    }

    /// TLB2: `(PID, CID) → address` (software dispatch).
    pub fn tlb_sw(&self) -> &Cam {
        &self.tlb_sw
    }

    /// Mutable TLB2 access.
    pub fn tlb_sw_mut(&mut self) -> &mut Cam {
        &mut self.tlb_sw
    }

    /// The coprocessor register file.
    pub fn regs(&self) -> &RegFile {
        &self.regs
    }

    /// Mutable register-file access (the OS saves/restores it around
    /// context switches and writes the PID register).
    pub fn regs_mut(&mut self) -> &mut RegFile {
        &mut self.regs
    }

    /// The software-dispatch operand block.
    pub fn operand_block(&self) -> &OperandBlock {
        &self.operand
    }

    /// Mutable operand-block access.
    pub fn operand_block_mut(&mut self) -> &mut OperandBlock {
        &mut self.operand
    }

    /// Consume the fault-status register (OS fault handler).
    pub fn take_fault(&mut self) -> Option<FaultInfo> {
        self.last_fault.take()
    }

    /// The dispatch counters accumulated since the last drain.
    pub fn dispatch_counters(&self) -> DispatchCounters {
        self.dispatch
    }

    /// Drain the dispatch counters (the OS reads them per run span).
    pub fn take_dispatch_counters(&mut self) -> DispatchCounters {
        std::mem::take(&mut self.dispatch)
    }
}

impl Coprocessor for Rfu {
    fn exec_custom(
        &mut self,
        pid: u32,
        cid: u8,
        op_a: u32,
        op_b: u32,
        rd: u8,
        ret_addr: u32,
        budget: u64,
    ) -> CoprocResult {
        let key = TupleKey::new(pid, cid);
        // Figure 1, stage 1: TLB1 -> PFU.
        if let Some(pfu_raw) = self.tlb_hw.lookup(key) {
            let pfu = pfu_raw as PfuIndex;
            if !self.pfus.is_loaded(pfu) {
                self.last_fault = Some(FaultInfo::EmptyPfu { key, pfu });
                self.dispatch.faults += 1;
                return CoprocResult::Fault;
            }
            let mut capped = if self.config.interruptible {
                budget.min(self.config.max_instruction_cycles)
            } else {
                self.config.max_instruction_cycles
            };
            // The watchdog bounds how long the slot may clock without a
            // completion: cap this issue at the remaining allowance so a
            // hung circuit trips after exactly `watchdog_cycles` clocks
            // instead of burning the whole quantum first.
            if let Some(wd) = self.config.watchdog_cycles {
                let remaining = wd.saturating_sub(self.pfus.health(pfu).busy_since_done).max(1);
                capped = capped.min(remaining);
            }
            return match self.pfus.run(pfu, op_a, op_b, capped) {
                RunOutcome::Done { value, cycles } => {
                    self.dispatch.hw_dispatches += 1;
                    CoprocResult::Done { value, cycles }
                }
                RunOutcome::OutOfBudget { cycles } => {
                    if let Some(wd) = self.config.watchdog_cycles {
                        if self.pfus.health(pfu).busy_since_done >= wd {
                            self.last_fault = Some(FaultInfo::Watchdog { key, pfu, burned: cycles });
                            self.dispatch.faults += 1;
                            return CoprocResult::Fault;
                        }
                    }
                    if cycles >= self.config.max_instruction_cycles
                        && (budget > capped || !self.config.interruptible)
                    {
                        // The circuit had all the time the hardware
                        // allows and still did not finish: runaway.
                        self.last_fault = Some(FaultInfo::Runaway { key, pfu });
                        self.dispatch.faults += 1;
                        CoprocResult::Fault
                    } else {
                        self.dispatch.hw_dispatches += 1;
                        CoprocResult::Interrupted { cycles }
                    }
                }
            };
        }
        // Figure 1, stage 2: TLB2 -> software alternative.
        if let Some(target) = self.tlb_sw.lookup(key) {
            self.operand.latch(op_a, op_b, rd, ret_addr);
            self.dispatch.sw_dispatches += 1;
            return CoprocResult::SoftwareDispatch { target, cycles: 1 };
        }
        // Figure 1, stage 3: fault to the OS.
        self.last_fault = Some(FaultInfo::Miss { key });
        self.dispatch.faults += 1;
        CoprocResult::Fault
    }

    fn write_reg(&mut self, index: u8, value: u32) {
        self.regs.write(index, value);
    }

    fn read_reg(&self, index: u8) -> u32 {
        self.regs.read(index)
    }

    fn read_operand(&self, sel: OperandSel) -> u32 {
        match sel {
            OperandSel::A => self.operand.op_a,
            OperandSel::B => self.operand.op_b,
        }
    }

    fn write_result(&mut self, value: u32) {
        self.operand.result = value;
    }

    fn return_from_software(&mut self) -> RetInfo {
        RetInfo { rd: self.operand.rd(), result: self.operand.result, ret_addr: self.operand.ret_addr }
    }

    fn write_operand_field(&mut self, field: u8, value: u32) {
        self.operand.set_field(field, value);
    }

    fn read_operand_field(&self, field: u8) -> u32 {
        self.operand.field(field)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavioral::FixedLatency;
    use crate::circuit::PfuCircuit;

    fn unit_with_adder(pid: u32, cid: u8, pfu: PfuIndex) -> Rfu {
        let mut rfu = Rfu::new(RfuConfig::default());
        let circuit: Box<dyn PfuCircuit> =
            Box::new(FixedLatency::new("add", 1, 4, |a, b| a.wrapping_add(b)));
        rfu.pfus_mut().load(pfu, circuit);
        let slot = rfu.tlb_hw().free_slot().expect("slot");
        rfu.tlb_hw_mut().insert(slot, TupleKey::new(pid, cid), pfu as u32);
        rfu
    }

    #[test]
    fn hardware_dispatch_hits() {
        let mut rfu = unit_with_adder(1, 0, 2);
        match rfu.exec_custom(1, 0, 30, 12, 3, 0x100, 1000) {
            CoprocResult::Done { value: 42, cycles: 1 } => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(rfu.pfus().counters().read(2), 1);
    }

    #[test]
    fn pid_mismatch_faults_without_tlb_flush() {
        // Another process using the same CID misses, because the key is
        // the (PID, CID) tuple — no flush on context switch needed.
        let mut rfu = unit_with_adder(1, 0, 0);
        match rfu.exec_custom(2, 0, 1, 1, 0, 0, 1000) {
            CoprocResult::Fault => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(rfu.take_fault(), Some(FaultInfo::Miss { key: TupleKey::new(2, 0) }));
        // Process 1 still hits afterwards.
        assert!(matches!(rfu.exec_custom(1, 0, 1, 1, 0, 0, 1000), CoprocResult::Done { .. }));
    }

    #[test]
    fn software_dispatch_latches_operands() {
        let mut rfu = Rfu::new(RfuConfig::default());
        let slot = rfu.tlb_sw().free_slot().expect("slot");
        rfu.tlb_sw_mut().insert(slot, TupleKey::new(1, 5), 0x8000);
        match rfu.exec_custom(1, 5, 111, 222, 7, 0x44, 1000) {
            CoprocResult::SoftwareDispatch { target: 0x8000, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(rfu.read_operand(OperandSel::A), 111);
        assert_eq!(rfu.read_operand(OperandSel::B), 222);
        rfu.write_result(333);
        let info = rfu.return_from_software();
        assert_eq!(info.rd, 7);
        assert_eq!(info.result, 333);
        assert_eq!(info.ret_addr, 0x44);
    }

    #[test]
    fn hardware_dispatch_preferred_over_software() {
        let mut rfu = unit_with_adder(1, 0, 0);
        let slot = rfu.tlb_sw().free_slot().expect("slot");
        rfu.tlb_sw_mut().insert(slot, TupleKey::new(1, 0), 0x8000);
        assert!(matches!(rfu.exec_custom(1, 0, 1, 2, 0, 0, 1000), CoprocResult::Done { .. }));
    }

    #[test]
    fn stale_tlb_entry_faults_as_empty_pfu() {
        let mut rfu = unit_with_adder(1, 0, 0);
        rfu.pfus_mut().unload(0);
        assert!(matches!(rfu.exec_custom(1, 0, 1, 2, 0, 0, 1000), CoprocResult::Fault));
        assert!(matches!(rfu.take_fault(), Some(FaultInfo::EmptyPfu { pfu: 0, .. })));
    }

    #[test]
    fn runaway_circuit_faults() {
        #[derive(Debug)]
        struct Stuck;
        impl PfuCircuit for Stuck {
            fn clock(&mut self, _: u32, _: u32, _: bool) -> crate::circuit::CircuitClock {
                crate::circuit::CircuitClock { result: 0, done: false }
            }
            fn save_state(&self) -> crate::circuit::CircuitState {
                crate::circuit::CircuitState(vec![0])
            }
            fn load_state(&mut self, _: &crate::circuit::CircuitState) -> Result<(), proteus_fabric::FabricError> {
                Ok(())
            }
        }
        let mut rfu = Rfu::new(RfuConfig { max_instruction_cycles: 100, ..RfuConfig::default() });
        rfu.pfus_mut().load(0, Box::new(Stuck));
        rfu.tlb_hw_mut().insert(0, TupleKey::new(1, 0), 0);
        match rfu.exec_custom(1, 0, 0, 0, 0, 0, u64::MAX) {
            CoprocResult::Fault => {}
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(rfu.take_fault(), Some(FaultInfo::Runaway { .. })));
    }

    #[test]
    fn watchdog_trips_on_stuck_done_and_reports_burned_cycles() {
        let mut rfu =
            Rfu::new(RfuConfig { watchdog_cycles: Some(200), ..RfuConfig::default() });
        let circuit: Box<dyn PfuCircuit> = Box::new(FixedLatency::new("add", 5, 4, |a, b| a + b));
        rfu.pfus_mut().load(0, circuit);
        rfu.tlb_hw_mut().insert(0, TupleKey::new(1, 0), 0);
        // Healthy circuit under a watchdog: completes normally.
        assert!(matches!(rfu.exec_custom(1, 0, 1, 2, 0, 0, 1000), CoprocResult::Done { .. }));
        // Stick the slot's done signal: the same dispatch now burns the
        // watchdog allowance and faults, reporting the burned cycles.
        rfu.pfus_mut().health_mut(0).stuck_done = true;
        match rfu.exec_custom(1, 0, 1, 2, 0, 0, 1_000_000) {
            CoprocResult::Fault => {}
            other => panic!("unexpected {other:?}"),
        }
        match rfu.take_fault() {
            Some(FaultInfo::Watchdog { pfu: 0, burned: 200, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn watchdog_accumulates_across_interrupted_reissues() {
        let mut rfu =
            Rfu::new(RfuConfig { watchdog_cycles: Some(100), ..RfuConfig::default() });
        let circuit: Box<dyn PfuCircuit> = Box::new(FixedLatency::new("slow", 60, 4, |a, _| a));
        rfu.pfus_mut().load(0, circuit);
        rfu.pfus_mut().health_mut(0).stuck_done = true;
        rfu.tlb_hw_mut().insert(0, TupleKey::new(1, 0), 0);
        // Short budgets interrupt below the watchdog threshold...
        assert!(matches!(rfu.exec_custom(1, 0, 1, 0, 0, 0, 40), CoprocResult::Interrupted { cycles: 40 }));
        assert!(matches!(rfu.exec_custom(1, 0, 1, 0, 0, 0, 40), CoprocResult::Interrupted { cycles: 40 }));
        // ...until the slot's cumulative busy-without-done crosses it.
        assert!(matches!(rfu.exec_custom(1, 0, 1, 0, 0, 0, 40), CoprocResult::Fault));
        assert!(matches!(
            rfu.take_fault(),
            Some(FaultInfo::Watchdog { pfu: 0, burned: 20, .. })
        ));
    }

    #[test]
    fn no_watchdog_preserves_seed_behaviour() {
        // watchdog_cycles: None leaves the runaway path untouched.
        let mut rfu = Rfu::new(RfuConfig { max_instruction_cycles: 100, ..RfuConfig::default() });
        let circuit: Box<dyn PfuCircuit> = Box::new(FixedLatency::new("slow", 50, 4, |a, _| a));
        rfu.pfus_mut().load(0, circuit);
        rfu.tlb_hw_mut().insert(0, TupleKey::new(1, 0), 0);
        assert!(matches!(rfu.exec_custom(1, 0, 9, 0, 0, 0, 10), CoprocResult::Interrupted { cycles: 10 }));
        assert!(matches!(rfu.exec_custom(1, 0, 9, 0, 0, 0, 1000), CoprocResult::Done { .. }));
    }

    #[test]
    fn short_budget_interrupts_not_faults() {
        let mut rfu = Rfu::new(RfuConfig { max_instruction_cycles: 100, ..RfuConfig::default() });
        let circuit: Box<dyn PfuCircuit> = Box::new(FixedLatency::new("slow", 50, 4, |a, _| a));
        rfu.pfus_mut().load(0, circuit);
        rfu.tlb_hw_mut().insert(0, TupleKey::new(1, 0), 0);
        match rfu.exec_custom(1, 0, 9, 0, 0, 0, 10) {
            CoprocResult::Interrupted { cycles: 10 } => {}
            other => panic!("unexpected {other:?}"),
        }
        // Reissue finishes the remaining 40 cycles.
        match rfu.exec_custom(1, 0, 9, 0, 0, 0, 1000) {
            CoprocResult::Done { value: 9, cycles: 40 } => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
