//! Workload bundles ready to spawn into a POrSCHE kernel.

use porsche::kernel::SpawnSpec;
use porsche::process::CircuitSpec;

use crate::guest::{
    alpha_accelerated, alpha_software, echo_accelerated, echo_software, twofish_accelerated,
    twofish_software, BuiltProgram,
};
use crate::twofish::BlockCircuit;
use crate::{alpha, echo};

/// The key every Twofish workload instance uses (the circuit is
/// key-specialised, like a key-baked bitstream).
pub const TWOFISH_KEY: [u8; 16] = *b"ProteusDATE2003!";

/// Configuration-image identities of the workload circuits (equal image
/// = identical static configuration = shareable under §4.2 sharing).
pub mod image {
    /// The alpha pixel-blend configuration.
    pub const ALPHA_BLEND: u64 = 0x0A1F_A001;
    /// The echo gain-scale configuration.
    pub const ECHO_SCALE: u64 = 0x0EC0_0001;
    /// The echo saturating-add configuration.
    pub const ECHO_SAT_ADD: u64 = 0x0EC0_0002;
    /// The Twofish block configuration specialised to [`super::TWOFISH_KEY`].
    pub const TWOFISH_BLOCK: u64 = 0x07F1_5400;
}

/// Which of the paper's three applications to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// Alpha blending (1 custom instruction).
    Alpha,
    /// Twofish encryption (1 custom instruction).
    Twofish,
    /// Audio echo (2 custom instructions in a tight loop).
    Echo,
}

impl AppKind {
    /// All three applications.
    pub const ALL: [AppKind; 3] = [AppKind::Alpha, AppKind::Twofish, AppKind::Echo];

    /// Series label.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Alpha => "alpha",
            AppKind::Twofish => "twofish",
            AppKind::Echo => "echo",
        }
    }

    /// How many custom instructions the accelerated form registers.
    pub fn circuit_count(self) -> usize {
        match self {
            AppKind::Echo => 2,
            _ => 1,
        }
    }
}

/// Parameters for building one workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Application.
    pub kind: AppKind,
    /// Use custom instructions (`false` = pure-software baseline).
    pub accelerated: bool,
    /// Work units per pass: pixels (alpha), samples (echo) or 16-byte
    /// blocks (twofish).
    pub size: usize,
    /// Passes over the data.
    pub passes: u32,
    /// Data seed.
    pub seed: u32,
}

impl WorkloadConfig {
    /// An accelerated workload with the given size and passes.
    pub fn new(kind: AppKind, size: usize, passes: u32) -> Self {
        Self { kind, accelerated: true, size, passes, seed: 0xC0FF_EE01 }
    }

    /// Switch to the pure-software variant.
    pub fn software(mut self) -> Self {
        self.accelerated = false;
        self
    }
}

/// A built workload: assembled program, expected checksum, and a circuit
/// factory (each spawned instance gets fresh circuit instances, since
/// circuit state is per-process).
#[derive(Debug)]
pub struct WorkloadSpec {
    config: WorkloadConfig,
    built: BuiltProgram,
}

impl WorkloadSpec {
    /// Assemble the guest program and compute the ground truth.
    pub fn build(config: WorkloadConfig) -> Self {
        let built = match (config.kind, config.accelerated) {
            (AppKind::Alpha, true) => alpha_accelerated(config.size, config.passes, config.seed),
            (AppKind::Alpha, false) => alpha_software(config.size, config.passes, config.seed),
            (AppKind::Echo, true) => {
                echo_accelerated(config.size, config.passes, config.size / 8 + 1, 0x80, config.seed)
            }
            (AppKind::Echo, false) => {
                echo_software(config.size, config.passes, config.size / 8 + 1, 0x80, config.seed)
            }
            (AppKind::Twofish, true) => {
                twofish_accelerated(config.size, config.passes, &TWOFISH_KEY, config.seed)
            }
            (AppKind::Twofish, false) => {
                twofish_software(config.size, config.passes, &TWOFISH_KEY, config.seed)
            }
        };
        Self { config, built }
    }

    /// The build parameters.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// The checksum every instance must exit with.
    pub fn expected_checksum(&self) -> u32 {
        self.built.expected_checksum
    }

    /// The assembled program.
    pub fn program(&self) -> &proteus_isa::Program {
        &self.built.program
    }

    /// Fresh circuit registrations for one process instance.
    /// `with_software_alt` controls whether the §4.3 software
    /// alternatives are registered alongside the hardware.
    pub fn circuits(&self, with_software_alt: bool) -> Vec<CircuitSpec> {
        if !self.config.accelerated {
            return Vec::new();
        }
        let sym = |name: &str| {
            let addr = self.built.program.symbol(name);
            debug_assert!(addr.is_some(), "missing software-alternative symbol {name}");
            addr
        };
        match self.config.kind {
            AppKind::Alpha => vec![CircuitSpec {
                cid: 0,
                circuit: alpha::blend_circuit(),
                software_alt: with_software_alt.then(|| sym("sw_blend")).flatten(),
                image: Some(image::ALPHA_BLEND),
            }],
            AppKind::Echo => vec![
                CircuitSpec {
                    cid: 0,
                    circuit: echo::scale_circuit(),
                    software_alt: with_software_alt.then(|| sym("sw_scale")).flatten(),
                    image: Some(image::ECHO_SCALE),
                },
                CircuitSpec {
                    cid: 1,
                    circuit: echo::sat_add_circuit(),
                    software_alt: with_software_alt.then(|| sym("sw_satadd")).flatten(),
                    image: Some(image::ECHO_SAT_ADD),
                },
            ],
            AppKind::Twofish => vec![CircuitSpec {
                cid: 0,
                circuit: Box::new(BlockCircuit::new(&TWOFISH_KEY)),
                software_alt: with_software_alt.then(|| sym("sw_tf")).flatten(),
                // Key-specialised bitstream: shareable only among users
                // of the same key, which all workload instances are.
                image: Some(image::TWOFISH_BLOCK),
            }],
        }
    }

    /// A ready-to-spawn [`SpawnSpec`] for one instance.
    pub fn spawn_spec(&self, with_software_alt: bool) -> SpawnSpec {
        let entry = self.built.program.symbol("start").expect("guest programs define start");
        let mut spec = SpawnSpec::new(&self.built.program).entry(entry);
        for c in self.circuits(with_software_alt) {
            spec = spec.circuit(c);
        }
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_specs_build_for_all_kinds_and_variants() {
        for kind in AppKind::ALL {
            for accelerated in [true, false] {
                let mut cfg = WorkloadConfig::new(kind, 16, 1);
                if !accelerated {
                    cfg = cfg.software();
                }
                let spec = WorkloadSpec::build(cfg);
                let expected_circuits = if accelerated { kind.circuit_count() } else { 0 };
                assert_eq!(spec.circuits(true).len(), expected_circuits, "{kind:?}");
                let _ = spec.spawn_spec(true);
            }
        }
    }

    #[test]
    fn software_alt_toggle_controls_registration() {
        let spec = WorkloadSpec::build(WorkloadConfig::new(AppKind::Alpha, 16, 1));
        assert!(spec.circuits(true)[0].software_alt.is_some());
        assert!(spec.circuits(false)[0].software_alt.is_none());
    }
}
