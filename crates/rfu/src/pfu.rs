//! The PFU array: circuit slots, status registers and completion
//! counters.

use crate::circuit::{CircuitState, PfuCircuit};
use crate::counters::UsageCounters;

/// Index of a PFU within the array.
pub type PfuIndex = usize;

/// Outcome of clocking a PFU through (part of) an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The circuit raised `done` after `cycles` clocks.
    Done {
        /// Result bus value on the completing cycle.
        value: u32,
        /// Clocks consumed (≥ 1).
        cycles: u64,
    },
    /// The budget expired first; the status register now holds `init`
    /// low so a later reissue resumes the instruction (§4.4).
    OutOfBudget {
        /// Clocks consumed (== the budget).
        cycles: u64,
    },
}

/// Per-PFU health and quarantine state (the fault subsystem's view of
/// one slot, kept alongside the §4.5 completion counters).
///
/// Health survives [`PfuArray::load`]/[`PfuArray::unload`]: faults are a
/// property of the *slot* (its configuration SRAM and `done` wiring),
/// not of whichever circuit happens to occupy it, so re-installing a
/// circuit must not erase quarantine history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PfuHealth {
    /// Hard faults the OS has recorded against this slot (watchdog
    /// trips that were not explained by repairable corruption).
    pub fault_count: u32,
    /// Recovery reloads attempted since the last completed instruction
    /// (drives retry backoff; reset when an instruction completes).
    pub retries: u32,
    /// The OS has quarantined this slot: replacement policies and
    /// placement must stop allocating it.
    pub quarantined: bool,
    /// Injected stuck-at-0 fault on the `done` signal: the circuit
    /// clocks but completion never reaches the status register.
    pub stuck_done: bool,
    /// The resident static configuration frames are SEU-damaged (a CRC
    /// readback would fail); the circuit produces no usable output
    /// until reconfigured.
    pub config_corrupt: bool,
    /// Watchdog accumulator: cycles this slot has clocked since it last
    /// raised `done` (across interrupted reissues).
    pub busy_since_done: u64,
}

impl PfuHealth {
    /// Whether the slot currently executes usefully.
    pub fn is_faulty(&self) -> bool {
        self.stuck_done || self.config_corrupt
    }
}

#[derive(Debug)]
struct Slot {
    circuit: Option<Box<dyn PfuCircuit>>,
    /// The 1-bit status register of §4.4. Reset value is 1 so the first
    /// issue presents `init` high; thereafter `done` flows through it.
    status: bool,
    health: PfuHealth,
}

/// The array of Programmable Function Units.
#[derive(Debug)]
pub struct PfuArray {
    slots: Vec<Slot>,
    counters: UsageCounters,
    busy_cycles: u64,
}

impl PfuArray {
    /// An array of `count` empty PFUs.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn new(count: usize) -> Self {
        assert!(count > 0, "need at least one PFU");
        Self {
            slots: (0..count)
                .map(|_| Slot { circuit: None, status: true, health: PfuHealth::default() })
                .collect(),
            counters: UsageCounters::new(count),
            busy_cycles: 0,
        }
    }

    /// Number of PFUs.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if the array has no PFUs (never; see [`PfuArray::new`]).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether `pfu` currently holds a circuit.
    pub fn is_loaded(&self, pfu: PfuIndex) -> bool {
        self.slots[pfu].circuit.is_some()
    }

    /// Indices of PFUs without a circuit.
    pub fn free_pfus(&self) -> Vec<PfuIndex> {
        (0..self.len()).filter(|&i| !self.is_loaded(i)).collect()
    }

    /// Indices of PFUs the OS may allocate: empty and not quarantined.
    pub fn available_pfus(&self) -> Vec<PfuIndex> {
        (0..self.len())
            .filter(|&i| !self.is_loaded(i) && !self.slots[i].health.quarantined)
            .collect()
    }

    /// This slot's health/quarantine state.
    pub fn health(&self, pfu: PfuIndex) -> PfuHealth {
        self.slots[pfu].health
    }

    /// Mutable health access (the OS fault handler and the fault
    /// injector write it).
    pub fn health_mut(&mut self, pfu: PfuIndex) -> &mut PfuHealth {
        &mut self.slots[pfu].health
    }

    /// Full (re)configuration: install `circuit`, resetting the status
    /// register to 1. Returns the evicted circuit and its status bit, if
    /// any (the OS decides whether to save its state).
    ///
    /// A full configuration load rewrites the static frames, so it
    /// clears [`PfuHealth::config_corrupt`] and restarts the watchdog
    /// accumulator — but it does *not* touch `fault_count`,
    /// `quarantined` or `stuck_done`: those describe the slot itself,
    /// and a re-installed circuit must not launder quarantine history.
    pub fn load(
        &mut self,
        pfu: PfuIndex,
        circuit: Box<dyn PfuCircuit>,
    ) -> Option<(Box<dyn PfuCircuit>, bool)> {
        let slot = &mut self.slots[pfu];
        let old_status = slot.status;
        let old = slot.circuit.replace(circuit);
        slot.status = true;
        slot.health.config_corrupt = false;
        slot.health.busy_since_done = 0;
        old.map(|c| (c, old_status))
    }

    /// Remove the circuit from `pfu`, returning it with its status bit.
    ///
    /// Like [`PfuArray::load`], this clears only the configuration-tied
    /// health (`config_corrupt`, the watchdog accumulator); slot-level
    /// history (`fault_count`, `quarantined`, `stuck_done`) persists.
    pub fn unload(&mut self, pfu: PfuIndex) -> Option<(Box<dyn PfuCircuit>, bool)> {
        let slot = &mut self.slots[pfu];
        let status = slot.status;
        let old = slot.circuit.take();
        slot.status = true;
        slot.health.config_corrupt = false;
        slot.health.busy_since_done = 0;
        old.map(|c| (c, status))
    }

    /// Restore a previously saved status bit (used when swapping a
    /// partially executed instruction back in).
    pub fn set_status(&mut self, pfu: PfuIndex, status: bool) {
        self.slots[pfu].status = status;
    }

    /// The status bit (true = next issue starts a fresh invocation).
    pub fn status(&self, pfu: PfuIndex) -> bool {
        self.slots[pfu].status
    }

    /// Save the loaded circuit's state frames without unloading.
    pub fn save_state(&self, pfu: PfuIndex) -> Option<CircuitState> {
        self.slots[pfu].circuit.as_ref().map(|c| c.save_state())
    }

    /// Clock `pfu` until `done` or until `budget` cycles elapse,
    /// implementing the status-register init/done protocol.
    ///
    /// # Panics
    ///
    /// Panics if the PFU is empty — the dispatch layer must check
    /// [`PfuArray::is_loaded`] first.
    pub fn run(&mut self, pfu: PfuIndex, op_a: u32, op_b: u32, budget: u64) -> RunOutcome {
        if budget == 0 {
            return RunOutcome::OutOfBudget { cycles: 0 };
        }
        let slot = &mut self.slots[pfu];
        if slot.health.is_faulty() {
            // A stuck `done` or corrupt configuration burns the whole
            // budget without completing: the clock runs, the status
            // register never sees `done`. The circuit model is not
            // advanced — after repair, a reissue with `init` high
            // restarts the instruction cleanly.
            slot.status = false;
            slot.health.busy_since_done += budget;
            self.busy_cycles += budget;
            return RunOutcome::OutOfBudget { cycles: budget };
        }
        let circuit = slot.circuit.as_mut().expect("run on empty PFU");
        // The status bit presents `init` on the first clock and tracks
        // `done` thereafter; `run_clocks` lets analytic circuit models
        // fast-forward the whole span in O(1) instead of clocking
        // per cycle.
        let (used, result) = circuit.run_clocks(op_a, op_b, slot.status, budget);
        debug_assert!(used >= 1 && used <= budget, "circuit consumed {used} of {budget}");
        slot.status = result.is_some();
        self.busy_cycles += used;
        match result {
            Some(value) => {
                slot.health.busy_since_done = 0;
                slot.health.retries = 0;
                self.counters.record_completion(pfu);
                RunOutcome::Done { value, cycles: used }
            }
            None => {
                slot.health.busy_since_done += used;
                RunOutcome::OutOfBudget { cycles: used }
            }
        }
    }

    /// Total cycles any PFU in the array has spent clocking circuits —
    /// the hardware-side mirror of the ledger's custom-execute
    /// category.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// The completion-counter bank (§4.5).
    pub fn counters(&self) -> &UsageCounters {
        &self.counters
    }

    /// Mutable counter access (OS read-and-clear).
    pub fn counters_mut(&mut self) -> &mut UsageCounters {
        &mut self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavioral::FixedLatency;

    fn add_circuit(latency: u32) -> Box<dyn PfuCircuit> {
        Box::new(FixedLatency::new("add", latency, 4, |a, b| a.wrapping_add(b)))
    }

    #[test]
    fn single_cycle_instruction() {
        let mut arr = PfuArray::new(4);
        arr.load(0, add_circuit(1));
        match arr.run(0, 2, 3, 100) {
            RunOutcome::Done { value: 5, cycles: 1 } => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(arr.counters().read(0), 1);
    }

    #[test]
    fn interrupt_and_reissue_resumes() {
        let mut arr = PfuArray::new(1);
        arr.load(0, add_circuit(10));
        // First issue: budget 4 -> interrupted.
        match arr.run(0, 1, 2, 4) {
            RunOutcome::OutOfBudget { cycles: 4 } => {}
            other => panic!("unexpected {other:?}"),
        }
        assert!(!arr.status(0), "status holds init low for the reissue");
        assert_eq!(arr.counters().read(0), 0, "no completion counted yet");
        // Reissue: 6 more cycles finish the 10-cycle instruction.
        match arr.run(0, 1, 2, 100) {
            RunOutcome::Done { value: 3, cycles: 6 } => {}
            other => panic!("unexpected {other:?}"),
        }
        assert!(arr.status(0), "status back to 1, ready for next invocation");
        assert_eq!(arr.counters().read(0), 1, "counted once despite the interrupt");
    }

    #[test]
    fn reconfiguration_resets_status() {
        let mut arr = PfuArray::new(1);
        arr.load(0, add_circuit(10));
        arr.run(0, 1, 2, 3); // leave mid-instruction
        assert!(!arr.status(0));
        let evicted = arr.load(0, add_circuit(1));
        assert!(evicted.is_some());
        assert!(arr.status(0), "full reconfiguration resets the status register");
    }

    #[test]
    fn swap_out_and_back_preserves_progress() {
        let mut arr = PfuArray::new(1);
        arr.load(0, add_circuit(10));
        arr.run(0, 5, 6, 4);
        let (circuit, status) = arr.unload(0).expect("loaded");
        // Something else uses the PFU...
        arr.load(0, add_circuit(1));
        arr.run(0, 1, 1, 10);
        // ...then the original comes back: circuit state + status bit.
        arr.load(0, circuit);
        arr.set_status(0, status);
        match arr.run(0, 5, 6, 100) {
            RunOutcome::Done { value: 11, cycles: 6 } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn free_pfus_reports_holes() {
        let mut arr = PfuArray::new(3);
        arr.load(1, add_circuit(1));
        assert_eq!(arr.free_pfus(), vec![0, 2]);
    }

    #[test]
    fn reload_round_trips_health_not_just_status() {
        // Satellite fix: a re-installed circuit must not launder the
        // slot's quarantine history, while configuration-tied health
        // (corrupt frames, watchdog accumulator) resets with the load.
        let mut arr = PfuArray::new(2);
        arr.load(0, add_circuit(10));
        {
            let h = arr.health_mut(0);
            h.fault_count = 3;
            h.quarantined = true;
            h.stuck_done = true;
            h.config_corrupt = true;
        }
        arr.run(0, 1, 2, 7); // faulty run: accumulates watchdog cycles
        assert_eq!(arr.health(0).busy_since_done, 7);

        let (circuit, status) = arr.unload(0).expect("loaded");
        assert!(!status, "faulty run left the status bit low");
        let h = arr.health(0);
        assert_eq!(
            (h.fault_count, h.quarantined, h.stuck_done),
            (3, true, true),
            "slot-level history survives unload"
        );
        assert!(!h.config_corrupt, "corrupt frames left with the configuration");
        assert_eq!(h.busy_since_done, 0, "watchdog accumulator reset");

        arr.load(0, circuit);
        let h = arr.health(0);
        assert_eq!(
            (h.fault_count, h.quarantined, h.stuck_done),
            (3, true, true),
            "re-installing a circuit keeps quarantine history"
        );
        assert!(arr.status(0), "full reconfiguration still resets the status register");
    }

    #[test]
    fn available_pfus_excludes_quarantined_slots() {
        let mut arr = PfuArray::new(3);
        arr.load(1, add_circuit(1));
        arr.health_mut(2).quarantined = true;
        assert_eq!(arr.free_pfus(), vec![0, 2], "free list is occupancy only");
        assert_eq!(arr.available_pfus(), vec![0], "allocation skips quarantine");
    }

    #[test]
    fn faulty_slot_burns_budget_without_completing() {
        let mut arr = PfuArray::new(1);
        arr.load(0, add_circuit(1)); // 1-cycle adder: would finish instantly
        arr.health_mut(0).stuck_done = true;
        match arr.run(0, 2, 3, 50) {
            RunOutcome::OutOfBudget { cycles: 50 } => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(arr.counters().read(0), 0, "no completion counted");
        assert_eq!(arr.health(0).busy_since_done, 50);
        // Repair (clear the stuck fault) and reissue: init restarts the
        // instruction and it completes correctly.
        arr.health_mut(0).stuck_done = false;
        arr.set_status(0, true);
        match arr.run(0, 2, 3, 50) {
            RunOutcome::Done { value: 5, cycles: 1 } => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(arr.health(0).busy_since_done, 0, "completion clears the accumulator");
    }
}
