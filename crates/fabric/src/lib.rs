//! FPL fabric substrate for the Proteus reconfigurable processor.
//!
//! This crate models the Field Programmable Logic that backs the
//! Programmable Function Units (PFUs) of the Proteus architecture
//! (Dales, DATE 2003). The paper assumes a Xilinx-Virtex-like fabric with
//! three properties the management layer depends on:
//!
//! 1. **No IOBs** — PFU circuits only connect to the processor datapath, so
//!    the bitstream format simply has no way to express pad drivers and
//!    misconfiguration cannot damage hardware.
//! 2. **Mux-based routing** — every routing choice is a multiplexer
//!    selector, so no configuration value can create a short circuit.
//! 3. **Split configuration** — static frames (LUT contents and routing)
//!    are separate from state frames (CLB register values), so a resident
//!    circuit's context can be saved and restored by moving only the small
//!    state section.
//!
//! The crate provides a gate-level netlist IR ([`netlist::Netlist`]), a
//! builder library for constructing datapath circuits
//! ([`builder::NetlistBuilder`]), placement onto a CLB grid ([`place`]),
//! bitstream encoding/decoding with separate static and state frames
//! ([`bitstream`]), a clocked simulator that executes circuits *from the
//! decoded bitstream* ([`device::Device`]), and validation ([`validate`]).
//!
//! # Example
//!
//! ```
//! use proteus_fabric::builder::NetlistBuilder;
//! use proteus_fabric::place::FabricDims;
//! use proteus_fabric::compile;
//! use proteus_fabric::device::Device;
//!
//! # fn main() -> Result<(), proteus_fabric::FabricError> {
//! // A circuit that adds its two 32-bit operands in a single cycle.
//! let mut b = NetlistBuilder::new();
//! let a = b.input_bus("op_a", 32);
//! let c = b.input_bus("op_b", 32);
//! let sum = b.add(&a, &c);
//! b.output_bus("result", &sum);
//! let done = b.const_bit(true);
//! b.output_bit("done", done);
//! let netlist = b.finish()?;
//!
//! let compiled = compile(&netlist, FabricDims::PFU)?;
//! let mut device = Device::new(FabricDims::PFU);
//! device.load(compiled.bitstream())?;
//! let out = device.clock(7, 35, true)?;
//! assert_eq!(out.result, 42);
//! assert!(out.done);
//! # Ok(())
//! # }
//! ```

// Fault-handling code must surface typed errors, not panic: the kernel
// recovery ladder is built on these paths (see DESIGN.md §9).
#![deny(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod bitstream;
pub mod builder;
pub mod device;
pub mod error;
pub mod fault;
pub mod library;
pub mod netlist;
pub mod place;
pub mod sim;
pub mod synth;
pub mod validate;

pub use bitstream::{Bitstream, CONFIG_BYTES_PER_CLB};
pub use fault::{FaultConfig, FaultInjector, FaultKind};
pub use builder::NetlistBuilder;
pub use device::{ClockOutput, Device};
pub use error::FabricError;
pub use netlist::{Netlist, NodeId};
pub use place::{FabricDims, Placement};

/// Compile a netlist onto a fabric of the given dimensions, producing a
/// loadable [`Bitstream`].
///
/// This performs placement (assigning LUTs and flip-flops to CLBs), routing
/// (expressing every signal source as a routing-mux selector) and bitstream
/// encoding. The result round-trips: [`Device::load`] decodes the bitstream
/// back into an executable structure without access to the original netlist.
///
/// # Errors
///
/// Returns [`FabricError::CapacityExceeded`] if the netlist needs more CLBs
/// than the fabric has, and propagates netlist validation errors (e.g.
/// combinational cycles).
///
/// # Example
///
/// ```
/// use proteus_fabric::{compile, builder::NetlistBuilder, place::FabricDims};
/// # fn main() -> Result<(), proteus_fabric::FabricError> {
/// let mut b = NetlistBuilder::new();
/// let a = b.input_bus("op_a", 8);
/// let n = b.not_bus(&a);
/// b.output_bus("result", &n);
/// let netlist = b.finish()?;
/// let compiled = compile(&netlist, FabricDims::PFU)?;
/// assert!(compiled.bitstream().static_bytes() > 0);
/// # Ok(())
/// # }
/// ```
pub fn compile(netlist: &Netlist, dims: FabricDims) -> Result<Compiled, FabricError> {
    netlist.check()?;
    let placement = place::place(netlist, dims)?;
    let bitstream = bitstream::encode(netlist, &placement, dims)?;
    Ok(Compiled { bitstream, placement })
}

/// The output of [`compile`]: a bitstream plus the placement that produced
/// it (useful for reporting and tests).
#[derive(Debug, Clone)]
pub struct Compiled {
    bitstream: Bitstream,
    placement: Placement,
}

impl Compiled {
    /// The encoded configuration, ready for [`Device::load`].
    pub fn bitstream(&self) -> &Bitstream {
        &self.bitstream
    }

    /// Consume self, returning the bitstream.
    pub fn into_bitstream(self) -> Bitstream {
        self.bitstream
    }

    /// The placement chosen during compilation.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Total Manhattan wirelength of the compiled design (see
    /// [`Placement::wirelength`]).
    pub fn wirelength(&self, netlist: &Netlist) -> u64 {
        self.placement.wirelength(netlist, self.bitstream.dims())
    }
}
