//! Quickstart: build a tiny machine, register a custom instruction and
//! watch the OS manage it.
//!
//! Run with `cargo run --example quickstart`.

use porsche::kernel::SpawnSpec;
use porsche::process::CircuitSpec;
use proteus::machine::{Machine, MachineConfig};
use proteus_isa::assemble;
use proteus_rfu::behavioral::FixedLatency;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A guest program that multiplies two numbers with custom
    // instruction CID 0, then exits with the result.
    let program = assemble(
        "start:
            ldr   r0, =1234
            ldr   r1, =5678
            pfu   0, r2, r0, r1   ; custom instruction: multiply
            mov   r0, r2
            swi   #0              ; exit(r0)
        ",
    )?;

    // The custom hardware: a 3-cycle multiplier circuit. On first use the
    // process faults, POrSCHE loads the 54 KB configuration into a free
    // PFU, programs the dispatch TLB with the (PID, CID) tuple, and
    // reissues the instruction.
    let circuit = FixedLatency::new("mul3", 3, 4, |a, b| a.wrapping_mul(b));

    let mut machine = Machine::new(MachineConfig::default());
    let pid = machine.spawn(
        SpawnSpec::new(&program)
            .circuit(CircuitSpec { cid: 0, circuit: Box::new(circuit), software_alt: None, image: None }),
    )?;
    let report = machine.run(10_000_000)?;

    let (_, finish, result) = report.exited[0];
    println!("process {pid} exited with {result} (= 1234 * 5678) after {finish} cycles");
    println!(
        "management: {} custom-instruction fault(s), {} configuration load(s), {} bytes of config moved",
        report.stats.custom_faults,
        report.stats.config_loads,
        report.stats.config_bytes_moved(),
    );
    assert_eq!(result, 1234 * 5678);
    Ok(())
}
