//! Guest instruction set of the ProteanARM.
//!
//! The ProteanARM of the paper is an ARM7TDMI with the reconfigurable
//! function unit (RFU) attached as an on-chip coprocessor. This crate
//! defines an ARM-flavoured 32-bit instruction set with the Proteus
//! coprocessor extensions:
//!
//! * `pfu cid, rd, rn, rm` — invoke the custom instruction registered
//!   under Circuit ID `cid` with operands `rn`, `rm`, result to `rd`
//!   (paper §4.2: the `(PID, CID)` tuple is resolved by the dispatch TLBs);
//! * `mcr`/`mrc` — move data between the core register file and the RFU's
//!   16 × 32-bit coprocessor register file;
//! * `ldop`/`stres`/`retsd` — the software-dispatch support of §4.3:
//!   read the latched operand registers, write the result register, and
//!   return from a software alternative (hardware writes the result into
//!   the original destination register);
//! * `mcro`/`mrco` — privileged access to the operand-register block so
//!   the OS can preserve it across context switches.
//!
//! The encoding is this project's own clean 32-bit format (documented on
//! [`encode`]); it is *not* binary-compatible with ARM, which is
//! irrelevant to the paper's experiments — they measure cycles, not
//! opcodes. A full two-pass text [`asm`] (with `ldr rd, =imm` literal
//! pools) and a disassembler round out the toolchain.
//!
//! # Example
//!
//! ```
//! use proteus_isa::asm::assemble;
//!
//! # fn main() -> Result<(), proteus_isa::asm::AsmError> {
//! let program = assemble(
//!     r#"
//!     start:
//!         mov   r0, #10
//!         mov   r1, #32
//!         pfu   0, r2, r0, r1   ; custom instruction CID 0
//!         swi   #0              ; exit
//!     "#,
//! )?;
//! assert_eq!(program.words().len(), 4);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod cond;
pub mod decode;
pub mod encode;
pub mod instr;
pub mod regs;

pub use asm::{assemble, Program};
pub use cond::Cond;
pub use decode::{decode, DecodeError};
pub use encode::encode;
pub use instr::{BlockOp, DpOp, Instr, MemOp, Operand2, OperandSel, Shift, ShiftKind};
pub use regs::Reg;
