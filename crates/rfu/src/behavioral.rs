//! Behavioral circuit models.
//!
//! The scheduling experiments need circuits whose *timing behaviour*
//! (latency, statefulness, the init/done protocol) matches real hardware
//! without paying gate-level simulation costs on every invocation. These
//! models implement [`PfuCircuit`] exactly like [`crate::NetlistCircuit`]
//! does; for the alpha-blend instruction the integration tests prove the
//! behavioral model equivalent to the gate-level one.

use proteus_fabric::FabricError;

use crate::circuit::{CircuitClock, CircuitState, PfuCircuit};

/// A fixed-latency instruction computing `f(op_a, op_b)`.
///
/// The result appears with `done` on the `latency`-th clock after `init`.
/// Progress (cycles elapsed) is circuit state, so an interrupted
/// invocation resumes where it stopped — the same observable behaviour as
/// a gate-level counter-driven datapath.
pub struct FixedLatency {
    name: &'static str,
    latency: u32,
    func: fn(u32, u32) -> u32,
    elapsed: u32,
    latched: (u32, u32),
    state_words: usize,
}

impl std::fmt::Debug for FixedLatency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FixedLatency")
            .field("name", &self.name)
            .field("latency", &self.latency)
            .field("elapsed", &self.elapsed)
            .finish()
    }
}

impl FixedLatency {
    /// Create a model named `name` (for diagnostics) with the given
    /// per-invocation `latency` in cycles and combinational function.
    ///
    /// `state_words` sizes the state frames the OS must move on a swap
    /// (use the real circuit's register count / 32).
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero.
    pub fn new(name: &'static str, latency: u32, state_words: usize, func: fn(u32, u32) -> u32) -> Self {
        assert!(latency > 0, "instructions take at least one cycle");
        Self { name, latency, func, elapsed: 0, latched: (0, 0), state_words }
    }

    /// The model's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Per-invocation latency in cycles.
    pub fn latency(&self) -> u32 {
        self.latency
    }
}

impl PfuCircuit for FixedLatency {
    fn clock(&mut self, op_a: u32, op_b: u32, init: bool) -> CircuitClock {
        if init {
            self.elapsed = 0;
            self.latched = (op_a, op_b);
        }
        self.elapsed += 1;
        if self.elapsed >= self.latency {
            let (a, b) = self.latched;
            self.elapsed = 0;
            CircuitClock { result: (self.func)(a, b), done: true }
        } else {
            CircuitClock { result: 0, done: false }
        }
    }

    fn run_clocks(&mut self, op_a: u32, op_b: u32, init: bool, budget: u64) -> (u64, Option<u32>) {
        if init {
            self.elapsed = 0;
            self.latched = (op_a, op_b);
        }
        // `done` rises on the clock where elapsed reaches latency; at
        // least one clock always elapses.
        let remaining = u64::from(self.latency.saturating_sub(self.elapsed)).max(1);
        if remaining <= budget {
            let (a, b) = self.latched;
            self.elapsed = 0;
            (remaining, Some((self.func)(a, b)))
        } else {
            self.elapsed += budget as u32;
            (budget, None)
        }
    }

    fn save_state(&self) -> CircuitState {
        let mut words = vec![0u32; self.state_words.max(3)];
        words[0] = self.elapsed;
        words[1] = self.latched.0;
        words[2] = self.latched.1;
        CircuitState(words)
    }

    fn load_state(&mut self, state: &CircuitState) -> Result<(), FabricError> {
        if state.0.len() < 3 {
            return Err(FabricError::StateMismatch {
                detail: format!("{} needs ≥3 state words, got {}", self.name, state.0.len()),
            });
        }
        self.elapsed = state.0[0];
        self.latched = (state.0[1], state.0[2]);
        Ok(())
    }

    fn state_words(&self) -> usize {
        self.state_words.max(3)
    }
}

/// A stateful instruction: `f(state, op_a, op_b) -> (state', result)`
/// with fixed latency. Models circuits whose CLB registers carry data
/// *between* invocations (e.g. chaining modes, accumulators) — the case
/// that makes state preservation across swaps mandatory (§4.1).
pub struct StatefulLatency {
    name: &'static str,
    latency: u32,
    func: fn(u32, u32, u32) -> (u32, u32),
    state: u32,
    elapsed: u32,
    latched: (u32, u32),
    state_words: usize,
}

impl std::fmt::Debug for StatefulLatency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatefulLatency")
            .field("name", &self.name)
            .field("latency", &self.latency)
            .field("state", &self.state)
            .finish()
    }
}

impl StatefulLatency {
    /// Create a stateful model. `func(state, op_a, op_b)` returns the new
    /// state and the result; it is applied on the completing cycle.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero.
    pub fn new(
        name: &'static str,
        latency: u32,
        state_words: usize,
        initial_state: u32,
        func: fn(u32, u32, u32) -> (u32, u32),
    ) -> Self {
        assert!(latency > 0, "instructions take at least one cycle");
        Self { name, latency, func, state: initial_state, elapsed: 0, latched: (0, 0), state_words }
    }

    /// Current inter-invocation state word.
    pub fn state(&self) -> u32 {
        self.state
    }
}

impl PfuCircuit for StatefulLatency {
    fn clock(&mut self, op_a: u32, op_b: u32, init: bool) -> CircuitClock {
        if init {
            self.elapsed = 0;
            self.latched = (op_a, op_b);
        }
        self.elapsed += 1;
        if self.elapsed >= self.latency {
            let (a, b) = self.latched;
            self.elapsed = 0;
            let (next, result) = (self.func)(self.state, a, b);
            self.state = next;
            CircuitClock { result, done: true }
        } else {
            CircuitClock { result: 0, done: false }
        }
    }

    fn run_clocks(&mut self, op_a: u32, op_b: u32, init: bool, budget: u64) -> (u64, Option<u32>) {
        if init {
            self.elapsed = 0;
            self.latched = (op_a, op_b);
        }
        let remaining = u64::from(self.latency.saturating_sub(self.elapsed)).max(1);
        if remaining <= budget {
            let (a, b) = self.latched;
            self.elapsed = 0;
            let (next, result) = (self.func)(self.state, a, b);
            self.state = next;
            (remaining, Some(result))
        } else {
            self.elapsed += budget as u32;
            (budget, None)
        }
    }

    fn save_state(&self) -> CircuitState {
        let mut words = vec![0u32; self.state_words.max(4)];
        words[0] = self.elapsed;
        words[1] = self.latched.0;
        words[2] = self.latched.1;
        words[3] = self.state;
        CircuitState(words)
    }

    fn load_state(&mut self, state: &CircuitState) -> Result<(), FabricError> {
        if state.0.len() < 4 {
            return Err(FabricError::StateMismatch {
                detail: format!("{} needs ≥4 state words, got {}", self.name, state.0.len()),
            });
        }
        self.elapsed = state.0[0];
        self.latched = (state.0[1], state.0[2]);
        self.state = state.0[3];
        Ok(())
    }

    fn state_words(&self) -> usize {
        self.state_words.max(4)
    }
}

/// A fixed-latency instruction whose function captures configuration
/// data — e.g. a key-specialised bitstream like the Twofish g-function
/// circuit, where the key schedule is baked into LUT contents.
pub struct Keyed {
    name: &'static str,
    latency: u32,
    func: Box<dyn Fn(u32, u32) -> u32>,
    elapsed: u32,
    latched: (u32, u32),
    state_words: usize,
}

impl std::fmt::Debug for Keyed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Keyed")
            .field("name", &self.name)
            .field("latency", &self.latency)
            .finish_non_exhaustive()
    }
}

impl Keyed {
    /// Create a keyed model; see [`FixedLatency::new`] for the timing
    /// contract.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero.
    pub fn new(
        name: &'static str,
        latency: u32,
        state_words: usize,
        func: Box<dyn Fn(u32, u32) -> u32>,
    ) -> Self {
        assert!(latency > 0, "instructions take at least one cycle");
        Self { name, latency, func, elapsed: 0, latched: (0, 0), state_words }
    }
}

impl PfuCircuit for Keyed {
    fn clock(&mut self, op_a: u32, op_b: u32, init: bool) -> CircuitClock {
        if init {
            self.elapsed = 0;
            self.latched = (op_a, op_b);
        }
        self.elapsed += 1;
        if self.elapsed >= self.latency {
            let (a, b) = self.latched;
            self.elapsed = 0;
            CircuitClock { result: (self.func)(a, b), done: true }
        } else {
            CircuitClock { result: 0, done: false }
        }
    }

    fn run_clocks(&mut self, op_a: u32, op_b: u32, init: bool, budget: u64) -> (u64, Option<u32>) {
        if init {
            self.elapsed = 0;
            self.latched = (op_a, op_b);
        }
        let remaining = u64::from(self.latency.saturating_sub(self.elapsed)).max(1);
        if remaining <= budget {
            let (a, b) = self.latched;
            self.elapsed = 0;
            (remaining, Some((self.func)(a, b)))
        } else {
            self.elapsed += budget as u32;
            (budget, None)
        }
    }

    fn save_state(&self) -> CircuitState {
        let mut words = vec![0u32; self.state_words.max(3)];
        words[0] = self.elapsed;
        words[1] = self.latched.0;
        words[2] = self.latched.1;
        CircuitState(words)
    }

    fn load_state(&mut self, state: &CircuitState) -> Result<(), FabricError> {
        if state.0.len() < 3 {
            return Err(FabricError::StateMismatch {
                detail: format!("{} needs ≥3 state words, got {}", self.name, state.0.len()),
            });
        }
        self.elapsed = state.0[0];
        self.latched = (state.0[1], state.0[2]);
        Ok(())
    }

    fn state_words(&self) -> usize {
        self.state_words.max(3)
    }
}

/// The behavioral twin of the gate-level alpha-blend channel circuit
/// ([`proteus_fabric::library::alpha_blend_channel`]): 2 cycles,
/// `op_a` = channel | α<<8, `op_b` = destination channel.
pub fn alpha_blend() -> FixedLatency {
    FixedLatency::new("alpha_blend", 2, 16, |a, b| {
        u32::from(proteus_fabric::library::alpha_blend_ref(
            (a & 0xFF) as u8,
            (b & 0xFF) as u8,
            ((a >> 8) & 0xFF) as u8,
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_run(
        c: &mut dyn PfuCircuit,
        op_a: u32,
        op_b: u32,
        mut init: bool,
        budget: u64,
    ) -> (u64, Option<u32>) {
        // The trait-default per-cycle loop, spelled out so the test
        // compares the override against the reference protocol even if
        // the default itself changes.
        let mut used = 0u64;
        while used < budget {
            let out = c.clock(op_a, op_b, init);
            init = false;
            used += 1;
            if out.done {
                return (used, Some(out.result));
            }
        }
        (used, None)
    }

    #[test]
    fn run_clocks_fast_forward_matches_per_cycle_clocking() {
        for latency in [1u32, 2, 5, 7] {
            let mut fast = FixedLatency::new("t", latency, 4, |a, b| a ^ b);
            let mut slow = FixedLatency::new("t", latency, 4, |a, b| a ^ b);
            let mut init = true;
            for budget in [1u64, 3, 2, 10, 1, 4, 2, 9] {
                let f = fast.run_clocks(9, 5, init, budget);
                let s = default_run(&mut slow, 9, 5, init, budget);
                assert_eq!(f, s, "latency={latency} budget={budget}");
                init = f.1.is_some();
            }
            assert_eq!(fast.save_state().0, slow.save_state().0);
        }
    }

    #[test]
    fn stateful_run_clocks_matches_per_cycle_clocking() {
        let f = |s: u32, a: u32, b: u32| (s.wrapping_add(a), s ^ b);
        let mut fast = StatefulLatency::new("acc", 3, 4, 7, f);
        let mut slow = StatefulLatency::new("acc", 3, 4, 7, f);
        let mut init = true;
        for budget in [2u64, 2, 5, 1, 1, 1, 8] {
            let a = fast.run_clocks(11, 4, init, budget);
            let b = default_run(&mut slow, 11, 4, init, budget);
            assert_eq!(a, b, "budget={budget}");
            init = a.1.is_some();
        }
        assert_eq!(fast.state(), slow.state());
        assert_eq!(fast.save_state().0, slow.save_state().0);
    }

    #[test]
    fn fixed_latency_counts_cycles() {
        let mut c = FixedLatency::new("add3", 3, 4, |a, b| a + b);
        assert!(!c.clock(1, 2, true).done);
        assert!(!c.clock(1, 2, false).done);
        let out = c.clock(1, 2, false);
        assert!(out.done);
        assert_eq!(out.result, 3);
    }

    #[test]
    fn operands_latch_at_init() {
        // Changing the buses mid-instruction must not change the result —
        // the circuit latched them on init, like real hardware registers.
        let mut c = FixedLatency::new("add", 2, 4, |a, b| a + b);
        assert!(!c.clock(10, 20, true).done);
        let out = c.clock(999, 999, false);
        assert_eq!(out.result, 30);
    }

    #[test]
    fn interrupt_resume_via_state() {
        let mut c = FixedLatency::new("add5", 5, 4, |a, b| a + b);
        c.clock(7, 8, true);
        c.clock(7, 8, false);
        let saved = c.save_state();
        // Simulate being swapped out and back in.
        let mut c2 = FixedLatency::new("add5", 5, 4, |a, b| a + b);
        c2.load_state(&saved).expect("restore");
        assert!(!c2.clock(7, 8, false).done);
        assert!(!c2.clock(7, 8, false).done);
        let out = c2.clock(7, 8, false);
        assert!(out.done);
        assert_eq!(out.result, 15);
    }

    #[test]
    fn stateful_latency_chains() {
        let mut c = StatefulLatency::new("xoracc", 1, 4, 0, |s, a, _| (s ^ a, s ^ a));
        assert_eq!(c.clock(0b1010, 0, true).result, 0b1010);
        assert_eq!(c.clock(0b0110, 0, true).result, 0b1100);
        assert_eq!(c.state(), 0b1100);
    }

    #[test]
    fn alpha_blend_matches_gate_level_reference() {
        let mut c = alpha_blend();
        for (a, b, alpha) in [(0u8, 0u8, 0u8), (255, 0, 255), (10, 200, 77)] {
            let op_a = u32::from(a) | (u32::from(alpha) << 8);
            c.clock(op_a, u32::from(b), true);
            let out = c.clock(op_a, u32::from(b), false);
            assert!(out.done);
            assert_eq!(out.result as u8, proteus_fabric::library::alpha_blend_ref(a, b, alpha));
        }
    }

    #[test]
    fn short_state_rejected() {
        let mut c = FixedLatency::new("x", 1, 4, |a, _| a);
        assert!(c.load_state(&CircuitState(vec![1])).is_err());
    }
}
