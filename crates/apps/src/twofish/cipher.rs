//! The 16-round Feistel network.

use super::key::KeySchedule;

/// A keyed Twofish instance.
///
/// Holds the "full keying" g tables alongside the schedule, so the g
/// function is four lookups and three XORs — the same optimisation fast
/// software implementations (and the guest program) use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Twofish {
    ks: KeySchedule,
    gtab: Box<[[u32; 256]; 4]>,
}

impl Twofish {
    /// Expand `key` (128-bit).
    pub fn new(key: &[u8; 16]) -> Self {
        let ks = KeySchedule::new(key);
        let gtab = ks.g_tables();
        Self { ks, gtab }
    }

    #[inline]
    fn g(&self, x: u32) -> u32 {
        let b = x.to_le_bytes();
        self.gtab[0][b[0] as usize]
            ^ self.gtab[1][b[1] as usize]
            ^ self.gtab[2][b[2] as usize]
            ^ self.gtab[3][b[3] as usize]
    }

    /// Access the key schedule (the guest program embeds its subkeys and
    /// the custom instruction bakes in the S words).
    pub fn key_schedule(&self) -> &KeySchedule {
        &self.ks
    }

    fn load(block: &[u8; 16]) -> [u32; 4] {
        let mut w = [0u32; 4];
        for (i, c) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        }
        w
    }

    fn store(w: [u32; 4]) -> [u8; 16] {
        let mut out = [0u8; 16];
        for (i, v) in w.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Encrypt one 16-byte block.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let w = Self::load(block);
        let k = &self.ks.k;
        // Input whitening.
        let mut r = [w[0] ^ k[0], w[1] ^ k[1], w[2] ^ k[2], w[3] ^ k[3]];
        for round in 0..16 {
            let t0 = self.g(r[0]);
            let t1 = self.g(r[1].rotate_left(8));
            let f0 = t0.wrapping_add(t1).wrapping_add(k[2 * round + 8]);
            let f1 = t0.wrapping_add(t1.wrapping_mul(2)).wrapping_add(k[2 * round + 9]);
            let new2 = (r[2] ^ f0).rotate_right(1);
            let new3 = r[3].rotate_left(1) ^ f1;
            r = [new2, new3, r[0], r[1]];
        }
        // Undo the last swap, output whitening.
        let out = [r[2] ^ k[4], r[3] ^ k[5], r[0] ^ k[6], r[1] ^ k[7]];
        Self::store(out)
    }

    /// Decrypt one 16-byte block.
    pub fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let w = Self::load(block);
        let k = &self.ks.k;
        let mut r = [w[0] ^ k[4], w[1] ^ k[5], w[2] ^ k[6], w[3] ^ k[7]];
        for round in (0..16).rev() {
            let t0 = self.g(r[0]);
            let t1 = self.g(r[1].rotate_left(8));
            let f0 = t0.wrapping_add(t1).wrapping_add(k[2 * round + 8]);
            let f1 = t0.wrapping_add(t1.wrapping_mul(2)).wrapping_add(k[2 * round + 9]);
            let old2 = r[2].rotate_left(1) ^ f0;
            let old3 = (r[3] ^ f1).rotate_right(1);
            r = [old2, old3, r[0], r[1]];
        }
        let out = [r[2] ^ k[0], r[3] ^ k[1], r[0] ^ k[2], r[1] ^ k[3]];
        Self::store(out)
    }

    /// ECB-encrypt a buffer.
    ///
    /// # Panics
    ///
    /// Panics unless `data.len()` is a multiple of 16.
    pub fn encrypt_ecb(&self, data: &[u8]) -> Vec<u8> {
        assert!(data.len().is_multiple_of(16), "ECB needs a multiple of 16 bytes");
        data.chunks_exact(16)
            .flat_map(|b| self.encrypt_block(b.try_into().expect("chunk of 16")))
            .collect()
    }

    /// ECB-decrypt a buffer.
    ///
    /// # Panics
    ///
    /// Panics unless `data.len()` is a multiple of 16.
    pub fn decrypt_ecb(&self, data: &[u8]) -> Vec<u8> {
        assert!(data.len().is_multiple_of(16), "ECB needs a multiple of 16 bytes");
        data.chunks_exact(16)
            .flat_map(|b| self.decrypt_block(b.try_into().expect("chunk of 16")))
            .collect()
    }
}
