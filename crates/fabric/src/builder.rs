//! Programmatic construction of netlists.
//!
//! [`NetlistBuilder`] offers gate-level primitives (LUTs, flip-flops) and a
//! growing library of datapath helpers (adders, multipliers, muxes,
//! comparators, saturating arithmetic) — enough to build the real circuits
//! used by the Proteus workloads. Everything lowers to LUT4 + DFF, the only
//! resources a CLB provides.

use crate::error::FabricError;
use crate::netlist::{Netlist, Node, NodeId, Port};

/// Incremental netlist constructor.
///
/// # Example
///
/// ```
/// use proteus_fabric::builder::NetlistBuilder;
/// # fn main() -> Result<(), proteus_fabric::FabricError> {
/// let mut b = NetlistBuilder::new();
/// let a = b.input_bus("op_a", 8);
/// let c = b.input_bus("op_b", 8);
/// let lt = b.less_than(&a, &c);
/// b.output_bit("result", lt);
/// let netlist = b.finish()?;
/// assert_eq!(netlist.inputs().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct NetlistBuilder {
    nodes: Vec<Node>,
    inputs: Vec<Port>,
    outputs: Vec<(String, Vec<NodeId>)>,
    zero: Option<NodeId>,
    one: Option<NodeId>,
}

impl NetlistBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// A constant bit. Constants are cached so repeated requests share one
    /// node.
    pub fn const_bit(&mut self, value: bool) -> NodeId {
        let slot = if value { &mut self.one } else { &mut self.zero };
        if let Some(id) = *slot {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::Const(value));
        if value {
            self.one = Some(id);
        } else {
            self.zero = Some(id);
        }
        id
    }

    /// A constant bus of the given width holding `value` (little-endian
    /// bit order: element 0 is bit 0).
    pub fn const_bus(&mut self, value: u64, width: u16) -> Vec<NodeId> {
        (0..width).map(|i| self.const_bit((value >> i) & 1 == 1)).collect()
    }

    /// Declare a named input port of `width` bits and return its bit nodes.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn input_bus(&mut self, name: &str, width: u16) -> Vec<NodeId> {
        assert!(width > 0, "input port must have at least one bit");
        let port = self.inputs.len() as u16;
        self.inputs.push(Port { name: name.to_string(), width });
        (0..width).map(|bit| self.push(Node::Input { port, bit })).collect()
    }

    /// Declare a 1-bit input port.
    pub fn input_bit(&mut self, name: &str) -> NodeId {
        self.input_bus(name, 1)[0]
    }

    /// Register an output bus under `name`.
    pub fn output_bus(&mut self, name: &str, bits: &[NodeId]) {
        self.outputs.push((name.to_string(), bits.to_vec()));
    }

    /// Register a 1-bit output under `name`.
    pub fn output_bit(&mut self, name: &str, bit: NodeId) {
        self.outputs.push((name.to_string(), vec![bit]));
    }

    /// Raw 4-input LUT. `truth` bit `i` is the output when the pins (pin 0
    /// least significant) spell the value `i`.
    pub fn lut4(&mut self, inputs: [NodeId; 4], truth: u16) -> NodeId {
        self.push(Node::Lut { inputs, truth })
    }

    /// A LUT computing an arbitrary 2-input function. `f` is consulted at
    /// build time for all four input combinations.
    pub fn lut2<F: Fn(bool, bool) -> bool>(&mut self, a: NodeId, b: NodeId, f: F) -> NodeId {
        let zero = self.const_bit(false);
        let mut truth = 0u16;
        for idx in 0..16u16 {
            let pa = idx & 1 == 1;
            let pb = idx >> 1 & 1 == 1;
            if f(pa, pb) {
                truth |= 1 << idx;
            }
        }
        self.lut4([a, b, zero, zero], truth)
    }

    /// A LUT computing an arbitrary 3-input function.
    pub fn lut3<F: Fn(bool, bool, bool) -> bool>(
        &mut self,
        a: NodeId,
        b: NodeId,
        c: NodeId,
        f: F,
    ) -> NodeId {
        let zero = self.const_bit(false);
        let mut truth = 0u16;
        for idx in 0..16u16 {
            let pa = idx & 1 == 1;
            let pb = idx >> 1 & 1 == 1;
            let pc = idx >> 2 & 1 == 1;
            if f(pa, pb, pc) {
                truth |= 1 << idx;
            }
        }
        self.lut4([a, b, c, zero], truth)
    }

    /// D flip-flop with configuration-time initial value (state bit).
    pub fn dff(&mut self, d: NodeId, init: bool) -> NodeId {
        self.push(Node::Dff { d, init })
    }

    /// Register an entire bus; returns the registered bus.
    pub fn register_bus(&mut self, bus: &[NodeId], init: u64) -> Vec<NodeId> {
        bus.iter()
            .enumerate()
            .map(|(i, &b)| self.dff(b, (init >> i) & 1 == 1))
            .collect()
    }

    // ---- 1-bit logic ----------------------------------------------------

    /// Logical NOT.
    pub fn not(&mut self, a: NodeId) -> NodeId {
        self.lut2(a, a, |x, _| !x)
    }

    /// 2-input AND.
    pub fn and2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.lut2(a, b, |x, y| x && y)
    }

    /// 2-input OR.
    pub fn or2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.lut2(a, b, |x, y| x || y)
    }

    /// 2-input XOR.
    pub fn xor2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.lut2(a, b, |x, y| x ^ y)
    }

    /// 2:1 mux — `sel ? b : a`.
    pub fn mux2(&mut self, sel: NodeId, a: NodeId, b: NodeId) -> NodeId {
        self.lut3(sel, a, b, |s, x, y| if s { y } else { x })
    }

    /// AND-reduce a slice of bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    pub fn and_reduce(&mut self, bits: &[NodeId]) -> NodeId {
        self.reduce(bits, |b, x, y| b.and2(x, y))
    }

    /// OR-reduce a slice of bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    pub fn or_reduce(&mut self, bits: &[NodeId]) -> NodeId {
        self.reduce(bits, |b, x, y| b.or2(x, y))
    }

    fn reduce<F: Fn(&mut Self, NodeId, NodeId) -> NodeId>(
        &mut self,
        bits: &[NodeId],
        f: F,
    ) -> NodeId {
        assert!(!bits.is_empty(), "cannot reduce an empty bus");
        // Balanced tree keeps combinational depth logarithmic.
        let mut layer: Vec<NodeId> = bits.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                next.push(if pair.len() == 2 { f(self, pair[0], pair[1]) } else { pair[0] });
            }
            layer = next;
        }
        layer[0]
    }

    // ---- bus logic -------------------------------------------------------

    /// Bitwise NOT of a bus.
    pub fn not_bus(&mut self, a: &[NodeId]) -> Vec<NodeId> {
        a.iter().map(|&x| self.not(x)).collect()
    }

    /// Bitwise AND of two equal-width buses.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn and_bus(&mut self, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
        assert_eq!(a.len(), b.len(), "bus width mismatch");
        a.iter().zip(b).map(|(&x, &y)| self.and2(x, y)).collect()
    }

    /// Bitwise OR of two equal-width buses.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn or_bus(&mut self, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
        assert_eq!(a.len(), b.len(), "bus width mismatch");
        a.iter().zip(b).map(|(&x, &y)| self.or2(x, y)).collect()
    }

    /// Bitwise XOR of two equal-width buses.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn xor_bus(&mut self, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
        assert_eq!(a.len(), b.len(), "bus width mismatch");
        a.iter().zip(b).map(|(&x, &y)| self.xor2(x, y)).collect()
    }

    /// Per-bit 2:1 mux over buses — `sel ? b : a`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn mux_bus(&mut self, sel: NodeId, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
        assert_eq!(a.len(), b.len(), "bus width mismatch");
        a.iter().zip(b).map(|(&x, &y)| self.mux2(sel, x, y)).collect()
    }

    // ---- arithmetic -------------------------------------------------------

    /// Full adder: returns `(sum, carry)`.
    pub fn full_adder(&mut self, a: NodeId, b: NodeId, cin: NodeId) -> (NodeId, NodeId) {
        let sum = self.lut3(a, b, cin, |x, y, c| x ^ y ^ c);
        let carry = self.lut3(a, b, cin, |x, y, c| (x && y) || (c && (x ^ y)));
        (sum, carry)
    }

    /// Ripple-carry addition of two equal-width buses, discarding the final
    /// carry (wrapping semantics, like Rust's `wrapping_add`).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn add(&mut self, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
        self.add_with_carry(a, b, None).0
    }

    /// Ripple-carry addition returning `(sum, carry_out)`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn add_with_carry(
        &mut self,
        a: &[NodeId],
        b: &[NodeId],
        cin: Option<NodeId>,
    ) -> (Vec<NodeId>, NodeId) {
        assert_eq!(a.len(), b.len(), "bus width mismatch");
        let mut carry = cin.unwrap_or_else(|| self.const_bit(false));
        let mut out = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let (s, c) = self.full_adder(x, y, carry);
            out.push(s);
            carry = c;
        }
        (out, carry)
    }

    /// Wrapping subtraction `a - b` via two's complement.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn sub(&mut self, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
        let nb = self.not_bus(b);
        let one = self.const_bit(true);
        self.add_with_carry(a, &nb, Some(one)).0
    }

    /// Unsigned `a < b` for equal-width buses.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn less_than(&mut self, a: &[NodeId], b: &[NodeId]) -> NodeId {
        // a < b  <=>  borrow out of a - b  <=>  !carry_out(a + !b + 1)
        let nb = self.not_bus(b);
        let one = self.const_bit(true);
        let (_, carry) = self.add_with_carry(a, &nb, Some(one));
        self.not(carry)
    }

    /// Equality of two equal-width buses.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn equal(&mut self, a: &[NodeId], b: &[NodeId]) -> NodeId {
        let x = self.xor_bus(a, b);
        let any = self.or_reduce(&x);
        self.not(any)
    }

    /// Combinational shift-and-add multiplier. Output width is
    /// `a.len() + b.len()`.
    pub fn mul(&mut self, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
        let out_w = a.len() + b.len();
        let zero = self.const_bit(false);
        let mut acc: Vec<NodeId> = vec![zero; out_w];
        for (i, &bb) in b.iter().enumerate() {
            // Partial product: a gated by bit i of b, shifted left i.
            let mut pp: Vec<NodeId> = vec![zero; out_w];
            for (j, &ab) in a.iter().enumerate() {
                if i + j < out_w {
                    pp[i + j] = self.and2(ab, bb);
                }
            }
            acc = self.add(&acc, &pp);
        }
        acc
    }

    /// Saturating unsigned add of two equal-width buses: on carry-out the
    /// result clamps to all-ones.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn sat_add(&mut self, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
        let (sum, carry) = self.add_with_carry(a, b, None);
        sum.into_iter().map(|s| self.or2(s, carry)).collect()
    }

    /// Select a constant-position slice of a bus (compile-time shift).
    ///
    /// Bits shifted in are zero. `shift` may exceed the width.
    pub fn shr_const(&mut self, a: &[NodeId], shift: usize) -> Vec<NodeId> {
        let zero = self.const_bit(false);
        (0..a.len()).map(|i| a.get(i + shift).copied().unwrap_or(zero)).collect()
    }

    /// Compile-time left shift; bits shifted in are zero.
    pub fn shl_const(&mut self, a: &[NodeId], shift: usize) -> Vec<NodeId> {
        let zero = self.const_bit(false);
        (0..a.len())
            .map(|i| if i >= shift { a[i - shift] } else { zero })
            .collect()
    }

    /// Zero-extend or truncate a bus to `width` bits.
    pub fn resize(&mut self, a: &[NodeId], width: usize) -> Vec<NodeId> {
        let zero = self.const_bit(false);
        (0..width).map(|i| a.get(i).copied().unwrap_or(zero)).collect()
    }

    /// Population count of a bus; output is `ceil(log2(len+1))` bits wide.
    ///
    /// # Panics
    ///
    /// Panics if `a` is empty.
    pub fn popcount(&mut self, a: &[NodeId]) -> Vec<NodeId> {
        assert!(!a.is_empty(), "popcount of empty bus");
        let out_w = (usize::BITS - a.len().leading_zeros()) as usize;
        let mut acc = self.resize(&[a[0]], out_w);
        for &bit in &a[1..] {
            let b = self.resize(&[bit], out_w);
            acc = self.add(&acc, &b);
        }
        acc
    }

    /// Free-running counter of `width` bits that increments when `enable`
    /// is high; returns the current (registered) value.
    pub fn counter(&mut self, width: u16, enable: NodeId) -> Vec<NodeId> {
        // Allocate the DFFs first so the increment can feed back.
        let zero = self.const_bit(false);
        let dff_ids: Vec<NodeId> = (0..width).map(|_| self.push(Node::Dff { d: zero, init: false })).collect();
        let one_bus = self.const_bus(1, width);
        let incremented = self.add(&dff_ids, &one_bus);
        let next = self.mux_bus(enable, &dff_ids, &incremented);
        for (dff, nxt) in dff_ids.iter().zip(&next) {
            if let Node::Dff { d, .. } = &mut self.nodes[dff.index()] {
                *d = *nxt;
            }
        }
        dff_ids
    }

    /// Variable logical right shift: `a >> amount`, where `amount` is a
    /// bus of selector bits (barrel shifter: one mux stage per bit).
    pub fn shr_var(&mut self, a: &[NodeId], amount: &[NodeId]) -> Vec<NodeId> {
        let mut cur = a.to_vec();
        for (stage, &sel) in amount.iter().enumerate() {
            let shifted = self.shr_const(&cur, 1 << stage);
            cur = self.mux_bus(sel, &cur, &shifted);
        }
        cur
    }

    /// Variable logical left shift (barrel shifter).
    pub fn shl_var(&mut self, a: &[NodeId], amount: &[NodeId]) -> Vec<NodeId> {
        let mut cur = a.to_vec();
        for (stage, &sel) in amount.iter().enumerate() {
            let shifted = self.shl_const(&cur, 1 << stage);
            cur = self.mux_bus(sel, &cur, &shifted);
        }
        cur
    }

    /// Variable rotate right (barrel rotator).
    pub fn ror_var(&mut self, a: &[NodeId], amount: &[NodeId]) -> Vec<NodeId> {
        let n = a.len();
        let mut cur = a.to_vec();
        for (stage, &sel) in amount.iter().enumerate() {
            let k = (1 << stage) % n;
            let rotated: Vec<NodeId> = (0..n).map(|i| cur[(i + k) % n]).collect();
            cur = self.mux_bus(sel, &cur, &rotated);
        }
        cur
    }

    /// Reverse the bit order of a bus (free — pure wiring).
    pub fn bit_reverse(&mut self, a: &[NodeId]) -> Vec<NodeId> {
        a.iter().rev().copied().collect()
    }

    /// Gray-code encode: `a ^ (a >> 1)`.
    pub fn gray_encode(&mut self, a: &[NodeId]) -> Vec<NodeId> {
        let shifted = self.shr_const(a, 1);
        self.xor_bus(a, &shifted)
    }

    /// Unsigned maximum of two equal-width buses.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn max(&mut self, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
        let a_lt_b = self.less_than(a, b);
        self.mux_bus(a_lt_b, a, b)
    }

    /// Absolute difference `|a - b|` of two equal-width unsigned buses.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn abs_diff(&mut self, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
        let a_lt_b = self.less_than(a, b);
        let amb = self.sub(a, b);
        let bma = self.sub(b, a);
        self.mux_bus(a_lt_b, &amb, &bma)
    }

    /// Rewire an already-allocated DFF's `d` input — used to close feedback
    /// loops that were allocated with a placeholder.
    ///
    /// # Panics
    ///
    /// Panics if `dff` is not a flip-flop node.
    pub fn set_dff_input(&mut self, dff: NodeId, d: NodeId) {
        match &mut self.nodes[dff.index()] {
            Node::Dff { d: slot, .. } => *slot = d,
            other => panic!("set_dff_input on non-DFF node {other:?}"),
        }
    }

    /// Allocate a DFF whose input will be wired later with
    /// [`Self::set_dff_input`].
    pub fn dff_placeholder(&mut self, init: bool) -> NodeId {
        let zero = self.const_bit(false);
        self.push(Node::Dff { d: zero, init })
    }

    /// Finish building, validating the netlist.
    ///
    /// # Errors
    ///
    /// Propagates [`Netlist::check`] failures and reports duplicate port
    /// names.
    pub fn finish(self) -> Result<Netlist, FabricError> {
        let netlist = self.finish_unchecked();
        for (i, p) in netlist.inputs.iter().enumerate() {
            if netlist.inputs[..i].iter().any(|q| q.name == p.name) {
                return Err(FabricError::DuplicatePort { name: p.name.clone() });
            }
        }
        for (i, (name, _)) in netlist.outputs.iter().enumerate() {
            if netlist.outputs[..i].iter().any(|(n, _)| n == name) {
                return Err(FabricError::DuplicatePort { name: name.clone() });
            }
        }
        netlist.check()?;
        Ok(netlist)
    }

    /// Finish without validation (used by tests that construct deliberately
    /// malformed netlists).
    pub fn finish_unchecked(self) -> Netlist {
        Netlist { nodes: self.nodes, inputs: self.inputs, outputs: self.outputs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::NetlistSim;

    /// Build, simulate one combinational step, read `result`.
    fn eval2(f: impl FnOnce(&mut NetlistBuilder, Vec<NodeId>, Vec<NodeId>) -> Vec<NodeId>, w: u16, a: u64, b: u64) -> u64 {
        let mut bld = NetlistBuilder::new();
        let ab = bld.input_bus("op_a", w);
        let bb = bld.input_bus("op_b", w);
        let out = f(&mut bld, ab, bb);
        bld.output_bus("result", &out);
        let n = bld.finish().expect("netlist");
        let mut sim = NetlistSim::new(&n).expect("sim");
        sim.set_input("op_a", a);
        sim.set_input("op_b", b);
        sim.settle();
        sim.output("result")
    }

    #[test]
    fn adder_matches_wrapping_add() {
        for (a, b) in [(0u64, 0u64), (1, 1), (200, 99), (255, 255), (128, 128)] {
            let got = eval2(|bld, x, y| bld.add(&x, &y), 8, a, b);
            assert_eq!(got, (a + b) & 0xFF, "a={a} b={b}");
        }
    }

    #[test]
    fn subtractor_matches_wrapping_sub() {
        for (a, b) in [(0u64, 0u64), (5, 9), (200, 99), (0, 255)] {
            let got = eval2(|bld, x, y| bld.sub(&x, &y), 8, a, b);
            assert_eq!(got, (a.wrapping_sub(b)) & 0xFF, "a={a} b={b}");
        }
    }

    #[test]
    fn multiplier_matches() {
        for (a, b) in [(0u64, 0u64), (3, 5), (255, 255), (17, 19)] {
            let got = eval2(|bld, x, y| bld.mul(&x, &y), 8, a, b);
            assert_eq!(got, a * b, "a={a} b={b}");
        }
    }

    #[test]
    fn sat_add_clamps() {
        assert_eq!(eval2(|bld, x, y| bld.sat_add(&x, &y), 8, 200, 100), 255);
        assert_eq!(eval2(|bld, x, y| bld.sat_add(&x, &y), 8, 20, 30), 50);
    }

    #[test]
    fn less_than_and_equal() {
        let lt = |a: u64, b: u64| {
            eval2(
                |bld, x, y| {
                    let r = bld.less_than(&x, &y);
                    vec![r]
                },
                8,
                a,
                b,
            )
        };
        assert_eq!(lt(3, 4), 1);
        assert_eq!(lt(4, 3), 0);
        assert_eq!(lt(9, 9), 0);

        let eq = eval2(
            |bld, x, y| {
                let r = bld.equal(&x, &y);
                vec![r]
            },
            8,
            42,
            42,
        );
        assert_eq!(eq, 1);
    }

    #[test]
    fn popcount_counts() {
        let got = eval2(
            |bld, x, _| bld.popcount(&x),
            8,
            0b1011_0110,
            0,
        );
        assert_eq!(got, 5);
    }

    #[test]
    fn counter_increments_when_enabled() {
        let mut bld = NetlistBuilder::new();
        let en = bld.input_bit("op_a");
        let cnt = bld.counter(8, en);
        bld.output_bus("result", &cnt);
        let n = bld.finish().expect("netlist");
        let mut sim = NetlistSim::new(&n).expect("sim");
        sim.set_input("op_a", 1);
        for expect in 0..5u64 {
            sim.settle();
            assert_eq!(sim.output("result"), expect);
            sim.clock_edge();
        }
        sim.set_input("op_a", 0);
        sim.settle();
        let frozen = sim.output("result");
        sim.clock_edge();
        sim.settle();
        assert_eq!(sim.output("result"), frozen);
    }

    #[test]
    fn barrel_shifts_match() {
        for (a, amt) in [(0xF0F0u64, 4u64), (0xFFFF, 0), (0x8001, 15), (0x1234, 7)] {
            let got = eval2(
                |bld, x, y| bld.shr_var(&x, &y[..4]),
                16,
                a,
                amt,
            );
            assert_eq!(got, a >> amt, "a={a:#x} amt={amt}");
            let got = eval2(
                |bld, x, y| bld.shl_var(&x, &y[..4]),
                16,
                a,
                amt,
            );
            assert_eq!(got, (a << amt) & 0xFFFF, "a={a:#x} amt={amt}");
            let got = eval2(
                |bld, x, y| bld.ror_var(&x, &y[..4]),
                16,
                a,
                amt,
            );
            assert_eq!(got, u64::from((a as u16).rotate_right(amt as u32)), "a={a:#x} amt={amt}");
        }
    }

    #[test]
    fn gray_and_reverse_match() {
        let a = 0b1011_0010u64;
        assert_eq!(eval2(|bld, x, _| bld.gray_encode(&x), 8, a, 0), a ^ (a >> 1));
        assert_eq!(
            eval2(|bld, x, _| bld.bit_reverse(&x), 8, a, 0),
            u64::from((a as u8).reverse_bits())
        );
    }

    #[test]
    fn max_and_abs_diff_match() {
        for (a, b) in [(3u64, 200u64), (200, 3), (7, 7), (0, 255)] {
            assert_eq!(eval2(|bld, x, y| bld.max(&x, &y), 8, a, b), a.max(b));
            assert_eq!(eval2(|bld, x, y| bld.abs_diff(&x, &y), 8, a, b), a.abs_diff(b));
        }
    }

    #[test]
    fn duplicate_output_port_rejected() {
        let mut bld = NetlistBuilder::new();
        let a = bld.input_bit("op_a");
        bld.output_bit("result", a);
        bld.output_bit("result", a);
        assert!(matches!(bld.finish(), Err(FabricError::DuplicatePort { .. })));
    }
}
