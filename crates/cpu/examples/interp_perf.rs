//! Interpreter throughput probe: times synthetic instruction mixes
//! through the real `Cpu::run` loop and reports host-nanoseconds per
//! simulated cycle. Complements the tracked `repro --bench` harness
//! when attributing interpreter-level regressions — each mix isolates
//! one corner of the hot path (ALU, flags+branch, memory, cond-fail).
//!
//! Run with: `cargo run --release -p proteus-cpu --example interp_perf`

use proteus_cpu::{Cpu, Memory, NullCoprocessor};
use proteus_isa::assemble;
use std::time::Instant;

fn time_program(name: &str, src: &str, until: u64) {
    let p = assemble(src).unwrap();
    let mut mem = Memory::new(64 * 1024);
    mem.load_program(&p).unwrap();
    let mut cpu = Cpu::new();
    cpu.set_reg(13, 60 * 1024);
    let t = Instant::now();
    let _stop = cpu.run(&mut mem, &mut NullCoprocessor, until);
    let dt = t.elapsed().as_secs_f64();
    println!(
        "{name:24} {:>12} cycles in {dt:>8.4}s = {:>6.2} ns/cycle, {:.3e} c/s",
        cpu.cycles(),
        dt * 1e9 / cpu.cycles() as f64,
        cpu.cycles() as f64 / dt
    );
}

fn main() {
    let n: u64 = 100_000_000;
    // Plain ALU chain: the S-clear data-processing fast lane.
    time_program(
        "dp_loop",
        "loop: add r2, r2, r0\n add r2, r2, r0\n add r2, r2, r0\n add r2, r2, r0\n \
         add r2, r2, r0\n add r2, r2, r0\n subs r1, r1, #1\n b loop\n",
        n,
    );
    // Flag-setting + conditional branch per pair.
    time_program("flags_branch", "loop: subs r1, r1, #1\n bne loop\n b loop\n", n);
    // Load/store traffic through the bounds-checked memory port.
    time_program("ldr_str", "mov r0, #4096\nloop: ldr r2, [r0]\n str r2, [r0, #4]\n b loop\n", n);
    // Condition-failed instructions: fetch+skip only.
    time_program(
        "cond_fail",
        "cmp r0, #1\nloop: moveq r2, #1\n moveq r2, #2\n moveq r2, #3\n b loop\n",
        n,
    );
}
