//! A tour of the FPL fabric substrate: build a gate-level circuit,
//! compile it to a bitstream, inspect the static/state split, load it
//! into a device and run it — including a mid-instruction context save.
//!
//! Run with `cargo run --example fabric_tour`.

use proteus_fabric::library::{alpha_blend_channel, alpha_blend_ref};
use proteus_fabric::place::FabricDims;
use proteus_fabric::{compile, Device};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The real gate-level alpha-blend channel circuit: LUT4s, flip-flops
    // and a shared 8x8 multiplier, two cycles per blend.
    let netlist = alpha_blend_channel()?;
    netlist.check_pfu_interface()?;
    println!(
        "netlist: {} LUTs, {} flip-flops, ~{} of 500 CLBs",
        netlist.lut_count(),
        netlist.dff_count(),
        netlist.clb_estimate()
    );

    let compiled = compile(&netlist, FabricDims::PFU)?;
    let bitstream = compiled.bitstream();
    println!(
        "bitstream: {} bytes static configuration, {} bytes state frames",
        bitstream.static_bytes(),
        bitstream.state_bytes()
    );
    println!(
        "  -> the paper's §4.1 split: a context switch moves only {} bytes, not {} KB",
        bitstream.state_bytes(),
        bitstream.static_bytes() / 1000
    );

    // The device executes the *decoded* bitstream — no access to the
    // original netlist.
    let mut device = Device::new(FabricDims::PFU);
    device.load(bitstream)?;

    let (src, dst, alpha) = (200u8, 40u8, 128u8);
    let op_a = u32::from(src) | (u32::from(alpha) << 8);
    let (result, cycles) = device.run_instruction(op_a, u32::from(dst), 8)?;
    println!("blend({src}, {dst}, alpha={alpha}) = {result} in {cycles} cycles");
    assert_eq!(result as u8, alpha_blend_ref(src, dst, alpha));

    // Interrupt an invocation after one cycle, swap the circuit out
    // (full reload destroys the array state), then restore the state
    // frames and resume with `init` low — the §4.4 protocol.
    let first = device.clock(op_a, u32::from(dst), true)?;
    assert!(!first.done);
    let saved = device.save_state()?;
    device.load(bitstream)?; // someone else used the PFU...
    device.load_state(&saved)?; // ...and the OS restored our context
    let resumed = device.clock(op_a, u32::from(dst), false)?;
    assert!(resumed.done);
    assert_eq!(resumed.result as u8, alpha_blend_ref(src, dst, alpha));
    println!("interrupted invocation resumed correctly after a state-frame round trip");
    Ok(())
}
