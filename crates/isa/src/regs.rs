//! Core register names.

use std::fmt;

/// One of the sixteen core registers.
///
/// `r13` is the conventional stack pointer, `r14` the link register and
/// `r15` the program counter, as on ARM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Stack pointer alias.
    pub const SP: Reg = Reg(13);
    /// Link register alias.
    pub const LR: Reg = Reg(14);
    /// Program counter alias.
    pub const PC: Reg = Reg(15);

    /// Construct from an index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 15`.
    pub fn new(index: u8) -> Reg {
        assert!(index < 16, "register index {index} out of range");
        Reg(index)
    }

    /// Construct from the low four bits of an encoding field.
    pub fn from_bits(bits: u32) -> Reg {
        Reg((bits & 0xF) as u8)
    }

    /// The register index (0–15).
    ///
    /// The mask is free (the constructors guarantee `self.0 < 16`) and
    /// lets the compiler drop the bounds check on every register-file
    /// access in the interpreter hot loop.
    #[inline(always)]
    pub fn index(self) -> usize {
        (self.0 & 0xF) as usize
    }

    /// The 4-bit encoding.
    #[inline(always)]
    pub fn bits(self) -> u32 {
        u32::from(self.0 & 0xF)
    }

    /// Parse an assembler register name (`r0`–`r15`, `sp`, `lr`, `pc`).
    pub fn parse(s: &str) -> Option<Reg> {
        match s {
            "sp" => Some(Reg::SP),
            "lr" => Some(Reg::LR),
            "pc" => Some(Reg::PC),
            _ => {
                let n: u8 = s.strip_prefix('r')?.parse().ok()?;
                (n < 16).then_some(Reg(n))
            }
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Reg::SP => f.write_str("sp"),
            Reg::LR => f.write_str("lr"),
            Reg::PC => f.write_str("pc"),
            Reg(n) => write!(f, "r{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for i in 0..13u8 {
            let r = Reg::new(i);
            assert_eq!(Reg::parse(&r.to_string()), Some(r));
        }
        assert_eq!(Reg::parse("sp"), Some(Reg::SP));
        assert_eq!(Reg::parse("r15"), Some(Reg::PC));
        assert_eq!(Reg::parse("r16"), None);
        assert_eq!(Reg::parse("x0"), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_large_index() {
        let _ = Reg::new(16);
    }
}
