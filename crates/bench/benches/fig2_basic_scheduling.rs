//! Criterion bench over the Figure 2 experiment plan (Basic Scheduling
//! Test): executes the same declarative [`proteus::experiment::fig2_plan`]
//! the `repro` binary runs, at a reduced workload scale, across worker
//! counts — measuring both the simulation grid and the worker pool's
//! scheduling overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use proteus::experiment::{fig2_plan, Scale};

fn bench_scale() -> Scale {
    Scale { target_cycles: 100_000, max_instances: 2, seed: 2003 }
}

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_basic_scheduling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(700));
    let scale = bench_scale();
    for jobs in [1usize, 2, 4] {
        group.bench_function(BenchmarkId::new("plan_execute", jobs), |b| {
            b.iter(|| {
                let (set, metrics) = fig2_plan(&scale).execute(jobs);
                assert_eq!(set.series.len(), 12);
                metrics.sim_cycles
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
