//! PFU replacement policies.
//!
//! The paper's experiments compare **round robin** and **random** circuit
//! replacement (§5.1.1) and note that the usage counters of §4.5 enable
//! "classic scheduling algorithms such as Least Recently Used (LRU),
//! Second Chance, etc." — implemented here as well, and compared in
//! ablation A1.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use proteus_rfu::TupleKey;

/// What the kernel shows a policy when it must pick a victim PFU.
#[derive(Debug)]
pub struct PolicyView<'a> {
    /// Which tuple currently owns each PFU (`None` = free — the kernel
    /// only consults the policy when nothing is free, but policies must
    /// tolerate holes).
    pub occupied: &'a [Option<TupleKey>],
    /// Per-PFU completions since the previous fault (the §4.5 counters,
    /// read-and-cleared by the kernel before each consultation).
    pub completions: &'a [u64],
    /// Monotonic sequence number of each PFU's last observed use
    /// (maintained by the kernel from the counters).
    pub last_use_seq: &'a [u64],
    /// Monotonic sequence number of each PFU's configuration load.
    pub load_seq: &'a [u64],
    /// PID of the faulting process.
    pub current_pid: u32,
}

/// A victim-selection policy over PFUs.
///
/// # Example
///
/// ```
/// use porsche::policy::{PolicyKind, PolicyView};
/// use proteus_rfu::TupleKey;
///
/// let mut policy = PolicyKind::Lru.build();
/// let occupied = vec![Some(TupleKey::new(1, 0)); 4];
/// let counts = vec![0u64; 4];
/// let last_use = vec![9, 2, 7, 5]; // PFU 1 used longest ago
/// let loads = vec![0u64; 4];
/// let victim = policy.select_victim(&PolicyView {
///     occupied: &occupied,
///     completions: &counts,
///     last_use_seq: &last_use,
///     load_seq: &loads,
///     current_pid: 1,
/// });
/// assert_eq!(victim, 1);
/// ```
pub trait ReplacementPolicy: fmt::Debug + Send {
    /// Human-readable name (appears in experiment output).
    fn name(&self) -> &'static str;

    /// Choose the PFU to evict. Must return an index < `occupied.len()`.
    fn select_victim(&mut self, view: &PolicyView<'_>) -> usize;
}

/// Identifies a policy in configuration and results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Cyclic victim selection (the paper's "round robin" replacement).
    RoundRobin,
    /// Uniformly random victim (the paper's "random").
    Random {
        /// RNG seed, for reproducible runs.
        seed: u64,
    },
    /// Evict the least-recently-used circuit (per §4.5 counters).
    Lru,
    /// Classic second-chance sweep over reference bits derived from the
    /// completion counters.
    SecondChance,
    /// Evict the oldest-loaded circuit.
    Fifo,
}

impl PolicyKind {
    /// Instantiate the policy.
    pub fn build(self) -> Box<dyn ReplacementPolicy> {
        match self {
            PolicyKind::RoundRobin => Box::new(RoundRobinPolicy::new()),
            PolicyKind::Random { seed } => Box::new(RandomPolicy::new(seed)),
            PolicyKind::Lru => Box::new(LruPolicy),
            PolicyKind::SecondChance => Box::new(SecondChancePolicy::new()),
            PolicyKind::Fifo => Box::new(FifoPolicy),
        }
    }

    /// Name matching [`ReplacementPolicy::name`].
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::RoundRobin => "round_robin",
            PolicyKind::Random { .. } => "random",
            PolicyKind::Lru => "lru",
            PolicyKind::SecondChance => "second_chance",
            PolicyKind::Fifo => "fifo",
        }
    }
}

/// Cyclic victim selection.
#[derive(Debug, Default)]
pub struct RoundRobinPolicy {
    next: usize,
}

impl RoundRobinPolicy {
    /// Start at PFU 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for RoundRobinPolicy {
    fn name(&self) -> &'static str {
        "round_robin"
    }

    fn select_victim(&mut self, view: &PolicyView<'_>) -> usize {
        let n = view.occupied.len();
        let victim = self.next % n;
        self.next = (victim + 1) % n;
        victim
    }
}

/// Uniform random victim selection (seeded for reproducibility).
pub struct RandomPolicy {
    rng: StdRng,
}

impl fmt::Debug for RandomPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RandomPolicy").finish_non_exhaustive()
    }
}

impl RandomPolicy {
    /// Create with a seed.
    pub fn new(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed) }
    }
}

impl ReplacementPolicy for RandomPolicy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn select_victim(&mut self, view: &PolicyView<'_>) -> usize {
        self.rng.gen_range(0..view.occupied.len())
    }
}

/// Least-recently-used, driven by the §4.5 completion counters.
#[derive(Debug, Default)]
pub struct LruPolicy;

impl ReplacementPolicy for LruPolicy {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn select_victim(&mut self, view: &PolicyView<'_>) -> usize {
        // PfuArray::new rejects zero-sized arrays, so the range is
        // never empty.
        (0..view.occupied.len()).min_by_key(|&i| view.last_use_seq[i]).unwrap_or(0)
    }
}

/// Second Chance: sweep a hand over the PFUs; a set reference bit earns
/// one reprieve.
#[derive(Debug, Default)]
pub struct SecondChancePolicy {
    hand: usize,
    referenced: Vec<bool>,
}

impl SecondChancePolicy {
    /// Start with the hand at PFU 0 and all reference bits clear.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for SecondChancePolicy {
    fn name(&self) -> &'static str {
        "second_chance"
    }

    fn select_victim(&mut self, view: &PolicyView<'_>) -> usize {
        let n = view.occupied.len();
        self.referenced.resize(n, false);
        // Fold fresh completions into the reference bits.
        for (bit, &c) in self.referenced.iter_mut().zip(view.completions) {
            *bit = *bit || c > 0;
        }
        // Sweep at most 2n steps; the first pass clears bits.
        for _ in 0..2 * n {
            let i = self.hand % n;
            self.hand = (i + 1) % n;
            if self.referenced[i] {
                self.referenced[i] = false;
            } else {
                return i;
            }
        }
        self.hand % n
    }
}

/// Evict the oldest configuration.
#[derive(Debug, Default)]
pub struct FifoPolicy;

impl ReplacementPolicy for FifoPolicy {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn select_victim(&mut self, view: &PolicyView<'_>) -> usize {
        // PfuArray::new rejects zero-sized arrays, so the range is
        // never empty.
        (0..view.occupied.len()).min_by_key(|&i| view.load_seq[i]).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(
        occupied: &'a [Option<TupleKey>],
        completions: &'a [u64],
        last_use: &'a [u64],
        load_seq: &'a [u64],
    ) -> PolicyView<'a> {
        PolicyView { occupied, completions, last_use_seq: last_use, load_seq, current_pid: 1 }
    }

    #[test]
    fn round_robin_cycles() {
        let occ = vec![Some(TupleKey::new(1, 0)); 4];
        let z = vec![0u64; 4];
        let mut p = RoundRobinPolicy::new();
        let picks: Vec<usize> = (0..6).map(|_| p.select_victim(&view(&occ, &z, &z, &z))).collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let occ = vec![Some(TupleKey::new(1, 0)); 4];
        let z = vec![0u64; 4];
        let run = |seed| {
            let mut p = RandomPolicy::new(seed);
            (0..8).map(|_| p.select_victim(&view(&occ, &z, &z, &z))).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert!(run(7).iter().all(|&i| i < 4));
    }

    #[test]
    fn lru_picks_stalest() {
        let occ = vec![Some(TupleKey::new(1, 0)); 4];
        let z = vec![0u64; 4];
        let last = vec![9, 2, 7, 5];
        let mut p = LruPolicy;
        assert_eq!(p.select_victim(&view(&occ, &z, &last, &z)), 1);
    }

    #[test]
    fn fifo_picks_oldest_load() {
        let occ = vec![Some(TupleKey::new(1, 0)); 3];
        let z = vec![0u64; 3];
        let loads = vec![5, 1, 3];
        let mut p = FifoPolicy;
        assert_eq!(p.select_victim(&view(&occ, &z, &z, &loads)), 1);
    }

    #[test]
    fn second_chance_spares_referenced() {
        let occ = vec![Some(TupleKey::new(1, 0)); 3];
        let z = vec![0u64; 3];
        let mut p = SecondChancePolicy::new();
        // PFU 0 referenced, 1 and 2 idle: hand starts at 0, gives 0 a
        // second chance, evicts 1.
        let comps = vec![3u64, 0, 0];
        assert_eq!(p.select_victim(&view(&occ, &comps, &z, &z)), 1);
        // Next fault, nothing referenced since: hand is at 2, evicts 2.
        assert_eq!(p.select_victim(&view(&occ, &z, &z, &z)), 2);
    }

    #[test]
    fn second_chance_terminates_when_all_referenced() {
        let occ = vec![Some(TupleKey::new(1, 0)); 3];
        let comps = vec![1u64, 1, 1];
        let z = vec![0u64; 3];
        let mut p = SecondChancePolicy::new();
        let v = p.select_victim(&view(&occ, &comps, &z, &z));
        assert!(v < 3);
    }
}
