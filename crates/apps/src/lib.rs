//! The Proteus evaluation workloads (paper §5.1).
//!
//! Three test applications drive the experiments: "alpha blending image
//! processing, twofish encryption, and audio echo processing". Alpha
//! blending and Twofish each use **one** custom instruction; echo uses
//! **two custom instructions in a tight loop** — so with four PFUs,
//! contention starts at five concurrent single-circuit processes but at
//! only three echo processes (the paper plots contention at >4 and >2
//! because sharing is disabled).
//!
//! Every workload comes in the forms the system needs:
//!
//! * a **pure-Rust reference** (ground truth for tests and for the exit-
//!   code checksums that validate guest runs end-to-end);
//! * a **hardware circuit** for each custom instruction
//!   (behavioral [`proteus_rfu::PfuCircuit`] models; the alpha-blend one
//!   is proven equivalent to the gate-level
//!   [`proteus_fabric::library::alpha_blend_channel`] netlist);
//! * a **guest assembly program** using the custom instructions
//!   (the accelerated form), including the registered *software
//!   alternative* routine written against the `ldop`/`stres`/`retsd` ABI
//!   of §4.3;
//! * a **pure-software guest program** (no custom instructions) for the
//!   order-of-magnitude speedup claim.
//!
//! [`workload::WorkloadSpec`] bundles program + circuits + the expected
//! checksum, ready to spawn into a POrSCHE kernel.
//!
//! The [`twofish`] module is a complete from-scratch implementation of
//! the Twofish cipher (128-bit keys): q-permutations, MDS/RS matrices
//! over GF(2⁸), the h function, key schedule and the full 16-round
//! network, validated against the published test vector.

pub mod alpha;
pub mod echo;
pub mod guest;
pub mod twofish;
pub mod workload;

pub use workload::{AppKind, WorkloadConfig, WorkloadSpec};
