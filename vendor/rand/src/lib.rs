//! Offline stand-in for the subset of the [`rand`] crate this workspace
//! uses (`StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range`).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, deterministic implementation with the same API
//! shape. The generator is xoshiro256++ seeded through SplitMix64 —
//! high-quality, reproducible, and stable across platforms. It is *not*
//! the same stream as upstream `StdRng` (ChaCha12); every consumer in
//! this workspace treats the stream as an arbitrary deterministic
//! function of the seed, so only self-consistency matters.
//!
//! [`rand`]: https://crates.io/crates/rand

/// Low-level generator interface: a source of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range, mirroring `rand`'s
    /// `gen_range(low..high)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniformly random value of a samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a canonical uniform distribution (subset of `rand`'s
/// `Standard`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a generator can sample uniformly (subset of `rand`'s
/// `SampleRange`).
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128) - (self.start as i128);
                let v = (rng.next_u64() as u128 % span as u128) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128) - (start as i128) + 1;
                let v = (rng.next_u64() as u128 % span as u128) as i128;
                (start as i128 + v) as $t
            }
        }
    )+};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut sm: u64) -> Self {
            // SplitMix64 expansion of the seed, per Vigna's
            // recommendation for seeding xoshiro.
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_state(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(2003);
        let mut b = StdRng::seed_from_u64(2003);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(1e-9..1.0f64);
            assert!((1e-9..1.0).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
